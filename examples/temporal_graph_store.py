#!/usr/bin/env python3
"""Social-network history with on-the-fly snapshots (paper introduction).

"How did friendship links change in that social network during winter
vacation?" -- the :class:`repro.db.TemporalGraphStore` answers exactly that:
edge additions and removals are appended chronologically to compressed
Wavelet-Trie logs, and adjacency snapshots, per-window deltas and activity
rankings are computed from prefix queries, never from materialised adjacency
lists.

Run with:  python examples/temporal_graph_store.py
"""

import random

from repro.db import TemporalGraphStore
from repro.workloads import EdgeStreamGenerator


def main() -> None:
    rng = random.Random(99)
    generator = EdgeStreamGenerator(initial_vertices=8, seed=17)
    graph = TemporalGraphStore()

    # One simulated year of friendship events: mostly additions, some removals.
    day = 0
    for _ in range(6000):
        day += rng.randrange(0, 2)
        if rng.random() < 0.12:
            # Unfriend a currently existing edge, if we can find one quickly.
            vertex = generator.vertex_uri(rng.randrange(0, 8))
            neighbours = graph.neighbors_at(vertex, day + 1)
            if neighbours:
                graph.remove_edge(vertex, rng.choice(neighbours), timestamp=day)
                continue
        source, target = generator.generate_edge()
        graph.add_edge(source, target, timestamp=day)

    print(f"events recorded   : {len(graph):,} "
          f"({graph.addition_count:,} additions, {graph.removal_count:,} removals)")
    print(f"compressed history: {graph.size_in_bits() / 8 / 1024:.1f} KiB")
    print()

    winter_vacation = (day - 60, day - 30)
    alice = generator.vertex_uri(0)

    print(f"=== {alice} ===")
    print(f"friends before the window : {graph.degree_at(alice, winter_vacation[0])}")
    print(f"friends after the window  : {graph.degree_at(alice, winter_vacation[1])}")
    changes = graph.adjacency_changes(alice, *winter_vacation)
    gained = [target for target, delta in changes.items() if delta > 0]
    lost = [target for target, delta in changes.items() if delta < 0]
    print(f"gained during the window  : {len(gained)}")
    print(f"lost during the window    : {len(lost)}")
    print(f"events touching the vertex: {graph.activity(alice, *winter_vacation)}")
    print()

    print("=== most active vertices during the window ===")
    for vertex, count in graph.active_vertices(*winter_vacation)[:5]:
        print(f"  {count:4d} new edges   {vertex}")
    print()

    print("=== most repeated edge overall ===")
    for edge, count in graph.top_edges(3, 0, day + 1):
        print(f"  {count:4d}x  {edge}")


if __name__ == "__main__":
    main()
