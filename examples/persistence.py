#!/usr/bin/env python3
"""Persisting a compressed index: build once, save, reload, keep appending.

The paper's motivating workloads (query logs, access logs, columns) outlive a
single process.  This example builds an append-only Wavelet Trie over a URL
access log, saves it with :mod:`repro.storage`, reloads it and keeps appending
-- showing that the on-disk form is itself compressed and that the reloaded
index is fully functional (queries *and* updates).

The same workflow is available from the shell:

    wavelet-trie build access.log -o access.wt
    wavelet-trie info access.wt --bounds
    wavelet-trie top access.wt -k 5

Run with:  python examples/persistence.py
"""

import os
import tempfile

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.storage import load, save
from repro.workloads import UrlLogGenerator


def main() -> None:
    urls = UrlLogGenerator(domains=12, depth=3, branching=3, seed=2024).generate(5000)
    raw_bytes = sum(len(url.encode()) + 1 for url in urls)

    index = AppendOnlyWaveletTrie(urls)
    print(f"indexed {len(index):,} URLs, {index.distinct_count():,} distinct")
    print(f"in-memory payload  : {index.size_in_bits() / 8 / 1024:.1f} KiB")

    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "access.wt")
        written = save(index, path)
        print(f"raw text           : {raw_bytes / 1024:.1f} KiB")
        print(f"on-disk index      : {written / 1024:.1f} KiB "
              f"({written / raw_bytes:.2f}x of the raw text)")
        print()

        restored = load(path)
        print("reloaded index answers the same queries:")
        top_url, top_count = restored.top_k_in_range(0, len(restored), 1)[0]
        print(f"  most frequent URL: {top_url}  ({top_count} accesses)")
        domain = top_url.split("/")[2]
        print(f"  accesses under http://{domain}: "
              f"{restored.count_prefix(f'http://{domain}')}")
        print()

        # The reloaded structure is still append-only dynamic: keep ingesting.
        for url in UrlLogGenerator(domains=12, depth=3, branching=3, seed=9).generate(500):
            restored.append(url)
        print(f"appended 500 more URLs after reload; length is now {len(restored):,}")
        save(restored, path)
        print(f"re-saved index     : {os.path.getsize(path) / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
