#!/usr/bin/env python3
"""Access-log analytics: "what was the most accessed domain during the window?"

This is the paper's flagship motivating scenario (Section 1): URLs are
appended chronologically to an append-only Wavelet Trie; a time window is a
position range; and the analytics -- per-domain counts, top URLs, distinct
hosts, majority element -- run directly on the compressed index through
RankPrefix / SelectPrefix and the Section 5 range algorithms.

Run with:  python examples/url_access_log.py
"""

from repro.analysis import compute_bounds
from repro.db import AccessLogStore
from repro.workloads import UrlLogGenerator


def main() -> None:
    generator = UrlLogGenerator(domains=40, depth=4, branching=5, seed=2024)
    entries = generator.generate(5000)

    store = AccessLogStore()
    for tick, url in enumerate(entries):
        store.append(url, timestamp=tick)

    print(f"log size            : {len(store)} accesses")
    print(f"compressed index    : {store.size_in_bits() / 8 / 1024:.1f} KiB")
    raw_bytes = sum(len(url) for url in entries)
    print(f"raw log             : {raw_bytes / 1024:.1f} KiB")
    bounds = compute_bounds(entries)
    print(f"lower bound LB      : {bounds.lb_bits / 8 / 1024:.1f} KiB")
    print()

    # "Winter vacation" = the middle 40% of the log.
    start_time, end_time = 1500, 3500
    print(f"=== window [{start_time}, {end_time}) ===")

    top_domains = {}
    for domain in generator.domains()[:10]:
        prefix = f"http://{domain}/"
        top_domains[domain] = store.count_prefix(prefix, start_time, end_time)
    ranked = sorted(top_domains.items(), key=lambda item: -item[1])[:5]
    print("accesses per domain (top 5 by RankPrefix):")
    for domain, count in ranked:
        print(f"  {domain:<28} {count:5d}")
    print()

    print("top 5 individual URLs in the window (best-first top-k):")
    for url, count in store.top_urls(5, start_time, end_time):
        print(f"  {count:5d}  {url}")
    print()

    busiest_domain = ranked[0][0]
    prefix = f"http://{busiest_domain}/"
    distinct = store.distinct_urls(start_time, end_time, prefix=prefix)
    print(f"distinct URLs under {busiest_domain}: {len(distinct)}")
    majority = store.majority_url(start_time, end_time, prefix=prefix)
    print(f"majority URL under that domain      : {majority}")
    print()

    first_hits = store.accesses_under(prefix, start_time, end_time, limit=3)
    print("first three accesses under that domain in the window:")
    for timestamp, url in first_hits:
        print(f"  t={timestamp:5d}  {url}")


if __name__ == "__main__":
    main()
