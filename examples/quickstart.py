#!/usr/bin/env python3
"""Quickstart: the Wavelet Trie in five minutes.

Builds the three Wavelet Trie variants over a tiny path sequence and walks
through every primitive of the paper -- Access, Rank, Select, RankPrefix,
SelectPrefix, Append, Insert, Delete -- plus the range analytics of Section 5
and the space accounting against the information-theoretic lower bound.

Run with:  python examples/quickstart.py
"""

from repro import AppendOnlyWaveletTrie, DynamicWaveletTrie, WaveletTrie
from repro.analysis import compute_bounds


def main() -> None:
    paths = [
        "/home", "/cart", "/home", "/cart/checkout", "/home",
        "/api/v1/items", "/api/v1/items", "/home", "/cart", "/api/v2/items",
    ]

    print("=== Static Wavelet Trie (bulk load) ===")
    trie = WaveletTrie(paths)
    print(f"sequence length      : {len(trie)}")
    print(f"distinct values      : {trie.distinct_count()}")
    print(f"access(3)            : {trie.access(3)!r}")
    print(f"rank('/home', 8)     : {trie.rank('/home', 8)}  (occurrences before position 8)")
    print(f"select('/cart', 1)   : {trie.select('/cart', 1)}  (position of the 2nd '/cart')")
    print(f"rank_prefix('/api',10): {trie.rank_prefix('/api', 10)}")
    print(f"select_prefix('/api',2): {trie.select_prefix('/api', 2)}")
    print()

    print("=== Section 5 range analytics ===")
    print(f"distinct in [2, 9)   : {trie.distinct_in_range(2, 9)}")
    print(f"majority in [0, 10)  : {trie.range_majority(0, 10)}")
    print(f"top-2 in [0, 10)     : {trie.top_k_in_range(0, 10, 2)}")
    print(f"frequent >=3 in range: {trie.frequent_in_range(0, 10, 3)}")
    print()

    print("=== Append-only Wavelet Trie (log ingestion) ===")
    log = AppendOnlyWaveletTrie()
    for path in paths:
        log.append(path)
    log.append("/totally/new/path")  # a never-seen string: the alphabet grows
    print(f"after appends, length: {len(log)}")
    print(f"count('/home')       : {log.count('/home')}")
    print(f"count_prefix('/cart'): {log.count_prefix('/cart')}")
    print()

    print("=== Fully dynamic Wavelet Trie (insert / delete anywhere) ===")
    dyn = DynamicWaveletTrie(paths)
    dyn.insert("/promo", 5)
    removed = dyn.delete(0)
    print(f"inserted '/promo' at 5, deleted position 0 (was {removed!r})")
    print(f"sequence now         : {dyn.to_list()}")
    print()

    print("=== Space vs. the information-theoretic lower bound ===")
    bounds = compute_bounds(paths)
    print(f"LB  = LT + nH0       : {bounds.lb_bits:8.1f} bits")
    print(f"  LT(Sset)           : {bounds.lt_bits:8.1f} bits")
    print(f"  nH0(S)             : {bounds.entropy_bits:8.1f} bits")
    print(f"static measured      : {trie.size_in_bits():8d} bits "
          f"(bitvectors only: {trie.bitvector_bits()} bits)")
    print(f"raw input            : {bounds.total_input_bits:8d} bits")


if __name__ == "__main__":
    main()
