#!/usr/bin/env python3
"""Section 6 in action: dynamic Wavelet Trees over a 64-bit universe.

A sequence of 64-bit integers with a small working alphabet cannot be handled
by a classic dynamic Wavelet Tree without building the full universe tree
(depth 64).  The Section 6 construction hashes values with a random odd
multiplier, stores the hashes LSB-first in a dynamic Wavelet Trie, and the
resulting tree is balanced around log2(|working alphabet|) with high
probability -- regardless of the universe.

Run with:  python examples/numeric_sequences.py
"""

import math

from repro.core.dynamic import DynamicWaveletTrie
from repro.tries.binarize import FixedWidthIntCodec
from repro.wavelet import BalancedDynamicWaveletTree
from repro.workloads import IntegerSequenceGenerator


def main() -> None:
    universe = 2 ** 64
    generator = IntegerSequenceGenerator(
        universe=universe, alphabet_size=64, clustered=True, seed=11
    )
    values = generator.generate(2000)
    distinct = len(set(values))
    print(f"universe                   : 2^64")
    print(f"sequence length            : {len(values)}")
    print(f"working alphabet           : {distinct} distinct values (clustered)")
    print()

    balanced = BalancedDynamicWaveletTree(universe=universe, values=values, seed=7)
    print("=== hashed (Section 6) dynamic Wavelet Tree ===")
    print(f"max path height            : {balanced.max_height()}")
    print(f"average height             : {balanced.average_height():.2f}")
    print(f"Theorem 6.2 bound (alpha=1): {balanced.theoretical_height_bound(1.0):.1f}")
    print(f"log2(universe)             : {math.log2(universe):.0f}")
    print()

    # The unhashed trie on raw fixed-width integers: clustered values share
    # long prefixes, so the trie degenerates towards the universe depth.
    raw = DynamicWaveletTrie(codec=FixedWidthIntCodec(64))
    for value in values:
        raw.append(value)
    raw_height = _height(raw)
    print("=== unhashed trie on the raw 64-bit encoding (for contrast) ===")
    print(f"max path height            : {raw_height}")
    print()

    print("=== the sequence interface still works on numbers ===")
    needle = values[0]
    print(f"count({needle})        : {balanced.count(needle)}")
    print(f"select({needle}, 0)    : {balanced.select(needle, 0)}")
    balanced.insert(123456789, 10)
    print(f"inserted 123456789 at 10; access(10) = {balanced.access(10)}")
    removed = balanced.delete(10)
    print(f"deleted it again (was {removed})")


def _height(trie: DynamicWaveletTrie) -> int:
    best = 0
    stack = [(trie.root, 0)]
    while stack:
        node, depth = stack.pop()
        if node is None:
            continue
        if node.is_leaf:
            best = max(best, depth)
            continue
        stack.append((node.children[0], depth + 1))
        stack.append((node.children[1], depth + 1))
    return best


if __name__ == "__main__":
    main()
