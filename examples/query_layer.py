#!/usr/bin/env python3
"""Declarative queries over compressed columns (the column-store scenario).

The introduction of the paper singles out column-oriented databases: store
every column as an indexed sequence and run filters directly on the
compressed representation.  This example builds a three-column request table,
then answers SQL-flavoured questions through :class:`repro.db.Query` --
selectivity-ordered plans, prefix predicates, time-window restriction, LIMIT
and GROUP BY -- without ever decompressing the table.

Run with:  python examples/query_layer.py
"""

import random

from repro.db import ColumnStore, Query
from repro.workloads import UrlLogGenerator


def build_table(rows: int) -> ColumnStore:
    rng = random.Random(7)
    urls = UrlLogGenerator(domains=10, depth=2, branching=3, seed=41).generate(rows)
    statuses = ["200"] * 90 + ["404"] * 7 + ["500"] * 3
    methods = ["GET"] * 80 + ["POST"] * 15 + ["DELETE"] * 5
    table = ColumnStore(["url", "status", "method"])
    for url in urls:
        table.append_row(
            {
                "url": url,
                "status": rng.choice(statuses),
                "method": rng.choice(methods),
            }
        )
    return table


def main() -> None:
    table = build_table(8000)
    print(f"table: {len(table):,} rows, compressed to "
          f"{table.size_in_bits() / 8 / 1024:.1f} KiB across {len(table.column_names)} columns")
    print()

    # SELECT url, status WHERE status = '500' AND method = 'POST' LIMIT 5
    query = (
        Query(table)
        .where_eq("status", "500")
        .where_eq("method", "POST")
        .select("url", "status")
        .limit(5)
    )
    print("=== errors on write requests (first 5) ===")
    print(query.explain())
    for row in query.rows():
        print(f"  {row['status']}  {row['url']}")
    print()

    # Prefix predicate: everything under one domain, restricted to a "time window"
    # (rows 2000-4000), grouped by status.
    domain_prefix = "http://" + Query(table).first()["url"].split("/")[2]
    windowed = Query(table).where_prefix("url", domain_prefix).in_rows(2000, 4000)
    print(f"=== requests under {domain_prefix} in rows [2000, 4000) ===")
    print(f"matching rows: {windowed.count()}")
    for status, count in windowed.group_by_count("status"):
        print(f"  status {status}: {count}")
    print()

    # IN-predicate + plan inspection.
    failures = Query(table).where_in("status", ["404", "500"]).where_prefix("url", domain_prefix)
    print("=== failures under the same domain ===")
    print(failures.explain())
    print(f"count: {failures.count()}")
    print()

    # Pure index analytics on one column: top URLs overall.
    print("=== top 3 URLs by traffic ===")
    for url, count in table.column("url").top_values(3):
        print(f"  {count:5d}  {url}")


if __name__ == "__main__":
    main()
