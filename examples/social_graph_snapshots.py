#!/usr/bin/env python3
"""Evolving social-graph edges: adjacency snapshots from an edge stream.

The paper's introduction suggests storing a changing binary relation (e.g.
friendship links) as a chronological sequence of edge strings and answering
"how did the adjacency list of vertex v change during this time frame?" with
prefix queries.  The fully dynamic Wavelet Trie additionally lets us *retract*
edges (delete) anywhere in the history.

Run with:  python examples/social_graph_snapshots.py
"""

from repro.core.dynamic import DynamicWaveletTrie
from repro.workloads import EdgeStreamGenerator


def main() -> None:
    generator = EdgeStreamGenerator(initial_vertices=6, seed=31)
    edges = generator.generate(3000)

    history = DynamicWaveletTrie()
    for edge in edges:
        history.append(edge)
    print(f"edge events stored         : {len(history)}")
    print(f"distinct edges             : {history.distinct_count()}")
    print(f"compressed history         : {history.size_in_bits() / 8 / 1024:.1f} KiB")
    print()

    # Adjacency changes of one vertex inside a "month" (an event range).
    vertex = generator.vertex_uri(0)
    prefix = f"{vertex} ->"
    window = (1000, 2000)
    changed = history.distinct_in_range(*window, prefix=prefix)
    total = history.range_count_prefix(prefix, *window)
    print(f"=== adjacency changes of {vertex} in events [{window[0]}, {window[1]}) ===")
    print(f"edge events touching it    : {total}")
    print(f"distinct neighbours touched: {len(changed)}")
    for edge, count in changed[:5]:
        print(f"  {count:4d}x  {edge}")
    print()

    # Point-in-time snapshot: every edge of the vertex seen up to event 1500.
    upto = 1500
    snapshot = [
        edge for edge, _ in history.distinct_in_range(0, upto, prefix=prefix)
    ]
    print(f"snapshot at event {upto}: {vertex} has {len(snapshot)} distinct outgoing edges")
    print()

    # Retract the first recorded occurrence of the most frequent edge.
    (top_edge, top_count), = history.top_k_in_range(0, len(history), 1)
    position = history.select(top_edge, 0)
    history.delete(position)
    print(f"retracted one occurrence of the most frequent edge:")
    print(f"  {top_edge}  ({top_count} -> {history.count(top_edge)} occurrences)")
    print(f"history length now         : {len(history)}")


if __name__ == "__main__":
    main()
