#!/usr/bin/env python3
"""Column-oriented storage on compressed indexes.

Models the database scenario of the paper's introduction: each column of a
relation is stored as an indexed sequence of strings.  Filters (equality and
prefix), projections and GROUP BY run on the Wavelet Trie primitives, and the
example compares the compressed footprint with the uncompressed column and
with the traditional B-tree-index baseline.

Run with:  python examples/column_store.py
"""

import random

from repro.baselines import BTreeSequenceIndex, NaiveIndexedSequence
from repro.db import ColumnStore
from repro.workloads import ColumnGenerator


def main() -> None:
    rows = 4000
    rng = random.Random(99)
    location_gen = ColumnGenerator(cardinality=48, zipf_exponent=1.1, seed=5)
    locations = location_gen.generate(rows)
    statuses = [rng.choice(["ok", "ok", "ok", "retry", "error"]) for _ in range(rows)]
    services = [rng.choice(["web", "api", "batch"]) for _ in range(rows)]

    table = ColumnStore(["location", "status", "service"])
    for location, status, service in zip(locations, statuses, services):
        table.append_row({"location": location, "status": status, "service": service})

    print(f"rows                      : {len(table)}")
    print(f"compressed table size     : {table.size_in_bits() / 8 / 1024:.1f} KiB")
    print()

    print("=== SELECT count(*) WHERE status = 'error' AND location LIKE 'emea/%' ===")
    count = table.count_where({"status": "error"}, {"location": "emea/"})
    print(f"matching rows             : {count}")
    sample = table.filter({"status": "error"}, {"location": "emea/"})[:5]
    for row in table.project(sample, ["location", "service"]):
        print(f"  {row}")
    print()

    print("=== GROUP BY location prefix (region roll-up on the first 2000 rows) ===")
    for region in ["emea/", "amer/", "apac/", "latam/"]:
        in_window = table.column("location").count_prefix(region, end_row=2000)
        print(f"  {region:<7} {in_window:5d}")
    print()

    print("=== top locations overall (best-first top-k on the column index) ===")
    for value, count in table.column("location").top_values(5):
        print(f"  {count:5d}  {value}")
    print()

    print("=== space: Wavelet Trie column vs. uncompressed vs. B-tree index ===")
    compressed = table.column("location").size_in_bits()
    naive = NaiveIndexedSequence(locations).size_in_bits()
    btree = BTreeSequenceIndex(locations).size_in_bits()
    print(f"  Wavelet Trie column     : {compressed / 8 / 1024:8.1f} KiB")
    print(f"  uncompressed list       : {naive / 8 / 1024:8.1f} KiB")
    print(f"  B-tree (s, i) index     : {btree / 8 / 1024:8.1f} KiB")


if __name__ == "__main__":
    main()
