"""Experiments T1-Q-static / T1-Q-append / T1-Q-dyn (paper Table 1, Query column).

Claim under test: Access, Rank, Select, RankPrefix and SelectPrefix cost
``O(|s| + h_s)`` on the static and append-only Wavelet Tries -- i.e. the
per-query time is *independent of n* -- and ``O(|s| + h_s log n)`` on the
fully dynamic variant, i.e. it grows slowly (logarithmically) with n.

Each benchmark executes a fixed batch of 50 queries of each kind against a
pre-built trie of n elements; compare the per-batch times across the n sweep
(500 / 2000 / 8000) to see the shape.
"""

import pytest

from benchmarks.conftest import SIZES, make_query_batch

QUERIES_PER_KIND = 50


def run_query_batch(trie, batch):
    """The measured unit: 50 queries of each of the five primitives."""
    total = 0
    size = len(trie)
    for value, position, prefix in batch:
        total += trie.rank(value, position)
        total += trie.rank_prefix(prefix, position)
        occurrences = trie.count(value)
        if occurrences:
            total += trie.select(value, occurrences - 1)
        with_prefix = trie.count_prefix(prefix)
        if with_prefix:
            total += trie.select_prefix(prefix, with_prefix - 1)
        total += len(trie.access(position % size))
    return total


def _attach_info(benchmark, trie, n, variant):
    benchmark.extra_info["experiment"] = f"T1-Q-{variant}"
    benchmark.extra_info["n"] = n
    benchmark.extra_info["distinct"] = trie.distinct_count()
    benchmark.extra_info["avg_height"] = round(trie.average_height(), 2)
    benchmark.extra_info["queries_per_round"] = QUERIES_PER_KIND * 5


@pytest.mark.parametrize("n", SIZES)
def test_query_static(benchmark, static_tries, url_logs, n):
    """T1-Q-static: query time should stay flat as n grows."""
    trie = static_tries[n]
    batch = make_query_batch(url_logs[n], QUERIES_PER_KIND)
    _attach_info(benchmark, trie, n, "static")
    result = benchmark(run_query_batch, trie, batch)
    assert result >= 0


@pytest.mark.parametrize("n", SIZES)
def test_query_append_only(benchmark, append_only_tries, url_logs, n):
    """T1-Q-append: same flat shape on the append-only variant."""
    trie = append_only_tries[n]
    batch = make_query_batch(url_logs[n], QUERIES_PER_KIND)
    _attach_info(benchmark, trie, n, "append-only")
    result = benchmark(run_query_batch, trie, batch)
    assert result >= 0


@pytest.mark.parametrize("n", SIZES)
def test_query_dynamic(benchmark, dynamic_tries, url_logs, n):
    """T1-Q-dyn: the dynamic variant pays an extra log n factor."""
    trie = dynamic_tries[n]
    batch = make_query_batch(url_logs[n], QUERIES_PER_KIND)
    _attach_info(benchmark, trie, n, "dynamic")
    result = benchmark(run_query_batch, trie, batch)
    assert result >= 0
