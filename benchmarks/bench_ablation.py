"""Experiment ABL-BV (ablation): which bitvector inside the static Wavelet Trie?

The paper's static construction uses RRR node bitvectors; practical succinct
libraries often prefer plain or RLE bitvectors depending on the workload.  The
ablation builds the same static Wavelet Trie with each of the three encodings
and measures construction time, a query batch and the resulting space, on a
skewed URL log (run-friendly) and a balanced column (incompressible-ish).

A second ablation varies the append-only bitvector block size ``L`` -- the
knob of Theorem 4.5's construction.
"""

import pytest

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.static import WaveletTrie

from benchmarks.conftest import make_column, make_query_batch, make_url_log

N = 3000

WORKLOADS = {
    "urls": lambda: make_url_log(N),
    "column": lambda: make_column(N),
}


@pytest.mark.parametrize("kind", ["rrr", "plain", "rle"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_static_trie_bitvector_choice_construction(benchmark, kind, workload):
    values = WORKLOADS[workload]()

    trie = benchmark.pedantic(
        WaveletTrie, args=(values,), kwargs={"bitvector": kind}, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "experiment": "ABL-BV/construction",
            "workload": workload,
            "bitvector": kind,
            "bitvector_bits": trie.bitvector_bits(),
            "total_bits": trie.size_in_bits(),
        }
    )
    assert len(trie) == N


@pytest.mark.parametrize("kind", ["rrr", "plain", "rle"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_static_trie_bitvector_choice_queries(benchmark, kind, workload):
    values = WORKLOADS[workload]()
    trie = WaveletTrie(values, bitvector=kind)
    batch = make_query_batch(values, 40)

    def run():
        total = 0
        for value, position, prefix in batch:
            total += trie.rank(value, position)
            total += trie.rank_prefix(prefix, position)
            total += len(trie.access(position % N))
        return total

    benchmark.extra_info.update(
        {
            "experiment": "ABL-BV/query",
            "workload": workload,
            "bitvector": kind,
            "bitvector_bits": trie.bitvector_bits(),
        }
    )
    assert benchmark(run) > 0


@pytest.mark.parametrize("block_size", [256, 1024, 4096])
def test_append_only_block_size(benchmark, block_size):
    """ABL-L: the tail-block size of the append-only bitvectors (Theorem 4.5's L)."""
    values = make_url_log(N)

    def build():
        return AppendOnlyWaveletTrie(values, block_size=block_size)

    trie = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "experiment": "ABL-L/append-only-block",
            "block_size": block_size,
            "bitvector_bits": trie.bitvector_bits(),
        }
    )
    assert len(trie) == N
