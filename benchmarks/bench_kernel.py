"""Microbenchmarks for the word-level bitops kernel -> BENCH_kernel.json.

Two families of sections:

* the legacy seed comparisons -- kernel-backed hot paths (pinned to the
  ``python`` backend for trajectory continuity) against faithful replicas of
  the seed implementation (per-bit in-word select scans, per-bit
  ``iter_range``, per-call rank loops, O(n^2) packing) on 1M-bit vectors;
* the ``backends`` section -- the python and numpy kernel backends side by
  side on the same inputs, per contract function.  Each backend is measured
  at its *native boundary* (python: list in / list out; numpy: word/query
  arrays in, arrays out -- the form vectorised callers use); for the batch
  queries the numpy backend's list-boundary number is recorded too, so the
  cost of crossing containers is visible.  Every section cross-checks the
  two backends' answers for equality first, so the benchmark doubles as a
  differential correctness harness.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full, writes BENCH_kernel.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # small sizes, no file

The quick mode is also invoked from the test suite
(``tests/integration/test_bench_kernel_quick.py``) and via
``make bench-kernel-quick``, so the harness cannot silently break.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from bisect import bisect_right
from pathlib import Path
from typing import Dict, Iterator, List

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.codes import combinatorial_unrank
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.wavelet.wavelet_tree import WaveletTree

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


# ----------------------------------------------------------------------
# Seed replicas (the pre-kernel implementation, verbatim algorithms)
# ----------------------------------------------------------------------
def seed_bits_from_iterable(bits) -> Bits:
    """The seed ``Bits.from_iterable``: one growing big-int shift per bit."""
    value = 0
    length = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
        length += 1
    return Bits(value, length)


class SeedPlainBitVector:
    """The seed ``PlainBitVector``: per-word cumulative directory, per-bit
    in-word select scan, per-bit ``iter_range``."""

    __slots__ = ("_words", "_length", "_cum_ones")

    def __init__(self, bits: Bits) -> None:
        self._length = len(bits)
        value = bits.value
        remaining = self._length
        chunks: List[int] = []
        while remaining >= _WORD:
            remaining -= _WORD
            chunks.append((value >> remaining) & _WORD_MASK)
        if remaining:
            chunks.append((value & ((1 << remaining) - 1)) << (_WORD - remaining))
        self._words = chunks
        self._finish_directory()

    @classmethod
    def from_words(cls, words: List[int], length: int) -> "SeedPlainBitVector":
        """Bypass the quadratic packer so 1M-bit query benchmarks stay cheap
        to set up; the query paths are byte-for-byte the seed algorithms."""
        self = cls.__new__(cls)
        self._words = list(words)
        self._length = length
        self._finish_directory()
        return self

    def _finish_directory(self) -> None:
        cum = 0
        self._cum_ones: List[int] = []
        for word in self._words:
            self._cum_ones.append(cum)
            cum += word.bit_count()
        self._cum_ones.append(cum)

    def __len__(self) -> int:
        return self._length

    # The seed's base-class validation, kept verbatim so per-call overhead is
    # identical to what the seed actually paid.
    def _check_pos(self, pos):
        if not 0 <= pos < len(self):
            raise IndexError(pos)

    def _check_rank_pos(self, pos):
        if not 0 <= pos <= len(self):
            raise IndexError(pos)

    @staticmethod
    def _check_bit(bit):
        if bit not in (0, 1):
            raise ValueError(bit)
        return bit

    @property
    def ones(self) -> int:
        return self._cum_ones[-1]

    def count(self, bit: int) -> int:
        return self.ones if bit else self._length - self.ones

    def access(self, pos: int) -> int:
        self._check_pos(pos)
        word_index, offset = divmod(pos, _WORD)
        return (self._words[word_index] >> (_WORD - 1 - offset)) & 1

    def rank(self, bit: int, pos: int) -> int:
        self._check_bit(bit)
        self._check_rank_pos(pos)
        word_index, offset = divmod(pos, _WORD)
        ones = self._cum_ones[word_index]
        if offset:
            word = self._words[word_index]
            ones += (word >> (_WORD - offset)).bit_count()
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        self._check_bit(bit)
        total = self.count(bit)
        if not 0 <= idx < total:
            raise IndexError(idx)
        if bit:
            word_index = bisect_right(self._cum_ones, idx) - 1
            seen = self._cum_ones[word_index]
        else:
            lo, hi = 0, len(self._words)
            while lo < hi:
                mid = (lo + hi + 1) // 2
                zeros_before = min(mid * _WORD, self._length) - self._cum_ones[mid]
                if zeros_before <= idx:
                    lo = mid
                else:
                    hi = mid - 1
            word_index = lo
            seen = word_index * _WORD - self._cum_ones[word_index]
        word = self._words[word_index]
        base = word_index * _WORD
        limit = min(_WORD, self._length - base)
        for offset in range(limit):
            value = (word >> (_WORD - 1 - offset)) & 1
            if value == bit:
                if seen == idx:
                    return base + offset
                seen += 1
        raise AssertionError("select directory inconsistent")

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        pos = start
        while pos < stop:
            word_index, offset = divmod(pos, _WORD)
            word = self._words[word_index]
            upper = min(stop, (word_index + 1) * _WORD)
            for local in range(offset, offset + (upper - pos)):
                yield (word >> (_WORD - 1 - local)) & 1
            pos = upper


class SeedQueryRRR(RRRBitVector):
    """A kernel-built RRR vector queried with the seed's algorithms.

    Construction reuses the current encoder (identical payload); ``rank``
    runs the seed's query path verbatim: per-block class-list walk, one
    big-int slice of the whole offset stream per decode, full-block
    ``combinatorial_unrank`` then a shifted popcount.
    """

    __slots__ = ("_offsets_bits",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._offsets_bits = Bits(
            kernel.unpack_value(self._offset_words, self._offset_len),
            self._offset_len,
        )

    def _seed_decode(self, block_index, offset_pos):
        cls = self._class_list[block_index]
        off_w = self._width_by_class[cls]
        if off_w == 0:
            return ((1 << self._block_size) - 1) if cls == self._block_size else 0
        offset_value = self._offsets_bits.slice(offset_pos, offset_pos + off_w).value
        return combinatorial_unrank(offset_value, self._block_size, cls)

    def _seed_walk(self, block_index):
        sample_index = block_index // self._sample_rate
        rank_before = self._sample_rank[sample_index]
        offset_pos = self._sample_offset_pos[sample_index]
        widths = self._width_by_class
        classes = self._class_list
        current = sample_index * self._sample_rate
        while current < block_index:
            cls = classes[current]
            rank_before += cls
            offset_pos += widths[cls]
            current += 1
        return rank_before, offset_pos

    def rank(self, bit, pos):
        self._check_bit(bit)
        self._check_rank_pos(pos)
        if pos == 0:
            return 0
        block_index, offset = divmod(pos, self._block_size)
        if block_index >= len(self._class_list):
            ones = self._ones
            return ones if bit else pos - ones
        rank_before, offset_pos = self._seed_walk(block_index)
        ones = rank_before
        if offset:
            value = self._seed_decode(block_index, offset_pos)
            ones += (value >> (self._block_size - offset)).bit_count()
        return ones if bit else pos - ones


def seed_wavelet_build(data: List[int], alphabet_size: int) -> object:
    """The seed ``WaveletTree`` construction: per-element recursion with the
    quadratic ``Bits.from_iterable`` + quadratic word packing inside every
    node bitvector."""

    def build(symbols: List[int], low: int, high: int):
        if high - low <= 1 or not symbols:
            return (low, high, None, None, None)
        mid = (low + high) // 2
        bits = [1 if symbol >= mid else 0 for symbol in symbols]
        vector = SeedPlainBitVector(seed_bits_from_iterable(bits))
        left = build([s for s in symbols if s < mid], low, mid)
        right = build([s for s in symbols if s >= mid], mid, high)
        return (low, high, vector, left, right)

    return build(data, 0, alphabet_size)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _entry(ops: int, seed_seconds: float, kernel_seconds: float) -> Dict[str, float]:
    return {
        "ops": ops,
        "seed_ops_per_sec": round(ops / seed_seconds, 1),
        "kernel_ops_per_sec": round(ops / kernel_seconds, 1),
        "speedup": round(seed_seconds / kernel_seconds, 2),
    }


def run(quick: bool = False, repeats: int = 3) -> Dict[str, object]:
    """Run every microbenchmark; returns the BENCH_kernel.json payload.

    The legacy seed-comparison sections run pinned to the ``python`` kernel
    backend (so their trajectory stays comparable across PRs); the
    ``backends`` section then measures both backends side by side.
    """
    previous_backend = kernel.use_backend("python")
    try:
        payload = _run_seed_sections(quick, repeats)
    finally:
        kernel.use_backend(previous_backend)
    payload["backends"] = _run_backend_sections(quick, repeats)
    return payload


def _run_seed_sections(quick: bool, repeats: int) -> Dict[str, object]:
    """The seed-replica comparisons (python backend pinned by the caller)."""
    n_bits = 100_000 if quick else 1_000_000
    n_select = 400 if quick else 2_000
    n_rank = 2_000 if quick else 20_000
    n_access = 2_000 if quick else 20_000
    wt_n = 4_000 if quick else 30_000
    wt_sigma = 64

    rng = random.Random(20260727)
    payload = Bits.from_bytes(rng.randbytes(n_bits // 8))
    assert len(payload) == n_bits

    kernel_vector = PlainBitVector(payload)
    seed_vector = SeedPlainBitVector.from_words(kernel_vector._words, n_bits)

    results: Dict[str, Dict[str, float]] = {}

    # select: word-skipping directory + table-driven in-word select vs the
    # seed's per-bit in-word scan.
    ones = kernel_vector.ones
    zeros = n_bits - ones
    select_queries = [(1, rng.randrange(ones)) for _ in range(n_select // 2)]
    select_queries += [(0, rng.randrange(zeros)) for _ in range(n_select // 2)]
    seed_answers = [seed_vector.select(b, i) for b, i in select_queries]
    kernel_answers = [kernel_vector.select(b, i) for b, i in select_queries]
    assert seed_answers == kernel_answers, "select mismatch vs seed"
    seed_time = _best_time(
        lambda: [seed_vector.select(b, i) for b, i in select_queries], repeats
    )
    kernel_time = _best_time(
        lambda: [kernel_vector.select(b, i) for b, i in select_queries], repeats
    )
    results["select"] = _entry(len(select_queries), seed_time, kernel_time)

    # rank, on the paper's default compressed bitvector (RRR): truncated
    # enumeration descent + O(1) packed offset extraction vs the seed's
    # full-block decode over one big-int offset stream.
    n_rank_rrr = max(100, n_rank // 50)
    rrr_kernel = RRRBitVector(payload)
    rrr_seed = SeedQueryRRR(payload)
    rrr_positions = [rng.randrange(n_bits + 1) for _ in range(n_rank_rrr)]
    assert [rrr_kernel.rank(1, p) for p in rrr_positions] == [
        rrr_seed.rank(1, p) for p in rrr_positions
    ], "RRR rank mismatch vs seed"
    seed_time = _best_time(
        lambda: [rrr_seed.rank(1, p) for p in rrr_positions], repeats
    )
    kernel_time = _best_time(
        lambda: [rrr_kernel.rank(1, p) for p in rrr_positions], repeats
    )
    results["rank"] = _entry(n_rank_rrr, seed_time, kernel_time)
    results["rank"]["path"] = "RRRBitVector.rank (static trie default)"

    # rank on the plain vector: the new batch path vs the seed's per-call
    # loop.  The per-item floor of the CPython interpreter keeps this one
    # below the RRR gain; recorded for transparency.
    rank_positions = [rng.randrange(n_bits + 1) for _ in range(n_rank)]
    assert kernel_vector.rank_many(1, rank_positions) == [
        seed_vector.rank(1, p) for p in rank_positions
    ], "rank mismatch vs seed"
    seed_time = _best_time(
        lambda: [seed_vector.rank(1, p) for p in rank_positions], repeats
    )
    kernel_time = _best_time(
        lambda: kernel_vector.rank_many(1, rank_positions), repeats
    )
    results["rank_plain_batch"] = _entry(n_rank, seed_time, kernel_time)

    # access: batch access_many vs the seed's per-call loop.
    access_positions = [rng.randrange(n_bits) for _ in range(n_access)]
    assert kernel_vector.access_many(access_positions) == [
        seed_vector.access(p) for p in access_positions
    ], "access mismatch vs seed"
    seed_time = _best_time(
        lambda: [seed_vector.access(p) for p in access_positions], repeats
    )
    kernel_time = _best_time(
        lambda: kernel_vector.access_many(access_positions), repeats
    )
    results["access"] = _entry(n_access, seed_time, kernel_time)

    # iter_range: byte-table broadword decoding vs the seed's per-bit yields.
    span = n_bits - 7  # unaligned on purpose
    assert list(kernel_vector.iter_range(3, span)) == list(
        seed_vector.iter_range(3, span)
    ), "iter_range mismatch vs seed"
    seed_time = _best_time(lambda: sum(seed_vector.iter_range(3, span)), repeats)
    kernel_time = _best_time(
        lambda: sum(kernel_vector.iter_range(3, span)), repeats
    )
    results["iter_range"] = _entry(span - 3, seed_time, kernel_time)

    # wavelet-tree build: broadside construction over linear packers vs the
    # seed's recursion over quadratic Bits accumulation.
    wt_data = [rng.randrange(wt_sigma) for _ in range(wt_n)]
    seed_time = _best_time(
        lambda: seed_wavelet_build(wt_data, wt_sigma), repeats
    )
    kernel_time = _best_time(
        lambda: WaveletTree(wt_data, alphabet_size=wt_sigma, bitvector="plain"),
        repeats,
    )
    results["wavelet_build"] = _entry(wt_n, seed_time, kernel_time)

    return {
        "benchmark": "bench_kernel",
        "quick": quick,
        "n_bits": n_bits,
        "wavelet": {"n": wt_n, "sigma": wt_sigma},
        "python": sys.version.split()[0],
        "results": results,
    }


# ----------------------------------------------------------------------
# Backend-vs-backend sections (python vs numpy on identical inputs)
# ----------------------------------------------------------------------
def _timed_under_backend(backend: str, fn, repeats: int):
    """Best-of-N timing of ``fn`` with ``backend`` active; returns (result, s).

    The timed runs double as the result runs -- ``fn`` executes exactly
    ``repeats`` times, never an extra warm-up pass.
    """
    previous = kernel.use_backend(backend)
    try:
        best = float("inf")
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - started)
        return result, best
    finally:
        kernel.use_backend(previous)


def _backend_entry(
    ops: int, python_seconds: float, numpy_seconds: float, **extra
) -> Dict[str, float]:
    entry = {
        "ops": ops,
        "python_ops_per_sec": round(ops / python_seconds, 1),
        "numpy_ops_per_sec": round(ops / numpy_seconds, 1),
        "numpy_speedup": round(python_seconds / numpy_seconds, 2),
    }
    entry.update(extra)
    return entry


def _run_backend_sections(quick: bool, repeats: int) -> Dict[str, object]:
    """Measure both kernel backends side by side on identical inputs.

    Returns the ``backends`` payload; when numpy is unavailable only the
    availability list is recorded.  Each backend runs at its native
    container boundary (see the module docstring); the batch queries also
    record the numpy backend fed plain lists.
    """
    available = list(kernel.available_backends())
    payload: Dict[str, object] = {
        "available": available,
        "boundary": (
            "python: lists in/out; numpy: uint64/int64 arrays in/out "
            "(native boundary); *_list entries feed the numpy backend "
            "python lists instead"
        ),
    }
    if "numpy" not in available:
        return payload
    import numpy as np

    n_bits = 100_000 if quick else 1_000_000
    n_queries = 2_000 if quick else 20_000
    n_select = 400 if quick else 2_000
    wt_n = 4_000 if quick else 30_000
    wt_sigma = 64

    rng = random.Random(20260728)
    payload_bits = Bits.from_bytes(rng.randbytes(n_bits // 8))
    words = kernel.pack_value(payload_bits.value, n_bits)
    words_arr = np.asarray(words, dtype=np.uint64)
    results: Dict[str, Dict[str, float]] = {}

    # pack_bits: one million python ints -> packed words.  The list boundary
    # is the dominant cost for numpy, so both boundaries are recorded.
    bit_list = [rng.randint(0, 1) for _ in range(n_bits)]
    bit_arr = np.asarray(bit_list, dtype=np.uint8)
    (py_words, py_len), py_t = _timed_under_backend(
        "python", lambda: kernel.pack_bits(bit_list), repeats
    )
    (np_words, np_len), np_t = _timed_under_backend(
        "numpy", lambda: kernel.pack_bits(bit_arr), repeats
    )
    _, np_list_t = _timed_under_backend(
        "numpy", lambda: kernel.pack_bits(bit_list), repeats
    )
    assert py_len == np_len and py_words == kernel.as_int_list(np_words)
    results["pack_bits"] = _backend_entry(
        n_bits,
        py_t,
        np_t,
        numpy_list_ops_per_sec=round(n_bits / np_list_t, 1),
        numpy_list_speedup=round(py_t / np_list_t, 2),
    )

    # Bulk rank-directory build: the full two-level directory plus the flat
    # cumulatives every batch path runs on, from the packed words.
    def build_directory(word_seq):
        super_cum, word_pop, word_cum = kernel.build_rank_directory(word_seq)
        abs_cum, zero_cum = kernel.cumulative_popcounts(word_pop, n_bits)
        return super_cum, word_pop, word_cum, abs_cum, zero_cum

    py_dir, py_t = _timed_under_backend(
        "python", lambda: build_directory(words), repeats
    )
    np_dir, np_t = _timed_under_backend(
        "numpy", lambda: build_directory(words_arr), repeats
    )
    _, np_list_t = _timed_under_backend(
        "numpy", lambda: build_directory(words), repeats
    )
    assert py_dir[1] == np_dir[1]
    for py_part, np_part in zip(py_dir, np_dir):
        if py_part is not np_part:
            assert kernel.as_int_list(py_part) == kernel.as_int_list(np_part)
    results["directory_build"] = _backend_entry(
        len(words),
        py_t,
        np_t,
        numpy_list_ops_per_sec=round(len(words) / np_list_t, 1),
        numpy_list_speedup=round(py_t / np_list_t, 2),
    )

    # Batched directory lookups: rank_many / access_many / select_many over
    # a prepared handle (prepared once, like a constructed bitvector).
    _, _, _, abs_cum, zero_cum = py_dir
    positions = [rng.randrange(n_bits + 1) for _ in range(n_queries)]
    access_positions = [rng.randrange(n_bits) for _ in range(n_queries)]
    pos_arr = np.asarray(positions, dtype=np.int64)
    access_arr = np.asarray(access_positions, dtype=np.int64)
    ones_total = abs_cum[-1]
    zeros_total = zero_cum[-1]
    sel_ones = [rng.randrange(ones_total) for _ in range(n_select)]
    sel_zeros = [rng.randrange(zeros_total) for _ in range(n_select)]
    sel_ones_arr = np.asarray(sel_ones, dtype=np.int64)

    previous = kernel.use_backend("python")
    py_handle = kernel.prepare_rank_select(words, n_bits, abs_cum, zero_cum)
    kernel.use_backend("numpy")
    np_handle = kernel.prepare_rank_select(
        words_arr, n_bits, abs_cum, zero_cum
    )
    kernel.use_backend(previous)

    def section(name, ops, py_fn, np_fn, np_list_fn):
        py_res, py_t = _timed_under_backend("python", py_fn, repeats)
        np_res, np_t = _timed_under_backend("numpy", np_fn, repeats)
        _, np_list_t = _timed_under_backend("numpy", np_list_fn, repeats)
        assert py_res == kernel.as_int_list(np_res), f"{name} mismatch"
        results[name] = _backend_entry(
            ops,
            py_t,
            np_t,
            numpy_list_ops_per_sec=round(ops / np_list_t, 1),
            numpy_list_speedup=round(py_t / np_list_t, 2),
        )

    section(
        "rank_many",
        n_queries,
        lambda: kernel.rank_many_packed(py_handle, 1, positions),
        lambda: kernel.rank_many_packed(np_handle, 1, pos_arr),
        lambda: kernel.rank_many_packed(np_handle, 1, positions),
    )
    section(
        "access_many",
        n_queries,
        lambda: kernel.access_many_packed(py_handle, access_positions),
        lambda: kernel.access_many_packed(np_handle, access_arr),
        lambda: kernel.access_many_packed(np_handle, access_positions),
    )
    section(
        "select_many",
        n_select,
        lambda: kernel.select_many_packed(py_handle, 1, sel_ones),
        lambda: kernel.select_many_packed(np_handle, 1, sel_ones_arr),
        lambda: kernel.select_many_packed(np_handle, 1, sel_ones),
    )
    # Zero-select correctness across the width-masked final word.
    py_zero, _ = _timed_under_backend(
        "python", lambda: kernel.select_many_packed(py_handle, 0, sel_zeros), 1
    )
    np_zero, _ = _timed_under_backend(
        "numpy", lambda: kernel.select_many_packed(np_handle, 0, sel_zeros), 1
    )
    assert py_zero == kernel.as_int_list(np_zero), "select_many(0) mismatch"

    # Whole-structure wavelet build (list boundary on both sides): the
    # partition_by_pivot + from_words construction path end to end.
    wt_data = [rng.randrange(wt_sigma) for _ in range(wt_n)]
    py_tree, py_t = _timed_under_backend(
        "python",
        lambda: WaveletTree(wt_data, alphabet_size=wt_sigma, bitvector="plain"),
        repeats,
    )
    np_tree, np_t = _timed_under_backend(
        "numpy",
        lambda: WaveletTree(wt_data, alphabet_size=wt_sigma, bitvector="plain"),
        repeats,
    )
    probe = [rng.randrange(wt_n) for _ in range(200)]
    assert py_tree.access_many(probe) == list(np_tree.access_many(probe))
    results["wavelet_build"] = _backend_entry(wt_n, py_t, np_t)

    payload["n_bits"] = n_bits
    payload["results"] = results
    return payload


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, do not write JSON"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernel.json",
        help="where to write the JSON payload (full mode only)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if not args.quick:
        args.output.write_text(rendered + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
