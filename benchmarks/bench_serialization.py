"""Experiment STORAGE: on-disk size and (de)serialisation speed of the index.

Not a paper table -- the paper has no persistence section -- but the storage
layer is part of the engineered system, so its costs are tracked here: how
long dumping/loading a compressed index takes compared to rebuilding it from
the raw values, and how the on-disk size compares to the raw text and to the
measured in-memory size.
"""

import pytest

from benchmarks.conftest import make_url_log
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.static import WaveletTrie
from repro.storage import dumps, loads

N = 4000


@pytest.fixture(scope="module")
def workload():
    return make_url_log(N)


@pytest.fixture(scope="module")
def static_trie(workload):
    return WaveletTrie(workload)


@pytest.fixture(scope="module")
def serialized(static_trie):
    return dumps(static_trie)


def test_serialize_static(benchmark, static_trie, workload):
    """dumps() of a static trie vs. the raw text size."""
    raw_bytes = sum(len(value.encode()) + 1 for value in workload)
    data = benchmark(dumps, static_trie)
    benchmark.extra_info["experiment"] = "STORAGE-dump"
    benchmark.extra_info["n"] = N
    benchmark.extra_info["raw_bytes"] = raw_bytes
    benchmark.extra_info["stored_bytes"] = len(data)
    benchmark.extra_info["ratio_vs_raw"] = round(len(data) / raw_bytes, 3)
    assert len(data) < raw_bytes


def test_deserialize_static(benchmark, serialized, workload):
    """loads() must be much cheaper than rebuilding the trie from raw values."""
    benchmark.extra_info["experiment"] = "STORAGE-load"
    benchmark.extra_info["n"] = N
    restored = benchmark(loads, serialized)
    assert len(restored) == len(workload)


def test_rebuild_from_raw(benchmark, workload):
    """Baseline for STORAGE-load: building the static trie from the value list."""
    benchmark.extra_info["experiment"] = "STORAGE-rebuild-baseline"
    benchmark.extra_info["n"] = N
    trie = benchmark(WaveletTrie, workload)
    assert len(trie) == N


def test_serialize_append_only(benchmark, workload):
    """dumps() of the append-only variant (RLE payloads of its node bitvectors)."""
    trie = AppendOnlyWaveletTrie(workload)
    benchmark.extra_info["experiment"] = "STORAGE-dump-append-only"
    benchmark.extra_info["n"] = N
    data = benchmark(dumps, trie)
    assert loads(data).access(0) == workload[0]
