"""Shared fixtures for the benchmark harness.

Workloads are deliberately in the regime the paper targets (many repetitions
per distinct string) and sized so the whole harness runs in minutes on pure
Python.  Every benchmark attaches the relevant sizes/bounds through
``benchmark.extra_info`` so the numbers can be copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.workloads import ColumnGenerator, UrlLogGenerator

# The n-sweep used by the Table 1 scaling experiments.
SIZES = [500, 2000, 8000]


def make_url_log(n: int, seed: int = 1234) -> List[str]:
    """A URL log with ~60 distinct URLs (n >> |Sset|, the paper's regime)."""
    return UrlLogGenerator(domains=10, depth=2, branching=2, seed=seed).generate(n)


def make_column(n: int, seed: int = 99) -> List[str]:
    """A hierarchical column with 32 distinct values."""
    return ColumnGenerator(cardinality=32, zipf_exponent=1.1, seed=seed).generate(n)


def make_query_batch(values: List[str], count: int, seed: int = 7):
    """A deterministic batch of (value, position, prefix) query arguments."""
    rng = random.Random(seed)
    batch = []
    for _ in range(count):
        value = rng.choice(values)
        position = rng.randint(0, len(values))
        prefix = value[: rng.randint(7, min(18, len(value)))]
        batch.append((value, position, prefix))
    return batch


@pytest.fixture(scope="session")
def url_logs() -> Dict[int, List[str]]:
    """URL logs for every size in the sweep."""
    return {n: make_url_log(n) for n in SIZES}


@pytest.fixture(scope="session")
def static_tries(url_logs) -> Dict[int, WaveletTrie]:
    """Pre-built static Wavelet Tries (construction excluded from query timings)."""
    return {n: WaveletTrie(values) for n, values in url_logs.items()}


@pytest.fixture(scope="session")
def append_only_tries(url_logs) -> Dict[int, AppendOnlyWaveletTrie]:
    """Pre-built append-only Wavelet Tries."""
    return {n: AppendOnlyWaveletTrie(values) for n, values in url_logs.items()}


@pytest.fixture(scope="session")
def dynamic_tries(url_logs) -> Dict[int, DynamicWaveletTrie]:
    """Pre-built fully dynamic Wavelet Tries."""
    return {n: DynamicWaveletTrie(values) for n, values in url_logs.items()}
