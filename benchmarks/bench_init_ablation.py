"""Experiment ABL-INIT (Remark 4.2): why the dynamic bitvector must be RLE.

The paper's Section 4.2 argues that gap-encoded dynamic bitvectors (the prior
state of the art) cannot support ``Init(b, n)`` -- creating a constant
bitvector of arbitrary length -- in sub-linear time, because their encoding
size is proportional to the number of 1s.  The RLE+gamma bitvector fixes this
with a single run node.

The benchmarks time ``Init(1, n)`` on both encodings for growing ``n``; the
RLE version must stay flat while the gap version grows linearly.
"""

import pytest

from repro.bitvector import DynamicBitVector, GapEncodedBitVector

SIZES = [1_000, 4_000, 16_000]


@pytest.mark.parametrize("n", SIZES)
def test_init_rle_bitvector(benchmark, n):
    """Init(1, n) on the Section 4.2 RLE+gamma bitvector: O(1) nodes."""

    def run():
        vector = DynamicBitVector.init_run(1, n)
        return vector.rank(1, n // 2)

    benchmark.extra_info.update({"experiment": "ABL-INIT/rle", "n": n})
    assert benchmark(run) == n // 2


@pytest.mark.parametrize("n", SIZES)
def test_init_gap_bitvector(benchmark, n):
    """Init(1, n) on the gap-encoded baseline: one code per 1 bit (linear)."""

    def run():
        vector = GapEncodedBitVector.init_run(1, n)
        return vector.rank(1, n // 2)

    benchmark.extra_info.update({"experiment": "ABL-INIT/gap", "n": n})
    assert benchmark(run) == n // 2
