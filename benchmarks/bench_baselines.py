"""Experiment RW-BASE (Section 1 / Related Work comparison).

The Wavelet Trie against the three traditional representations of an indexed
string sequence:

1. alphabet mapping + integer Wavelet Tree (``DictWaveletSequence``),
2. concatenation + character-level compression (``TextCollectionSequence``),
3. B-tree over ``(s, i)`` pairs plus an explicit copy (``BTreeSequenceIndex``),

plus the uncompressed list as a reference point.  Each benchmark runs the same
query batch on one implementation; ``extra_info`` records measured space and
which operations the implementation supports, which is the qualitative half of
the comparison (dynamic alphabet, SelectPrefix).
"""

import pytest

from repro.baselines import (
    BTreeSequenceIndex,
    DictWaveletSequence,
    NaiveIndexedSequence,
    TextCollectionSequence,
)
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.static import WaveletTrie
from repro.exceptions import InvalidOperationError

from benchmarks.conftest import make_query_batch, make_url_log

N = 3000

IMPLEMENTATIONS = {
    "wavelet-trie-static": WaveletTrie,
    "wavelet-trie-append": AppendOnlyWaveletTrie,
    "dict-wavelet-tree": DictWaveletSequence,
    "btree-index": BTreeSequenceIndex,
    "text-collection": TextCollectionSequence,
    "naive-list": NaiveIndexedSequence,
}


@pytest.fixture(scope="module")
def values():
    return make_url_log(N)


@pytest.fixture(scope="module")
def built(values):
    return {name: factory(values) for name, factory in IMPLEMENTATIONS.items()}


@pytest.mark.parametrize("name", sorted(IMPLEMENTATIONS))
def test_point_queries(benchmark, built, values, name):
    """Access + Rank + Select batch (the operations everyone supports)."""
    implementation = built[name]
    batch = make_query_batch(values, 30)

    def run():
        total = 0
        for value, position, _ in batch:
            total += len(implementation.access(position % N))
            total += implementation.rank(value, position)
            total += implementation.select(value, 0)
        return total

    benchmark.extra_info.update(
        {
            "experiment": "RW-BASE/point",
            "implementation": name,
            "n": N,
            "size_bits": implementation.size_in_bits(),
        }
    )
    assert benchmark(run) > 0


@pytest.mark.parametrize(
    "name",
    ["wavelet-trie-static", "wavelet-trie-append", "dict-wavelet-tree", "btree-index", "naive-list"],
)
def test_prefix_rank(benchmark, built, values, name):
    """RankPrefix batch (the text-collection baseline is skipped: too slow by design)."""
    implementation = built[name]
    batch = make_query_batch(values, 30)

    def run():
        total = 0
        for _, position, prefix in batch:
            total += implementation.rank_prefix(prefix, position)
        return total

    benchmark.extra_info.update({"experiment": "RW-BASE/rank-prefix", "implementation": name})
    assert benchmark(run) >= 0


@pytest.mark.parametrize("name", ["wavelet-trie-static", "wavelet-trie-append", "btree-index", "naive-list"])
def test_prefix_select(benchmark, built, values, name):
    """SelectPrefix batch -- note the dict-wavelet baseline cannot run this at all."""
    implementation = built[name]
    batch = make_query_batch(values, 20)

    def run():
        total = 0
        for _, _, prefix in batch:
            count = implementation.rank_prefix(prefix, N)
            if count:
                total += implementation.select_prefix(prefix, count - 1)
        return total

    benchmark.extra_info.update({"experiment": "RW-BASE/select-prefix", "implementation": name})
    assert benchmark(run) >= 0


def test_dict_wavelet_cannot_select_prefix_or_grow(built):
    """The qualitative columns of the comparison (not a timing benchmark)."""
    baseline = built["dict-wavelet-tree"]
    with pytest.raises(InvalidOperationError):
        baseline.select_prefix("http://", 0)
    with pytest.raises(InvalidOperationError):
        baseline.append("http://brand-new.example/")


@pytest.mark.parametrize("name", ["wavelet-trie-append", "btree-index", "naive-list"])
def test_append_throughput(benchmark, values, name):
    """Appends of (partly unseen) values for the implementations that allow it."""
    factory = IMPLEMENTATIONS[name]
    implementation = factory(values)
    extra = make_url_log(200, seed=777)
    payload = [f"{value}/tail" for value in extra]

    def run():
        for value in payload[:100]:
            implementation.append(value)

    benchmark.extra_info.update({"experiment": "RW-BASE/append", "implementation": name})
    benchmark(run)
    assert len(implementation) > N
