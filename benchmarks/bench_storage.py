"""Cold-open benchmark: RWT1 logical load vs RWT2 mmap open -> BENCH_storage.json.

The claim under test is the tentpole property of the frozen-image container:
opening an RWT2 file costs O(sections) -- no word array is read, decoded or
copied -- so the cold-open latency is (a) orders of magnitude below the RWT1
decode-and-rebuild path and (b) roughly flat as the index grows 1M -> 10M
elements, while resident memory after open stays near the interpreter
baseline because pages fault in lazily.

Index construction at 10M elements is made affordable by *tiling*: for a
fixed vocabulary, the node bitvectors of a k-fold repeated value sequence
are exactly the k-fold concatenation of the base sequence's node bitvectors
(the Patricia topology depends only on the value *set*), so the benchmark
builds a base trie once and replicates each node bitvector with O(log k)
big-int shifts instead of running the builder over 10M values.  The tiled
trie is cross-checked against a directly-built trie at small size.

Measurements per size:

* in-process ``save``/``load`` (RWT1, 1M only -- the rebuild is the
  baseline) and ``save_image``/``open_image`` (RWT2) wall times, plus a
  first-query probe after open;
* cold-open in a **fresh subprocess** (full mode): open latency and
  ``ru_maxrss`` straight after open and after a query sweep, RWT1 vs RWT2;
* **multi-process shared page cache** (full mode): four concurrent fresh
  interpreters serving the same file -- mmap'd RWT2 readers share the word
  arrays through the kernel page cache while RWT1 readers each decode a
  private heap, so the aggregate RSS ratio grows with the reader count;
* differential equality: the image opened under *every available kernel
  backend* must answer a query sample identically to the in-memory
  original (and to the RWT1-rebuilt copy where one exists).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_storage.py            # full, writes BENCH_storage.json
    PYTHONPATH=src python benchmarks/bench_storage.py --quick    # small sizes, no file

The quick mode is also invoked from the test suite
(``tests/integration/test_bench_storage_quick.py``) and via
``make bench-storage-quick``, so the harness cannot silently break.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bitvector.rrr import RRRBitVector
from repro.core.node import WaveletTrieNode
from repro.core.static import WaveletTrie
from repro.storage import load, open_image, save, save_image
from repro.storage.serializers import _bitvector_content

_VOCAB = [f"/d{i // 4}/p{i % 4}" for i in range(16)]


def _values(count: int, seed: int = 1234) -> List[str]:
    rng = random.Random(seed)
    return [_VOCAB[rng.randrange(len(_VOCAB))] for _ in range(count)]


# ----------------------------------------------------------------------
# Tiled construction
# ----------------------------------------------------------------------
def _repeat_bits(bits: Bits, k: int) -> Bits:
    """``bits`` concatenated with itself ``k`` times, in O(log k) shifts."""
    result_value, result_length = 0, 0
    base_value, base_length = bits.value, len(bits)
    while k:
        if k & 1:
            result_value = (result_value << base_length) | base_value
            result_length += base_length
        k >>= 1
        if k:
            base_value = (base_value << base_length) | base_value
            base_length *= 2
    return Bits(result_value, result_length)


def tiled_trie(base: WaveletTrie, k: int) -> WaveletTrie:
    """The static trie indexing the base sequence repeated ``k`` times.

    Clones the topology and replaces each internal node's bitvector with the
    RRR encoding of its k-fold tiling (the builder never sees the repeated
    sequence).  ``base`` may use any node-bitvector kind; the result is RRR.
    """
    tiled = WaveletTrie([], codec=base.codec, bitvector="rrr")
    tiled._size = len(base) * k
    root = base.root
    if root is None:
        return tiled

    def clone(node):
        if node.is_leaf:
            return WaveletTrieNode(node.label)
        content = _bitvector_content(node.bitvector)
        return WaveletTrieNode(node.label, RRRBitVector(_repeat_bits(content, k)))

    root_clone = clone(root)
    stack = [(root, root_clone)]
    while stack:
        original, copy = stack.pop()
        if original.is_leaf:
            continue
        for bit in (0, 1):
            child = original.children[bit]
            child_copy = clone(child)
            copy.attach(bit, child_copy)
            stack.append((child, child_copy))
    tiled._root = root_clone
    return tiled


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
def _probe_positions(n: int, count: int = 200) -> List[int]:
    rng = random.Random(99)
    return [rng.randrange(n) for _ in range(count)]


def _query_sample(trie, positions: List[int]):
    """A deterministic query fingerprint: access + rank + prefix count."""
    accessed = [trie.access(position) for position in positions]
    value = _VOCAB[0]
    return (
        accessed,
        trie.rank(value, len(trie)),
        trie.count_prefix("/d0"),
    )


def _timed(fn, repeats: int):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return result, best


# ----------------------------------------------------------------------
# Subprocess cold-open (full mode)
# ----------------------------------------------------------------------
_COLD_SCRIPT = """
import json, resource, sys, time

def rss_kb():
    # Current resident set (not the ru_maxrss peak, which the interpreter +
    # numpy import dominates); falls back to the peak off Linux.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

sys.path.insert(0, {src!r})
from repro.storage import load, open_image
rss_baseline = rss_kb()
started = time.perf_counter()
index = {open_call}({path!r})
open_s = time.perf_counter() - started
rss_after_open = rss_kb()
started = time.perf_counter()
probe = [index.access(position) for position in range(0, len(index), max(1, len(index) // 200))]
query_s = time.perf_counter() - started
rss_after_queries = rss_kb()
print(json.dumps({{
    "open_s": open_s,
    "first_queries_s": query_s,
    "rss_baseline_kb": rss_baseline,
    "rss_open_delta_kb": rss_after_open - rss_baseline,
    "rss_queries_delta_kb": rss_after_queries - rss_baseline,
    "elements": len(index),
}}))
"""


def _cold_open(path: Path, open_call: str) -> Dict[str, float]:
    """Open ``path`` in a fresh interpreter; report latency and peak RSS."""
    script = _COLD_SCRIPT.format(src=str(SRC), open_call=open_call, path=str(path))
    completed = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    return json.loads(completed.stdout)


def _shared_page_cache(path: Path, open_call: str, workers: int = 4) -> Dict[str, object]:
    """``workers`` concurrent fresh interpreters over the *same* file.

    For the mmap'd RWT2 image the kernel page cache holds the word arrays
    once, so every process beyond the first opens against warm pages and its
    private heap stays near the interpreter baseline; RWT1 readers each
    decode into their own heap, multiplying resident memory per reader.
    Reports per-process open latency and RSS deltas after a query sweep.
    """
    script = _COLD_SCRIPT.format(src=str(SRC), open_call=open_call, path=str(path))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(workers)
    ]
    rows = []
    for proc in procs:
        stdout, stderr = proc.communicate()
        if proc.returncode:
            raise RuntimeError(f"shared-cache worker failed: {stderr}")
        rows.append(json.loads(stdout))
    return {
        "workers": workers,
        "open_s_max": round(max(row["open_s"] for row in rows), 4),
        "open_s_mean": round(sum(row["open_s"] for row in rows) / workers, 4),
        "rss_queries_delta_kb_per_worker": [
            row["rss_queries_delta_kb"] for row in rows
        ],
        "rss_queries_delta_kb_total": sum(row["rss_queries_delta_kb"] for row in rows),
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run(quick: bool = False, repeats: int = 3) -> Dict[str, object]:
    """Run the storage benchmark; returns the BENCH_storage.json payload."""
    base_count = 2_000 if quick else 100_000
    tile_factors = [2, 5] if quick else [10, 100]
    rwt1_sizes = {base_count * tile_factors[0]}  # the decode-baseline size
    base_values = _values(base_count)
    base = WaveletTrie(base_values, bitvector="plain")

    # Tiling correctness: at a checkable size the tiled trie must equal the
    # directly-built trie on the full query surface sample.
    check_k = 3
    direct = WaveletTrie(base_values[:500] * check_k)
    tiled_check = tiled_trie(WaveletTrie(base_values[:500], bitvector="plain"), check_k)
    check_positions = _probe_positions(500 * check_k)
    assert _query_sample(direct, check_positions) == _query_sample(
        tiled_check, check_positions
    ), "tiled trie disagrees with direct build"

    results: Dict[str, Dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="bench_storage_") as workdir:
        for k in tile_factors:
            n = base_count * k
            entry: Dict[str, object] = {"elements": n, "tile_factor": k}
            started = time.perf_counter()
            trie = tiled_trie(base, k)
            entry["build_s"] = round(time.perf_counter() - started, 3)
            positions = _probe_positions(n)
            expected = _query_sample(trie, positions)

            image_path = Path(workdir) / f"trie_{n}.rwt2"
            _, save_image_s = _timed(lambda: save_image(trie, image_path), 1)
            entry["rwt2_bytes"] = image_path.stat().st_size
            entry["rwt2_save_s"] = round(save_image_s, 4)

            opened, open_s = _timed(lambda: open_image(image_path), repeats)
            entry["rwt2_open_s"] = round(open_s, 6)
            _, probe_s = _timed(lambda: _query_sample(opened, positions), 1)
            entry["rwt2_first_queries_s"] = round(probe_s, 4)

            # Differential: the mapped image answers identically under every
            # backend.
            for backend in kernel.available_backends():
                previous = kernel.use_backend(backend)
                try:
                    assert _query_sample(open_image(image_path), positions) == expected, (
                        f"image query mismatch under {backend} backend at n={n}"
                    )
                finally:
                    kernel.use_backend(previous)

            if n in rwt1_sizes:
                rwt1_path = Path(workdir) / f"trie_{n}.rwt1"
                _, save_s = _timed(lambda: save(trie, rwt1_path), 1)
                entry["rwt1_bytes"] = rwt1_path.stat().st_size
                entry["rwt1_save_s"] = round(save_s, 4)
                rebuilt, load_s = _timed(lambda: load(rwt1_path), repeats)
                entry["rwt1_load_s"] = round(load_s, 4)
                assert _query_sample(rebuilt, positions) == expected, (
                    f"RWT1 rebuild query mismatch at n={n}"
                )
                entry["open_speedup_vs_rwt1"] = round(load_s / open_s, 1)
                if not quick:
                    entry["cold_rwt1"] = _cold_open(rwt1_path, "load")

            if not quick:
                entry["cold_rwt2"] = _cold_open(image_path, "open_image")
                if "cold_rwt1" in entry:
                    entry["cold_open_speedup"] = round(
                        entry["cold_rwt1"]["open_s"] / entry["cold_rwt2"]["open_s"], 1
                    )
                # Multi-process serving: four readers share one image's
                # page cache vs four RWT1 readers each rebuilding a private
                # heap.  Compared head-to-head at the RWT1 baseline size;
                # RWT2-only at the largest size to show it scales.
                if "rwt1_bytes" in entry or k == tile_factors[-1]:
                    entry["shared_cache_rwt2"] = _shared_page_cache(
                        image_path, "open_image"
                    )
                if "rwt1_bytes" in entry:
                    entry["shared_cache_rwt1"] = _shared_page_cache(
                        Path(workdir) / f"trie_{n}.rwt1", "load"
                    )
                    entry["shared_cache_rss_ratio"] = round(
                        entry["shared_cache_rwt1"]["rss_queries_delta_kb_total"]
                        / max(
                            1,
                            entry["shared_cache_rwt2"]["rss_queries_delta_kb_total"],
                        ),
                        1,
                    )

            results[f"n={n}"] = entry

    sizes = [base_count * k for k in tile_factors]
    flatness: Optional[float] = None
    if len(sizes) >= 2:
        small = results[f"n={sizes[0]}"]["rwt2_open_s"]
        large = results[f"n={sizes[-1]}"]["rwt2_open_s"]
        flatness = round(large / small, 2) if small else None
    return {
        "quick": quick,
        "base_elements": base_count,
        "vocabulary": len(_VOCAB),
        "backends": list(kernel.available_backends()),
        "results": results,
        # open-time growth across a {sizes[-1]//sizes[0]}x size increase;
        # ~1.0 means the open cost is independent of index size.
        "rwt2_open_growth": flatness,
        "size_ratio": sizes[-1] // sizes[0],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, do not write JSON"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_storage.json",
        help="where to write the JSON payload (full mode only)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if not args.quick:
        args.output.write_text(rendered + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
