"""Experiments FIG1 / FIG2 (the paper's worked examples).

Figure 1 -- the Wavelet Tree of ``abracadabra`` over ``{a, b, c, d, r}``.
Figure 2 -- the Wavelet Trie of ``<0001, 0011, 0100, 00100, 0100, 00100, 0100>``.

Correctness of the exact node labels/bitvectors is asserted in the unit tests
(tests/wavelet/test_wavelet_tree.py, tests/core/test_figure2.py); here the
examples are used as micro-benchmarks of construction plus a full query sweep,
so regressions in the small-input code paths are caught.
"""

import pytest

from repro.bits.bitstring import Bits
from repro.core.static import WaveletTrie
from repro.wavelet import WaveletTree

FIGURE1_TEXT = "abracadabra"
FIGURE1_SYMBOLS = {"a": 0, "b": 1, "c": 2, "d": 3, "r": 4}
FIGURE2_SEQUENCE = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]


def figure1_roundtrip():
    data = [FIGURE1_SYMBOLS[c] for c in FIGURE1_TEXT]
    tree = WaveletTree(data, alphabet_size=5)
    total = 0
    for position in range(len(data)):
        total += tree.access(position)
    for symbol in range(5):
        total += tree.rank(symbol, len(data))
        if tree.count(symbol):
            total += tree.select(symbol, tree.count(symbol) - 1)
    return total


def figure2_roundtrip():
    encoded = [Bits.from_string(s) for s in FIGURE2_SEQUENCE]
    trie = WaveletTrie.from_bits_sequence(encoded)
    total = 0
    for position in range(len(encoded)):
        total += len(trie.access_bits(position))
    for value in set(FIGURE2_SEQUENCE):
        bits = Bits.from_string(value)
        total += trie.rank_bits(bits, len(encoded))
        total += trie.select_bits(bits, 0)
    total += trie.rank_prefix_bits(Bits.from_string("01"), len(encoded))
    return total


def test_figure1_wavelet_tree(benchmark):
    """FIG1: build + full query sweep of the abracadabra Wavelet Tree."""
    benchmark.extra_info["experiment"] = "FIG1"
    result = benchmark(figure1_roundtrip)
    assert result > 0


def test_figure2_wavelet_trie(benchmark):
    """FIG2: build + full query sweep of the Figure 2 Wavelet Trie."""
    benchmark.extra_info["experiment"] = "FIG2"
    result = benchmark(figure2_roundtrip)
    assert result > 0
