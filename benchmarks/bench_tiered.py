"""Sustained mixed-workload benchmark: TieredWaveletTrie vs DynamicWaveletTrie
-> BENCH_tiered.json.

The claim under test is the LSM composition's reason to exist: under a
sustained zipf-skewed mix of batch queries and tail writes at n >= 1M, the
tiered trie (one merged frozen RRR tier + a small mutable tail)

* answers the count-style batch queries (``rank_many`` /
  ``rank_prefix_many`` -- the column-store workhorses behind ``count_eq`` /
  ``count_prefix``) *faster* than an equally-sized pure
  :class:`~repro.core.dynamic.DynamicWaveletTrie`, because most positions
  resolve in the frozen RRR tier whose rank structures are flat, while the
  dynamic trie pays a treap descent per node at full 1M depth;
* absorbs writes with a **bounded worst-case latency**: each write funds
  ``compact_budget`` block units of the in-flight freeze (Lemma 4.7 applied
  to the whole tier), so the max single-append wall time stays orders of
  magnitude below the stop-the-world freeze of a full tier -- which is
  exactly what a naive "freeze the tail when it fills" design would pay on
  the unlucky write.

Not everything favours the tiered layout: per-tier fan-out multiplies query
cost (hence the major compaction after bulk load), RRR ``select`` is slower
than the treap's, and ``access`` is near parity.  The per-op-type table in
the payload reports all of it; the headline mixed-throughput number uses the
query-heavy mix stated in the payload.

Every phase is differential: both structures execute the identical operation
stream and every batch result is compared for equality, so the benchmark
doubles as a large-scale correctness harness.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_tiered.py            # full (n=1M), writes BENCH_tiered.json
    PYTHONPATH=src python benchmarks/bench_tiered.py --quick    # small sizes, no file

The quick mode is also invoked from the test suite
(``tests/integration/test_bench_tiered_quick.py``) and via
``make bench-tiered-quick``, so the harness cannot silently break.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits import kernel
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.tiers import TieredWaveletTrie, freeze_trie
from repro.workloads import ColumnGenerator

# The query-heavy mix (fractions of the operation stream).  Writes are
# appends plus tail-window inserts/deletes; queries are 64-wide batches.
MIX = {
    "rank_many": 0.45,
    "rank_prefix_many": 0.30,
    "access_many": 0.15,
    "write": 0.10,
}
BATCH = 64


@contextlib.contextmanager
def _gc_paused():
    """Suspend automatic collection around latency-sensitive timing.

    Both structures live in one process, so a gen-2 collection scanning the
    *baseline's* millions of treap nodes would otherwise show up as a
    multi-ms pause attributed to whichever side was mid-operation.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def _workload(n: int, seed: int = 7):
    generator = ColumnGenerator(cardinality=64, zipf_exponent=1.1, seed=seed)
    return generator.generate(n), generator.distinct_values()


def _op_stream(count: int, n: int, population: List[str], seed: int = 99):
    """A deterministic operation stream drawn from MIX (shared by both sides)."""
    rng = random.Random(seed)
    kinds = list(MIX)
    weights = [MIX[kind] for kind in kinds]
    ops = []
    for _ in range(count):
        kind = rng.choices(kinds, weights)[0]
        if kind == "write":
            ops.append(("write", rng.choice(population), None))
        elif kind == "rank_many":
            value = population[min(rng.randrange(8), len(population) - 1)]
            ops.append((kind, value, [rng.randrange(n) for _ in range(BATCH)]))
        elif kind == "rank_prefix_many":
            prefix = rng.choice(["emea/", "amer/", "apac/", "emea/pisa"])
            ops.append((kind, prefix, [rng.randrange(n) for _ in range(BATCH)]))
        else:  # access_many
            ops.append((kind, None, [rng.randrange(n) for _ in range(BATCH)]))
    return ops


def _run_stream(index, ops):
    """Execute the stream; returns (elapsed_s, max_single_op_s, results)."""
    results = []
    max_op = 0.0
    started = time.perf_counter()
    for kind, arg, batch in ops:
        op_start = time.perf_counter()
        if kind == "write":
            index.append(arg)
            results.append(None)
        elif kind == "rank_many":
            results.append(index.rank_many(arg, batch))
        elif kind == "rank_prefix_many":
            results.append(index.rank_prefix_many(arg, batch))
        else:
            results.append(index.access_many(batch))
        max_op = max(max_op, time.perf_counter() - op_start)
    return time.perf_counter() - started, max_op, results


def _per_op_costs(tiered, dynamic, n: int, population: List[str], repeats: int):
    """Best-of-``repeats`` per-op-type costs (seconds per 100 batch calls)."""
    rng = random.Random(3)
    positions = [rng.randrange(n) for _ in range(BATCH)]
    probe = population[0]
    occurrences = dynamic.count(probe)
    indexes = [rng.randrange(occurrences) for _ in range(BATCH)]
    calls = {
        "rank_many": lambda index: index.rank_many(probe, positions),
        "rank_prefix_many": lambda index: index.rank_prefix_many("emea/", positions),
        "access_many": lambda index: index.access_many(positions),
        "select_many": lambda index: index.select_many(probe, indexes),
    }
    table: Dict[str, Dict[str, float]] = {}
    for name, call in calls.items():
        row: Dict[str, float] = {}
        for label, index in (("tiered", tiered), ("dynamic", dynamic)):
            assert call(tiered) == call(dynamic), f"{name} differential mismatch"
            best = None
            for _ in range(repeats):
                started = time.perf_counter()
                for _ in range(100):
                    call(index)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            row[f"{label}_s_per_100"] = round(best, 4)
        row["speedup"] = round(row["dynamic_s_per_100"] / row["tiered_s_per_100"], 2)
        table[name] = row
    return table


def run(quick: bool = False, repeats: int = 3) -> Dict[str, object]:
    """Run the tiered benchmark; returns the BENCH_tiered.json payload."""
    n = 20_000 if quick else 1_000_000
    capacity = 4_096 if quick else 65_536
    mixed_ops = 60 if quick else 400
    write_burst = 2 * capacity + capacity // 2  # crosses >= 2 seals

    values, population = _workload(n)
    payload: Dict[str, object] = {
        "quick": quick,
        "elements": n,
        "active_capacity": capacity,
        "compact_budget": 32,
        "zipf_exponent": 1.1,
        "vocabulary": len(population),
        "batch_width": BATCH,
        "mix": MIX,
        "backends": list(kernel.available_backends()),
    }

    # ------------------------------------------------------------------
    # Bulk load + one major compaction (the steady serving layout: one
    # merged frozen RRR tier + a small mutable tail).
    # ------------------------------------------------------------------
    started = time.perf_counter()
    tiered = TieredWaveletTrie(values, active_capacity=capacity, compact_budget=32)
    tiered_build_s = time.perf_counter() - started
    started = time.perf_counter()
    tiered.compact(merge=True)
    compact_s = time.perf_counter() - started
    started = time.perf_counter()
    dynamic = DynamicWaveletTrie(values)
    dynamic_build_s = time.perf_counter() - started
    payload["setup"] = {
        "tiered_load_s": round(tiered_build_s, 2),
        "tiered_major_compact_s": round(compact_s, 2),
        "dynamic_load_s": round(dynamic_build_s, 2),
        "tiered_bits": tiered.size_in_bits(),
        "dynamic_bits": dynamic.size_in_bits(),
        "space_ratio": round(dynamic.size_in_bits() / tiered.size_in_bits(), 2),
    }

    # ------------------------------------------------------------------
    # Sustained mixed workload, identical streams, differential-checked.
    # ------------------------------------------------------------------
    ops = _op_stream(mixed_ops, n, population)
    with _gc_paused():
        tiered_s, tiered_max_op, tiered_results = _run_stream(tiered, ops)
        dynamic_s, dynamic_max_op, dynamic_results = _run_stream(dynamic, ops)
    assert tiered_results == dynamic_results, "mixed-stream differential mismatch"
    payload["mixed_workload"] = {
        "operations": mixed_ops,
        "tiered_s": round(tiered_s, 3),
        "dynamic_s": round(dynamic_s, 3),
        "tiered_ops_per_s": round(mixed_ops / tiered_s, 1),
        "dynamic_ops_per_s": round(mixed_ops / dynamic_s, 1),
        "speedup": round(dynamic_s / tiered_s, 2),
        "tiered_max_single_op_s": round(tiered_max_op, 5),
        "dynamic_max_single_op_s": round(dynamic_max_op, 5),
    }

    # ------------------------------------------------------------------
    # Per-op-type transparency table (select_many included: it favours the
    # dynamic treap -- RRR select pays a sampled search per occurrence).
    # ------------------------------------------------------------------
    payload["per_op"] = _per_op_costs(tiered, dynamic, n, population, repeats)

    # ------------------------------------------------------------------
    # Write-latency bound: a sustained append burst that crosses several
    # seals must never stall one write for anything near the stop-the-world
    # freeze a naive design would pay when the tail fills.
    # ------------------------------------------------------------------
    rng = random.Random(17)
    burst = [population[rng.randrange(len(population))] for _ in range(write_burst)]
    max_append = 0.0
    with _gc_paused():
        started = time.perf_counter()
        for value in burst:
            op_start = time.perf_counter()
            tiered.append(value)
            max_append = max(max_append, time.perf_counter() - op_start)
        burst_s = time.perf_counter() - started
    # The stop-the-world alternative: freeze one full tail tier in one go.
    stop_world = DynamicWaveletTrie(burst[:capacity])
    started = time.perf_counter()
    freeze_trie(stop_world)
    stop_world_s = time.perf_counter() - started
    # At full scale the freeze takes seconds while no append comes near it;
    # at quick scale the freeze is a few ms, within scheduler/GC jitter of a
    # single append, so the hard bound is only enforced on the real run.
    if not quick:
        assert max_append < stop_world_s, (
            "budgeted compaction failed its latency bound: one append took "
            f"{max_append:.4f}s vs {stop_world_s:.4f}s for a stop-the-world freeze"
        )
    payload["write_latency"] = {
        "burst_appends": write_burst,
        "burst_s": round(burst_s, 3),
        "appends_per_s": round(write_burst / burst_s, 1),
        "max_single_append_s": round(max_append, 5),
        "stop_the_world_freeze_s": round(stop_world_s, 4),
        "latency_bound_ratio": round(stop_world_s / max_append, 1),
        "tiers_after_burst": tiered.tier_count,
    }

    # Post-burst differential spot check: the burst crossed seals and left a
    # freeze in flight; queries must still be exact.
    check = list(range(0, len(tiered), max(1, len(tiered) // 512)))
    mixed_writes = [arg for kind, arg, _ in ops if kind == "write"]
    expected = values + mixed_writes + burst
    assert tiered.access_many(check) == [expected[i] for i in check], (
        "post-burst access mismatch"
    )
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, do not write JSON"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_tiered.json",
        help="where to write the JSON payload (full mode only)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if not args.quick:
        args.output.write_text(rendered + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
