"""Experiment S5-RANGE (paper Section 5: range analytics).

Claims under test:

* sequential range access via per-node iterators costs one rank per traversed
  node (instead of one rank per element), so it beats pos-by-pos Access;
* distinct-values-in-range touches only the branches that occur in the range;
* range majority and the frequent-elements heuristic prune aggressively.

Benchmarks run the Section 5 algorithms on a pre-built append-only trie over
a 4000-entry URL log and, for contrast, the same analytics computed naively by
scanning the decoded range.
"""

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie

from benchmarks.conftest import make_url_log

N = 4000
WINDOW = (1000, 3000)


@pytest.fixture(scope="module")
def log_values():
    return make_url_log(N)


@pytest.fixture(scope="module")
def trie(log_values):
    return AppendOnlyWaveletTrie(log_values)


@pytest.fixture(scope="module")
def naive(log_values):
    return NaiveIndexedSequence(log_values)


def test_sequential_range_iteration(benchmark, trie):
    """S5-RANGE: enumerate 2000 consecutive elements with node iterators."""
    benchmark.extra_info.update({"experiment": "S5-RANGE/iter", "window": WINDOW})
    result = benchmark(lambda: sum(len(v) for v in trie.iter_range(*WINDOW)))
    assert result > 0


def test_sequential_range_via_repeated_access(benchmark, trie):
    """Baseline for the iterator: the same range decoded with one Access per position."""
    benchmark.extra_info.update({"experiment": "S5-RANGE/access-loop", "window": WINDOW})

    def run():
        return sum(len(trie.access(pos)) for pos in range(*WINDOW))

    assert benchmark(run) > 0


def test_distinct_values_in_range(benchmark, trie):
    benchmark.extra_info["experiment"] = "S5-RANGE/distinct"
    result = benchmark(lambda: trie.distinct_in_range(*WINDOW))
    assert len(result) > 0


def test_distinct_values_under_prefix(benchmark, trie, log_values):
    domain = log_values[0].split("/")[2]
    prefix = f"http://{domain}/"
    benchmark.extra_info.update({"experiment": "S5-RANGE/distinct-prefix", "prefix": prefix})
    result = benchmark(lambda: trie.distinct_in_range(*WINDOW, prefix=prefix))
    assert isinstance(result, list)


def test_range_majority(benchmark, trie):
    benchmark.extra_info["experiment"] = "S5-RANGE/majority"
    benchmark(lambda: trie.range_majority(*WINDOW))


def test_frequent_elements(benchmark, trie):
    threshold = (WINDOW[1] - WINDOW[0]) // 50
    benchmark.extra_info.update({"experiment": "S5-RANGE/frequent", "threshold": threshold})
    result = benchmark(lambda: trie.frequent_in_range(*WINDOW, threshold))
    assert all(count >= threshold for _, count in result)


def test_top_k(benchmark, trie):
    benchmark.extra_info["experiment"] = "S5-RANGE/top-k"
    result = benchmark(lambda: trie.top_k_in_range(*WINDOW, 10))
    assert len(result) == 10


def test_naive_distinct_for_contrast(benchmark, naive):
    """The scan-based version of the distinct-in-range analytic."""
    benchmark.extra_info["experiment"] = "S5-RANGE/distinct-naive"
    result = benchmark(lambda: naive.distinct_in_range(*WINDOW))
    assert len(result) > 0


def test_naive_top_k_for_contrast(benchmark, naive):
    benchmark.extra_info["experiment"] = "S5-RANGE/top-k-naive"
    result = benchmark(lambda: naive.top_k_in_range(*WINDOW, 10))
    assert len(result) == 10
