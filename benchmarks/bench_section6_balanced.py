"""Experiment S6-BALANCED (paper Section 6, Theorem 6.2).

Claim under test: hashing values with a random odd multiplier and storing the
hashes LSB-first keeps the dynamic Wavelet Trie balanced around
``(alpha + 2) log2 |Sigma|`` with high probability, even when the universe is
``2^64`` and the alphabet is *pathological* -- whereas the unhashed binary
encoding degenerates towards a height proportional to ``|Sigma|`` on such
alphabets (a caterpillar of powers of two: every value branches off the
all-zeros spine at a different depth, so path compression cannot help).  The
benchmarks measure append and query throughput for both and attach the
observed heights.
"""

import random

import pytest

from repro.core.dynamic import DynamicWaveletTrie
from repro.tries.binarize import FixedWidthIntCodec
from repro.wavelet import BalancedDynamicWaveletTree
from repro.workloads import IntegerSequenceGenerator

UNIVERSE = 2 ** 64
N = 2000
ALPHABET = 128
PATHOLOGICAL_ALPHABET = 60  # powers of two 2^0 .. 2^59


@pytest.fixture(scope="module")
def integer_values():
    generator = IntegerSequenceGenerator(
        universe=UNIVERSE, alphabet_size=ALPHABET, clustered=True, seed=42
    )
    return generator.generate(N)


@pytest.fixture(scope="module")
def pathological_values():
    """A caterpillar alphabet: {2^k}, the worst case for the unhashed trie."""
    rng = random.Random(4242)
    alphabet = [1 << k for k in range(PATHOLOGICAL_ALPHABET)]
    return [rng.choice(alphabet) for _ in range(N)]


def _raw_height(trie: DynamicWaveletTrie) -> int:
    best = 0
    stack = [(trie.root, 0)]
    while stack:
        node, depth = stack.pop()
        if node is None:
            continue
        if node.is_leaf:
            best = max(best, depth)
            continue
        stack.append((node.children[0], depth + 1))
        stack.append((node.children[1], depth + 1))
    return best


def test_append_hashed_balanced(benchmark, pathological_values):
    """S6-BALANCED: appends of a pathological alphabet into the hashed (balanced) tree."""

    def build():
        return BalancedDynamicWaveletTree(universe=UNIVERSE, values=pathological_values, seed=7)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "experiment": "S6-BALANCED/hashed",
            "n": N,
            "distinct": tree.distinct_count(),
            "max_height": tree.max_height(),
            "avg_height": round(tree.average_height(), 2),
            "theorem_bound_alpha1": round(tree.theoretical_height_bound(1.0), 1),
            "log2_universe": 64,
        }
    )
    assert tree.max_height() <= tree.theoretical_height_bound(alpha=2.0)


def test_append_raw_unbalanced(benchmark, pathological_values):
    """The contrast: raw fixed-width encoding of the same pathological alphabet."""

    def build():
        trie = DynamicWaveletTrie(codec=FixedWidthIntCodec(64))
        for value in pathological_values:
            trie.append(value)
        return trie

    trie = benchmark.pedantic(build, rounds=1, iterations=1)
    height = _raw_height(trie)
    benchmark.extra_info.update(
        {
            "experiment": "S6-BALANCED/raw",
            "n": N,
            "distinct": trie.distinct_count(),
            "max_height": height,
            "avg_height": round(trie.average_height(), 2),
        }
    )
    # Every power of two branches off the all-zeros spine at its own depth, so
    # the unhashed trie degenerates to a height ~ |Sigma| (vs ~ log2 |Sigma|
    # for the hashed tree above).
    assert height >= trie.distinct_count() - 1


def test_query_hashed(benchmark, integer_values):
    tree = BalancedDynamicWaveletTree(universe=UNIVERSE, values=integer_values, seed=7)
    probes = integer_values[:100]

    def run():
        total = 0
        for value in probes:
            total += tree.rank(value, N)
        return total

    benchmark.extra_info["experiment"] = "S6-BALANCED/query-hashed"
    assert benchmark(run) > 0


def test_query_raw(benchmark, integer_values):
    trie = DynamicWaveletTrie(codec=FixedWidthIntCodec(64))
    for value in integer_values:
        trie.append(value)
    probes = integer_values[:100]

    def run():
        total = 0
        for value in probes:
            total += trie.rank(value, N)
        return total

    benchmark.extra_info["experiment"] = "S6-BALANCED/query-raw"
    assert benchmark(run) > 0
