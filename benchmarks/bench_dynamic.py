"""Microbenchmarks for the dynamic-layer bulk/batch subsystem -> BENCH_dynamic.json.

Compares the kernel-backed bulk paths of PR 2 against faithful replicas of the
seed implementation on the growable structures of paper Section 4:

* ``DynamicBitVector`` bulk construction (kernel run extraction + O(r) treap
  build) vs the seed's one per-bit ``append`` through the right spine;
* ``DynamicBitVector.iter_range`` near the end of the vector (tree descent to
  the first overlapping run) vs the seed's scan of every run from position 0;
* ``DynamicWaveletTrie`` / ``AppendOnlyWaveletTrie`` bulk construction
  (buffered per-node bits + bulk bitvector extends) vs the seed's one full
  trie descent and per-bit bitvector append per element;
* batched ``rank_many`` / ``access_many`` / ``select_many`` on the dynamic
  Wavelet Trie vs the seed's per-call query loop;
* ``DynamicBitVector.select_many`` (one sorted in-order runs pass) vs one
  O(log r) treap walk per query;
* ``DynamicBitVector.insert_many`` / ``DynamicWaveletTrie.insert_many`` (one
  treap split + O(r) bulk build + merge per touched node) vs one root-to-leaf
  insertion per element;
* ``DynamicBitVector.delete_many`` / ``DynamicWaveletTrie.delete_many`` (one
  treap split + O(r_span) kernel run surgery + coalescing merge per touched
  node) vs one root-to-leaf deletion per element;
* batched prefix queries ``rank_prefix_many`` / ``select_prefix_many`` on the
  dynamic Wavelet Trie (one shared root-to-prefix-node walk + batched
  per-node passes) vs the scalar per-query descents;
* append-only freeze latency: max single-``append`` wall time with the
  de-amortised staged freeze (bounded blocks per append) vs the seed's
  stop-the-world freeze of the whole tail.

Every section cross-checks the new answers against the seed replica's, so the
benchmark doubles as an end-to-end correctness harness.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dynamic.py            # full, writes BENCH_dynamic.json
    PYTHONPATH=src python benchmarks/bench_dynamic.py --quick    # small sizes, no file

The quick mode is also invoked from the test suite
(``tests/integration/test_bench_dynamic_quick.py``) so the harness cannot
silently break.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits.bitstring import Bits
from repro.bitvector.append_only import AppendOnlyBitVector
from repro.bitvector.dynamic import DynamicBitVector
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie


# ----------------------------------------------------------------------
# Seed replicas (the pre-bulk implementation, verbatim algorithms)
# ----------------------------------------------------------------------
def seed_dbv_build(bits: List[int]) -> DynamicBitVector:
    """The seed construction: ``extend`` looped ``append`` once per bit, each
    walking the treap's right spine."""
    vector = DynamicBitVector()
    append = vector.append
    for bit in bits:
        append(bit)
    return vector


def seed_iter_range(
    vector: DynamicBitVector, start: int, stop: int
) -> Iterator[int]:
    """The seed ``iter_range``: scan *every* run from position 0, yielding
    single bits, regardless of where the requested range starts."""
    if start >= stop:
        return
    emitted = 0
    needed = stop - start
    skipped = 0
    for bit, length in vector.runs():
        run_start = skipped
        run_end = skipped + length
        skipped = run_end
        if run_end <= start:
            continue
        lo = max(run_start, start)
        hi = min(run_end, stop)
        for _ in range(hi - lo):
            yield bit
            emitted += 1
        if emitted >= needed:
            return


def seed_trie_build(cls, values: List[str]):
    """The seed bulk construction of either growable trie: one full descent
    and one per-bit bitvector append per element."""
    trie = cls()
    append = trie.append
    for value in values:
        append(value)
    return trie


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def bursty_bits(rng: random.Random, n: int, max_run: int = 40) -> List[int]:
    """Run-compressible bits (the RLE regime Theorem 4.9 targets)."""
    out: List[int] = []
    bit = rng.randint(0, 1)
    while len(out) < n:
        out.extend([bit] * rng.randint(1, max_run))
        bit ^= 1
    return out[:n]


def url_log(rng: random.Random, n: int, distinct: int) -> List[str]:
    """A skewed access log over ``distinct`` URL-like keys."""
    keys = [f"/host{i % 17}/path/{i}" for i in range(distinct)]
    # Zipf-ish skew: square the uniform draw to favour low indices.
    return [keys[int(distinct * rng.random() ** 2)] for _ in range(n)]


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _entry(ops: int, seed_seconds: float, new_seconds: float) -> Dict[str, float]:
    return {
        "ops": ops,
        "seed_ops_per_sec": round(ops / seed_seconds, 1),
        "kernel_ops_per_sec": round(ops / new_seconds, 1),
        "speedup": round(seed_seconds / new_seconds, 2),
    }


def run(quick: bool = False, repeats: int = 2) -> Dict[str, object]:
    """Run every microbenchmark; returns the BENCH_dynamic.json payload."""
    n_bits = 50_000 if quick else 1_000_000
    n_values = 4_000 if quick else 100_000
    n_distinct = 50 if quick else 200
    n_queries = 1_000 if quick else 20_000
    n_slices = 100 if quick else 400

    rng = random.Random(20260727)

    results: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # DynamicBitVector bulk construction: kernel runs + O(r) treap build vs
    # one per-bit append (paper Init / bulk Append).
    # ------------------------------------------------------------------
    bits = bursty_bits(rng, n_bits)
    payload = Bits.from_iterable(bits)
    bulk_vector = DynamicBitVector(payload)
    seed_vector = seed_dbv_build(bits)
    assert list(bulk_vector.runs()) == list(seed_vector.runs()), (
        "bulk construction mismatch vs seed"
    )
    seed_time = _best_time(lambda: seed_dbv_build(bits), repeats)
    bulk_time = _best_time(lambda: DynamicBitVector(payload), repeats)
    results["dbv_bulk_construction"] = _entry(n_bits, seed_time, bulk_time)

    # ------------------------------------------------------------------
    # iter_range near the end: tree descent vs scan-all-runs-from-0.
    # ------------------------------------------------------------------
    span = 64
    slice_starts = [
        rng.randrange(n_bits // 2, n_bits - span) for _ in range(n_slices)
    ]
    assert all(
        list(bulk_vector.iter_range(s, s + span))
        == list(seed_iter_range(bulk_vector, s, s + span))
        for s in slice_starts[:20]
    ), "iter_range mismatch vs seed"
    seed_time = _best_time(
        lambda: [sum(seed_iter_range(bulk_vector, s, s + span)) for s in slice_starts],
        repeats,
    )
    new_time = _best_time(
        lambda: [sum(bulk_vector.iter_range(s, s + span)) for s in slice_starts],
        repeats,
    )
    results["dbv_iter_range_tail"] = _entry(n_slices, seed_time, new_time)

    # ------------------------------------------------------------------
    # Dynamic Wavelet Trie bulk construction (Theorem 4.4 structure).
    # ------------------------------------------------------------------
    values = url_log(rng, n_values, n_distinct)
    bulk_trie = DynamicWaveletTrie()
    bulk_trie.extend(values)
    seed_trie = seed_trie_build(DynamicWaveletTrie, values)
    assert bulk_trie.to_list() == seed_trie.to_list() == values, (
        "dynamic trie bulk construction mismatch vs seed"
    )
    assert bulk_trie.node_count() == seed_trie.node_count()
    seed_time = _best_time(
        lambda: seed_trie_build(DynamicWaveletTrie, values), repeats
    )
    bulk_time = _best_time(
        lambda: DynamicWaveletTrie().extend(values), repeats
    )
    results["dwt_bulk_construction"] = _entry(n_values, seed_time, bulk_time)

    # ------------------------------------------------------------------
    # Batched Rank / Access on the dynamic Wavelet Trie: one descent + one
    # in-order runs pass per node vs one full walk per query.
    # ------------------------------------------------------------------
    rank_probe = values[0]
    rank_positions = [rng.randrange(n_values + 1) for _ in range(n_queries)]
    seed_answers = [seed_trie.rank(rank_probe, p) for p in rank_positions]
    assert bulk_trie.rank_many(rank_probe, rank_positions) == seed_answers, (
        "batched rank mismatch vs seed"
    )
    seed_time = _best_time(
        lambda: [seed_trie.rank(rank_probe, p) for p in rank_positions], repeats
    )
    new_time = _best_time(
        lambda: bulk_trie.rank_many(rank_probe, rank_positions), repeats
    )
    results["dwt_rank_batch"] = _entry(n_queries, seed_time, new_time)

    access_positions = [rng.randrange(n_values) for _ in range(n_queries)]
    assert bulk_trie.access_many(access_positions) == [
        seed_trie.access(p) for p in access_positions
    ], "batched access mismatch vs seed"
    seed_time = _best_time(
        lambda: [seed_trie.access(p) for p in access_positions], repeats
    )
    new_time = _best_time(
        lambda: bulk_trie.access_many(access_positions), repeats
    )
    results["dwt_access_batch"] = _entry(n_queries, seed_time, new_time)

    # ------------------------------------------------------------------
    # DynamicBitVector.select_many: one sorted in-order runs pass vs one
    # O(log r) treap walk per query.
    # ------------------------------------------------------------------
    select_indexes = [
        rng.randrange(bulk_vector.ones) for _ in range(n_queries)
    ]
    assert bulk_vector.select_many(1, select_indexes) == [
        bulk_vector.select(1, idx) for idx in select_indexes
    ], "dbv select_many mismatch vs scalar select"
    seed_time = _best_time(
        lambda: [bulk_vector.select(1, idx) for idx in select_indexes], repeats
    )
    new_time = _best_time(
        lambda: bulk_vector.select_many(1, select_indexes), repeats
    )
    results["dbv_select_batch"] = _entry(n_queries, seed_time, new_time)

    # ------------------------------------------------------------------
    # DynamicBitVector.insert_many: one split + O(r) bulk build + merge vs
    # one root-to-leaf treap insertion per bit.
    # ------------------------------------------------------------------
    base_runs = list(bulk_vector.runs())
    insert_payload = bursty_bits(rng, n_queries)
    insert_positions = sorted(
        rng.randrange(n_bits) for _ in range(max(1, n_queries // 2_000))
    )
    chunk = len(insert_payload) // len(insert_positions)

    def _seed_insert_loop() -> DynamicBitVector:
        vector = DynamicBitVector.from_runs(base_runs)
        taken = 0
        for position in insert_positions:
            for offset, bit in enumerate(
                insert_payload[taken : taken + chunk]
            ):
                vector.insert(position + offset, bit)
            taken += chunk
        return vector

    def _bulk_insert_many() -> DynamicBitVector:
        vector = DynamicBitVector.from_runs(base_runs)
        taken = 0
        for position in insert_positions:
            vector.insert_many(
                position, Bits.from_iterable(insert_payload[taken : taken + chunk])
            )
            taken += chunk
        return vector

    assert _seed_insert_loop().to_list() == _bulk_insert_many().to_list(), (
        "insert_many mismatch vs per-bit insert loop"
    )
    seed_time = _best_time(_seed_insert_loop, repeats)
    new_time = _best_time(_bulk_insert_many, repeats)
    results["dbv_insert_many"] = _entry(
        chunk * len(insert_positions), seed_time, new_time
    )

    # ------------------------------------------------------------------
    # Append-only Wavelet Trie bulk construction (Theorem 4.3 structure):
    # buffered bits + word-level block freezes vs per-bit tail appends.
    # ------------------------------------------------------------------
    bulk_append_only = AppendOnlyWaveletTrie()
    bulk_append_only.extend(values)
    seed_append_only = seed_trie_build(AppendOnlyWaveletTrie, values)
    assert bulk_append_only.to_list() == seed_append_only.to_list(), (
        "append-only trie bulk construction mismatch vs seed"
    )
    seed_time = _best_time(
        lambda: seed_trie_build(AppendOnlyWaveletTrie, values), repeats
    )
    bulk_time = _best_time(
        lambda: AppendOnlyWaveletTrie().extend(values), repeats
    )
    results["aot_bulk_construction"] = _entry(n_values, seed_time, bulk_time)

    # ------------------------------------------------------------------
    # Batched Select on the dynamic Wavelet Trie: one path unwind with
    # per-node sorted runs passes vs one full walk per query.
    # ------------------------------------------------------------------
    select_probe = values[0]
    probe_total = bulk_trie.count(select_probe)
    trie_select_indexes = [rng.randrange(probe_total) for _ in range(n_queries)]
    assert bulk_trie.select_many(select_probe, trie_select_indexes) == [
        seed_trie.select(select_probe, idx) for idx in trie_select_indexes
    ], "batched select mismatch vs seed"
    seed_time = _best_time(
        lambda: [seed_trie.select(select_probe, idx) for idx in trie_select_indexes],
        repeats,
    )
    new_time = _best_time(
        lambda: bulk_trie.select_many(select_probe, trie_select_indexes), repeats
    )
    results["dwt_select_batch"] = _entry(n_queries, seed_time, new_time)

    # ------------------------------------------------------------------
    # Bulk Insert on the dynamic Wavelet Trie: the inserted block stays
    # contiguous per node (one insert_many + one rank each) vs one
    # root-to-leaf walk per element.  Both sides mutate identical tries
    # built once outside the timer; every repeat applies the same batches
    # to both, so the structures stay comparable and equal.
    # ------------------------------------------------------------------
    insert_values = url_log(rng, max(1, n_queries // 10), n_distinct)
    insert_at = rng.randrange(n_values)

    def _seed_trie_insert() -> None:
        position = insert_at
        for value in insert_values:
            seed_trie.insert(value, position)
            position += 1

    seed_time = _best_time(_seed_trie_insert, repeats)
    new_time = _best_time(
        lambda: bulk_trie.insert_many(insert_values, insert_at), repeats
    )
    assert bulk_trie.to_list() == seed_trie.to_list(), (
        "trie insert_many mismatch vs per-element insert loop"
    )
    results["dwt_insert_many"] = _entry(len(insert_values), seed_time, new_time)

    # ------------------------------------------------------------------
    # DynamicBitVector.delete_many: one split + O(r_span) kernel run surgery
    # + coalescing merge vs one root-to-leaf treap deletion per bit.
    # ------------------------------------------------------------------
    delete_k = n_queries
    check_vector = DynamicBitVector.from_runs(base_runs)
    scalar_check = DynamicBitVector.from_runs(base_runs)
    check_positions = rng.sample(range(n_bits), delete_k)
    scalar_answers = [0] * delete_k
    for index in sorted(
        range(delete_k), key=check_positions.__getitem__, reverse=True
    ):
        scalar_answers[index] = scalar_check.delete(check_positions[index])
    assert check_vector.delete_many(check_positions) == scalar_answers, (
        "delete_many mismatch vs per-bit delete loop"
    )
    assert list(check_vector.runs()) == list(scalar_check.runs()), (
        "delete_many left a different run structure than the scalar loop"
    )
    # Shared shrinking batches so both replicas stay identical while timed.
    delete_batches = []
    size = n_bits
    for _ in range(repeats):
        delete_batches.append(rng.sample(range(size), delete_k))
        size -= delete_k
    seed_delete_vector = DynamicBitVector.from_runs(base_runs)
    bulk_delete_vector = DynamicBitVector.from_runs(base_runs)
    seed_delete_iter = iter(delete_batches)
    bulk_delete_iter = iter(delete_batches)

    def _seed_delete_loop() -> None:
        positions = next(seed_delete_iter)
        for position in sorted(positions, reverse=True):
            seed_delete_vector.delete(position)

    def _bulk_delete_many() -> None:
        bulk_delete_vector.delete_many(next(bulk_delete_iter))

    seed_time = _best_time(_seed_delete_loop, repeats)
    new_time = _best_time(_bulk_delete_many, repeats)
    assert list(seed_delete_vector.runs()) == list(bulk_delete_vector.runs())
    results["dbv_delete_many"] = _entry(delete_k, seed_time, new_time)

    # ------------------------------------------------------------------
    # Bulk Delete on the dynamic Wavelet Trie: positions partitioned down
    # the trie once (one rank_many + one delete_many per touched node, with
    # empty-subtree pruning) vs one root-to-leaf walk per element.  Both
    # sides consume the same shrinking position batches, so the structures
    # stay comparable and equal.
    # ------------------------------------------------------------------
    trie_delete_k = max(1, n_queries // 10)
    trie_delete_batches = []
    size = len(bulk_trie)
    for _ in range(repeats):
        trie_delete_batches.append(rng.sample(range(size), trie_delete_k))
        size -= trie_delete_k
    seed_trie_delete_iter = iter(trie_delete_batches)
    bulk_trie_delete_iter = iter(trie_delete_batches)
    deleted_by_seed: List[List[str]] = []
    deleted_by_bulk: List[List[str]] = []

    def _seed_trie_delete() -> None:
        positions = next(seed_trie_delete_iter)
        removed = [None] * len(positions)
        for index in sorted(
            range(len(positions)), key=positions.__getitem__, reverse=True
        ):
            removed[index] = seed_trie.delete(positions[index])
        deleted_by_seed.append(removed)

    def _bulk_trie_delete() -> None:
        deleted_by_bulk.append(bulk_trie.delete_many(next(bulk_trie_delete_iter)))

    seed_time = _best_time(_seed_trie_delete, repeats)
    new_time = _best_time(_bulk_trie_delete, repeats)
    assert deleted_by_seed == deleted_by_bulk, (
        "trie delete_many mismatch vs per-element delete loop"
    )
    assert bulk_trie.to_list() == seed_trie.to_list()
    results["dwt_delete_many"] = _entry(trie_delete_k, seed_time, new_time)

    # ------------------------------------------------------------------
    # Batched prefix queries: one shared root-to-prefix-node walk + batched
    # per-node rank/select passes vs one full descent per query.
    # ------------------------------------------------------------------
    prefix_probe = "/host3/"
    trie_size = len(bulk_trie)
    prefix_positions = [rng.randrange(trie_size + 1) for _ in range(n_queries)]
    assert bulk_trie.rank_prefix_many(prefix_probe, prefix_positions) == [
        seed_trie.rank_prefix(prefix_probe, p) for p in prefix_positions
    ], "batched rank_prefix mismatch vs scalar loop"
    seed_time = _best_time(
        lambda: [seed_trie.rank_prefix(prefix_probe, p) for p in prefix_positions],
        repeats,
    )
    new_time = _best_time(
        lambda: bulk_trie.rank_prefix_many(prefix_probe, prefix_positions),
        repeats,
    )
    results["dwt_rank_prefix_batch"] = _entry(n_queries, seed_time, new_time)

    prefix_total = bulk_trie.count_prefix(prefix_probe)
    assert prefix_total > 0, "prefix probe vanished from the workload"
    prefix_indexes = [rng.randrange(prefix_total) for _ in range(n_queries)]
    assert bulk_trie.select_prefix_many(prefix_probe, prefix_indexes) == [
        seed_trie.select_prefix(prefix_probe, idx) for idx in prefix_indexes
    ], "batched select_prefix mismatch vs scalar loop"
    seed_time = _best_time(
        lambda: [
            seed_trie.select_prefix(prefix_probe, idx) for idx in prefix_indexes
        ],
        repeats,
    )
    new_time = _best_time(
        lambda: bulk_trie.select_prefix_many(prefix_probe, prefix_indexes),
        repeats,
    )
    results["dwt_select_prefix_batch"] = _entry(n_queries, seed_time, new_time)

    # ------------------------------------------------------------------
    # De-amortised tail freezing: max single-append latency with the staged
    # incremental freeze (bounded RRR blocks per append) vs the seed's
    # stop-the-world freeze of the whole tail when it fills.
    # ------------------------------------------------------------------
    freeze_block = 2_048 if quick else 8_192
    freeze_appends = 4 * freeze_block if quick else 8 * freeze_block
    freeze_bits = bursty_bits(rng, freeze_appends, max_run=9)

    def _max_append_latency(budget: int) -> Tuple[float, float]:
        vector = AppendOnlyBitVector(
            block_size=freeze_block, freeze_blocks_per_append=budget
        )
        worst = 0.0
        started_all = time.perf_counter()
        clock = time.perf_counter
        for bit in freeze_bits:
            started = clock()
            vector.append(bit)
            elapsed = clock() - started
            if elapsed > worst:
                worst = elapsed
        total = time.perf_counter() - started_all
        assert len(vector) == freeze_appends
        return worst, total

    stop_world_max, stop_world_total = _max_append_latency(0)
    incremental_max, incremental_total = _max_append_latency(2)
    results["aob_freeze_latency"] = {
        "ops": freeze_appends,
        "block_size": freeze_block,
        "stop_world_max_us": round(stop_world_max * 1e6, 1),
        "incremental_max_us": round(incremental_max * 1e6, 1),
        "max_latency_improvement": round(stop_world_max / incremental_max, 2),
        "seed_ops_per_sec": round(freeze_appends / stop_world_total, 1),
        "kernel_ops_per_sec": round(freeze_appends / incremental_total, 1),
        "speedup": round(stop_world_total / incremental_total, 2),
    }

    return {
        "benchmark": "bench_dynamic",
        "quick": quick,
        "n_bits": n_bits,
        "trie": {"n": n_values, "distinct": n_distinct, "queries": n_queries},
        "python": sys.version.split()[0],
        "results": results,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, do not write JSON"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_dynamic.json",
        help="where to write the JSON payload (full mode only)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if not args.quick:
        args.output.write_text(rendered + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
