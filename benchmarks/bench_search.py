"""Full-text search benchmark: FM-index vs naive scan -> BENCH_search.json.

Two claims are under test on the URL access-log workload:

* **Index vs scan.**  ``DocumentStore.count``/``locate`` answer substring
  queries with work driven by the pattern length and the occurrence count
  (``|p|`` backward steps per count), while the naive baseline re-scans
  all ~100k corpus characters per query with ``str.find``.  The payload
  reports honest wall-clock for both: ``str.find`` runs at C ``memmem``
  speed, so it can still win against this pure-python index at these
  corpus sizes -- the structural gap is in the recorded per-query work
  (``scan_chars_per_query`` vs ``backward_steps_per_query``), which is
  what scales when the corpus grows.

* **Batched vs scalar backward search.**  The scalar FM-index loop issues
  two scalar wavelet-tree ranks per pattern character
  (``FMIndex._interval_scalar``); the batched path advances all patterns in
  lock-step and issues one ``rank_many`` per distinct next character per
  step (``FMIndex.count_many``).  The measured speedup of batched over
  scalar on the same pattern set is the payload's
  ``backward_search.speedup`` and must be >= 2x at full size.

Every timed query is differential: FM-index counts and locations are
compared against the ``str.find`` oracle before any timing is reported, so
the benchmark doubles as a correctness harness at sizes the unit tests do
not reach.  A final section rebuilds the index across ``sa_sample`` values
to expose the locate-time/space trade-off of the sampled suffix array.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_search.py            # full, writes BENCH_search.json
    PYTHONPATH=src python benchmarks/bench_search.py --quick    # small, no file

The quick mode also runs inside tier-1 via
``tests/integration/test_bench_search_quick.py`` and ``make
bench-search-quick``, so the harness cannot silently break.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits import kernel
from repro.db.doc_store import DocumentStore
from repro.workloads import UrlLogGenerator

# Pattern mix: frequent path words, a shared URL prefix, one full document,
# and absent needles (worst case for the scan, best case for the index).
_COMMON_PATTERNS = [
    "http://www.",
    "shop",
    "api",
    ".com/",
    "search",
    "static",
    "edit3",
]
_ABSENT_PATTERNS = ["zebra-crossing", "\x01\x02", "httpz://"]


def _naive_count(documents: List[str], pattern: str) -> int:
    total = 0
    for document in documents:
        start = 0
        while True:
            found = document.find(pattern, start)
            if found < 0:
                break
            total += 1
            start = found + 1
    return total


def _naive_locate(documents: List[str], pattern: str) -> List[Tuple[int, int]]:
    matches: List[Tuple[int, int]] = []
    for doc, document in enumerate(documents):
        start = 0
        while True:
            found = document.find(pattern, start)
            if found < 0:
                break
            matches.append((doc, found))
            start = found + 1
    return matches


def _best_of(repeats: int, func) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def run(quick: bool = False, repeats: int = 3) -> Dict[str, object]:
    doc_count = 120 if quick else 3_000
    generator = UrlLogGenerator(domains=40, depth=4, branching=6, seed=7)
    documents = generator.generate(doc_count)
    text_chars = sum(len(document) + 1 for document in documents)

    patterns = list(_COMMON_PATTERNS) + _ABSENT_PATTERNS
    patterns.append(documents[0])  # pattern == an entire document

    build_started = time.perf_counter()
    store = DocumentStore(documents, sa_sample=32)
    build_s = time.perf_counter() - build_started
    fm = store.fm_index

    # ------------------------------------------------------------------
    # Differential gates: every pattern's count and locations must match
    # the str.find oracle before anything is timed.
    # ------------------------------------------------------------------
    expected_counts = [_naive_count(documents, pattern) for pattern in patterns]
    actual_counts = store.count_many(patterns)
    assert actual_counts == expected_counts, (actual_counts, expected_counts)
    for pattern in patterns:
        assert store.locate(pattern) == _naive_locate(documents, pattern), pattern
    assert sum(count > 0 for count in expected_counts) >= len(_COMMON_PATTERNS)

    # Round-robin document extraction doubles as an extract() gate.
    probe = range(0, len(documents), max(1, len(documents) // 64))
    for doc in probe:
        assert store.document(doc) == documents[doc], doc

    # ------------------------------------------------------------------
    # Index vs naive scan
    # ------------------------------------------------------------------
    count_fm_s = _best_of(repeats, lambda: store.count_many(patterns))
    count_naive_s = _best_of(
        repeats, lambda: [_naive_count(documents, pattern) for pattern in patterns]
    )
    locate_patterns = [pattern for pattern in _COMMON_PATTERNS if len(pattern) >= 4]
    locate_fm_s = _best_of(
        repeats, lambda: [store.locate(pattern) for pattern in locate_patterns]
    )
    locate_naive_s = _best_of(
        repeats,
        lambda: [_naive_locate(documents, pattern) for pattern in locate_patterns],
    )

    # ------------------------------------------------------------------
    # Batched vs scalar backward search (identical work, same answers).
    # The batch is substrings sampled from the corpus itself -- the
    # dictionary-lookup workload ("count each of these query strings") the
    # lock-step grouping was built for: at each step the live patterns
    # cluster on few distinct next characters, so one rank_many per
    # character replaces two scalar ranks per pattern.
    # ------------------------------------------------------------------
    rng = random.Random(13)
    joined = "\x00".join(documents)
    sampled = []
    for _ in range(128 if quick else 1024):
        start = rng.randrange(len(joined) - 8)
        sampled.append(joined[start : start + 8].replace("\x00", "/"))
    scalar_intervals = [fm._interval_scalar(pattern) for pattern in sampled]
    batched_counts = fm.count_many(sampled)
    assert [high - low for low, high in scalar_intervals] == batched_counts
    scalar_s = _best_of(
        repeats, lambda: [fm._interval_scalar(pattern) for pattern in sampled]
    )
    batched_s = _best_of(repeats, lambda: fm.count_many(sampled))

    # ------------------------------------------------------------------
    # The sa_sample knob: locate time vs index size
    # ------------------------------------------------------------------
    knob_rows = []
    knob_pattern = "shop"
    for sa_sample in (4, 32, 128):
        knob_store = DocumentStore(documents, sa_sample=sa_sample)
        knob_time = _best_of(repeats, lambda: knob_store.locate(knob_pattern))
        knob_rows.append(
            {
                "sa_sample": sa_sample,
                "index_bits": knob_store.size_in_bits(),
                "bits_per_char": round(knob_store.size_in_bits() / text_chars, 2),
                "locate_ms": round(knob_time * 1000.0, 3),
            }
        )

    return {
        "benchmark": "search",
        "quick": quick,
        "backend": kernel.active_backend(),
        "documents": len(documents),
        "text_chars": text_chars,
        "patterns": len(patterns),
        "build_s": round(build_s, 4),
        "index_bits": store.size_in_bits(),
        "count": {
            "fm_ms": round(count_fm_s * 1000.0, 3),
            "naive_scan_ms": round(count_naive_s * 1000.0, 3),
            "speedup": round(count_naive_s / count_fm_s, 2),
            # The structural gap: work per query, independent of wall-clock.
            "scan_chars_per_query": text_chars,
            "backward_steps_per_query": round(
                sum(len(pattern) for pattern in patterns) / len(patterns), 1
            ),
        },
        "locate": {
            "patterns": locate_patterns,
            "fm_ms": round(locate_fm_s * 1000.0, 3),
            "naive_scan_ms": round(locate_naive_s * 1000.0, 3),
            "speedup": round(locate_naive_s / locate_fm_s, 2),
        },
        "backward_search": {
            # Same pattern set, same answers: one rank_many per distinct
            # next character per step (batched) vs two scalar ranks per
            # character per pattern (scalar).
            "patterns": len(sampled),
            "pattern_chars": 8,
            "batched_ms": round(batched_s * 1000.0, 3),
            "scalar_ms": round(scalar_s * 1000.0, 3),
            "speedup": round(scalar_s / batched_s, 2),
        },
        "sa_sample_knob": knob_rows,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes, do not write JSON"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_search.json",
        help="where to write the JSON payload (full mode only)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if not args.quick:
        args.output.write_text(rendered + "\n")
        print(f"\nwrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
