"""Serving-layer benchmark: request coalescing on vs off -> BENCH_serving.json.

The claim under test is the serving tentpole's reason to exist: with many
concurrent clients replaying a zipf-skewed read workload against one server,
draining each tick's queue as per-(op, key) ``*_many`` batches
(:mod:`repro.serving.coalescer`) multiplies throughput over answering the
same requests one batch-of-1 at a time -- because the index's batch walks
amortise the per-query trie descent, while the per-request asyncio/JSON
overhead stays fixed.  Coalescing *off* runs the identical code path with
batch width forced to 1, so the comparison isolates exactly the coalescing
win.

The run is differential end to end: both modes replay the identical request
stream over the identical column, and every response frame is compared
byte-for-byte between modes (read-only replay, so the snapshot version is
constant and frames must match exactly).  A short concurrent append burst
then checks write coalescing (many queued appends -> one bulk ``extend``)
and that the final row count is exact.

A multi-process section replays the identical stream against a sharded
:class:`~repro.serving.cluster.ClusterSupervisor` (RWT2 shard images on
disk, one worker process per shard, scatter-gather over unix sockets) and
byte-compares every frame against the single-process responses -- the
determinism gate of the cluster -- while measuring the throughput ratio.
The ratio only exceeds 1 when real cores back the workers; the payload
records ``cpus`` and, when ``cpus < 2``, sets ``degraded`` and omits the
``speedup_vs_single_process`` fields entirely -- a single-core host cannot
support the ratio claim, so the JSON carries raw throughputs only instead
of a misleading sub-1x "speedup".

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full, writes BENCH_serving.json
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # small, no file

The quick mode also runs inside tier-1 via
``tests/integration/test_bench_serving_quick.py`` and ``make
bench-serving-quick``, so the harness cannot silently break.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro.bits import kernel
from repro.db.column import CompressedColumn
from repro.serving import (
    ClusterConfig,
    ClusterSupervisor,
    IndexServer,
    NDJSONClient,
    ServerConfig,
)
from repro.storage.shards import export_shard_images
from repro.workloads import ColumnGenerator

# Zipf read replay: count-style queries (count_eq / count_prefix) dominate,
# as in the column-store motivation, with a solid share of point lookups --
# select is the expensive scalar op in the access/rank/select trio (it binary
# searches rank at every trie level), which is exactly where per-(op, value)
# batching amortises the most.
MIX = {"rank": 0.35, "select": 0.30, "rank_prefix": 0.20, "access": 0.15}
PREFIXES = ["emea/", "amer/", "apac/", "emea/pisa"]
# Zipf-skewed key choice (weight 1/rank^1.5): the hot value/prefix dominates,
# so concurrent requests pile onto the same (op, key) group and the per-group
# ``*_many`` batch walk is wide.  Uniform key choice would leave every group
# 1-2 requests wide and there would be nothing to amortise.
ZIPF_EXPONENT = 2.5


def _zipf_weights(count: int) -> List[float]:
    return [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(count)]


def _build_column(n: int, seed: int = 7) -> CompressedColumn:
    generator = ColumnGenerator(cardinality=64, zipf_exponent=1.1, seed=seed)
    column = CompressedColumn("urls", generator.generate(n), tiered=True)
    column.index.compact()  # serve from one merged frozen tier + empty tail
    return column, generator.distinct_values()


def _request_stream(
    count: int, n: int, population: List[str], seed: int = 99
) -> List[bytes]:
    """The deterministic replay both modes execute, pre-encoded."""
    rng = random.Random(seed)
    kinds = list(MIX)
    weights = [MIX[kind] for kind in kinds]
    hot_values = population[: min(8, len(population))]
    value_weights = _zipf_weights(len(hot_values))
    prefix_weights = _zipf_weights(len(PREFIXES))
    frames = []
    for i in range(count):
        kind = rng.choices(kinds, weights)[0]
        if kind == "rank":
            value = rng.choices(hot_values, value_weights)[0]
            payload = {"op": "rank", "value": value, "pos": rng.randrange(n + 1)}
        elif kind == "rank_prefix":
            payload = {
                "op": "rank_prefix",
                "prefix": rng.choices(PREFIXES, prefix_weights)[0],
                "pos": rng.randrange(n + 1),
            }
        elif kind == "access":
            payload = {"op": "access", "pos": rng.randrange(n)}
        else:
            value = rng.choices(hot_values, value_weights)[0]
            payload = {"op": "select", "value": value, "idx": rng.randrange(8)}
        payload["id"] = i
        frames.append(json.dumps(payload, sort_keys=True).encode() + b"\n")
    return frames


async def _replay(
    column: CompressedColumn,
    stream: List[bytes],
    clients: int,
    coalesce: bool,
    sock_dir: str,
) -> Dict:
    """Fire the stream over ``clients`` concurrent connections; measure."""
    path = str(Path(sock_dir) / f"bench-{int(coalesce)}.sock")
    server = IndexServer(column, ServerConfig(unix_path=path, coalesce=coalesce))
    await server.start()
    try:
        connections = [await NDJSONClient.connect(path) for _ in range(clients)]
        lanes = [stream[i::clients] for i in range(clients)]

        async def lane(client: NDJSONClient, mine: List[bytes]):
            answers = []
            latencies = []
            for frame in mine:
                started = time.perf_counter()
                answers.append(await client.call_raw(frame))
                latencies.append(time.perf_counter() - started)
            return answers, latencies

        started = time.perf_counter()
        results = await asyncio.gather(
            *[lane(c, m) for c, m in zip(connections, lanes)]
        )
        elapsed = time.perf_counter() - started
        for client in connections:
            await client.close()
    finally:
        await server.stop()

    responses: Dict[int, bytes] = {}
    latencies: List[float] = []
    for (answers, lane_latencies), mine in zip(results, lanes):
        latencies.extend(lane_latencies)
        for frame, answer in zip(mine, answers):
            responses[json.loads(frame)["id"]] = answer
    latencies.sort()
    batch_stats = server.metrics.snapshot()["batches"]
    mean_batch = (
        sum(row["requests"] for row in batch_stats.values())
        / max(1, sum(row["batches"] for row in batch_stats.values()))
    )
    return {
        "responses": responses,
        "elapsed_s": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))] * 1e3,
        "mean_batch": mean_batch,
        "max_batch": max(server.metrics.max_batch.values()),
    }


async def _replay_cluster(
    column: CompressedColumn,
    stream: List[bytes],
    clients: int,
    workers: int,
    sock_dir: str,
) -> Dict:
    """The identical replay against a sharded multi-process cluster."""
    image_dir = str(Path(sock_dir) / f"images-{workers}")
    export_started = time.perf_counter()
    export_shard_images(column, image_dir, workers)
    export_s = time.perf_counter() - export_started
    path = str(Path(sock_dir) / f"bench-mp{workers}.sock")
    supervisor = ClusterSupervisor(
        ServerConfig(unix_path=path),
        ClusterConfig(image_dir=image_dir),
    )
    spawn_started = time.perf_counter()
    await supervisor.start()
    spawn_s = time.perf_counter() - spawn_started
    try:
        connections = [await NDJSONClient.connect(path) for _ in range(clients)]
        lanes = [stream[i::clients] for i in range(clients)]

        async def lane(client: NDJSONClient, mine: List[bytes]):
            answers = []
            for frame in mine:
                answers.append(await client.call_raw(frame))
            return answers

        started = time.perf_counter()
        results = await asyncio.gather(
            *[lane(c, m) for c, m in zip(connections, lanes)]
        )
        elapsed = time.perf_counter() - started
        for client in connections:
            await client.close()
    finally:
        await supervisor.stop()

    responses: Dict[int, bytes] = {}
    for answers, mine in zip(results, lanes):
        for frame, answer in zip(mine, answers):
            responses[json.loads(frame)["id"]] = answer
    return {
        "responses": responses,
        "workers": workers,
        "export_s": export_s,
        "spawn_s": spawn_s,
        "elapsed_s": elapsed,
        "throughput_rps": len(stream) / elapsed,
    }


async def _write_burst(n_writers: int, appends_each: int, sock_dir: str) -> Dict:
    """Concurrent appenders; write coalescing means few bulk extends."""
    column = CompressedColumn("burst", ["seed"], tiered=True)
    path = str(Path(sock_dir) / "bench-w.sock")
    server = IndexServer(
        column, ServerConfig(unix_path=path, compact_budget=8)
    )
    await server.start()
    try:
        connections = [
            await NDJSONClient.connect(path) for _ in range(n_writers)
        ]

        async def writer(client: NDJSONClient, lane: int):
            for i in range(appends_each):
                response = await client.call(op="append", value=f"w{lane}-{i}")
                assert response["ok"], response

        started = time.perf_counter()
        await asyncio.gather(
            *[writer(c, lane) for lane, c in enumerate(connections)]
        )
        elapsed = time.perf_counter() - started
        for client in connections:
            await client.close()
        write_batches = server.metrics.batches["write"]
        rows = len(column)
    finally:
        await server.stop()
    expected = 1 + n_writers * appends_each
    assert rows == expected, (rows, expected)
    return {
        "writers": n_writers,
        "appends": n_writers * appends_each,
        "elapsed_s": elapsed,
        "bulk_extends": write_batches,
        "mean_appends_per_extend": (n_writers * appends_each) / max(1, write_batches),
    }


def run(quick: bool = False, repeats: int = 3) -> Dict:
    """Execute the benchmark; returns the JSON payload (quick: small sizes)."""
    n = 20_000 if quick else 1_000_000
    clients = 8 if quick else 64
    requests = 400 if quick else 9_600
    repeats = 1 if quick else repeats

    column, population = _build_column(n)
    stream = _request_stream(requests, n, population)

    best: Dict[str, Dict] = {}
    baseline_responses = None
    with tempfile.TemporaryDirectory() as sock_dir:
        for coalesce in (True, False):
            key = "coalescing_on" if coalesce else "coalescing_off"
            for _ in range(repeats):
                result = asyncio.run(
                    _replay(column, stream, clients, coalesce, sock_dir)
                )
                responses = result.pop("responses")
                # Differential gate: both modes answer every request with
                # byte-identical frames (read-only replay, fixed version).
                if baseline_responses is None:
                    baseline_responses = responses
                else:
                    assert responses == baseline_responses, (
                        "coalesced and serial responses diverged"
                    )
                if key not in best or result["throughput_rps"] > best[key]["throughput_rps"]:
                    best[key] = result
        multiprocess: Dict[str, Dict] = {}
        for workers in ((2,) if quick else (2, 4)):
            result = asyncio.run(
                _replay_cluster(column, stream, clients, workers, sock_dir)
            )
            responses = result.pop("responses")
            # Determinism gate: the sharded cluster answers the replay with
            # frames byte-identical to the single-process server's.
            assert responses == baseline_responses, (
                f"{workers}-worker cluster responses diverged from "
                "the single-process responses"
            )
            multiprocess[f"workers_{workers}"] = result
        burst = asyncio.run(
            _write_burst(4 if quick else 16, 25 if quick else 100, sock_dir)
        )

    for result in best.values():
        for field in ("elapsed_s", "throughput_rps", "p50_ms", "p99_ms", "mean_batch"):
            result[field] = round(result[field], 4)
    speedup = (
        best["coalescing_on"]["throughput_rps"]
        / best["coalescing_off"]["throughput_rps"]
    )
    burst["elapsed_s"] = round(burst["elapsed_s"], 4)
    burst["mean_appends_per_extend"] = round(burst["mean_appends_per_extend"], 2)
    single_rps = best["coalescing_on"]["throughput_rps"]
    cpus = os.cpu_count() or 1
    degraded = cpus < 2
    for result in multiprocess.values():
        for field in ("export_s", "spawn_s", "elapsed_s", "throughput_rps"):
            result[field] = round(result[field], 4)
        if not degraded:
            result["speedup_vs_single_process"] = round(
                result["throughput_rps"] / single_rps, 2
            )
    multiprocess_section = {
        # Worker processes only add throughput when real cores back them: on
        # a single-core host the sharded run pays the scatter-gather hop for
        # no parallelism, so the run is flagged `degraded` and makes no
        # speedup claim at all (the raw throughputs stay in the payload).
        "cpus": cpus,
        "degraded": degraded,
        "byte_identical_to_single_process": True,  # asserted above
        **multiprocess,
    }
    return {
        "benchmark": "serving",
        "quick": quick,
        "backend": kernel.active_backend(),
        "elements": n,
        "clients": clients,
        "requests": requests,
        "mix": MIX,
        "coalescing_on": best["coalescing_on"],
        "coalescing_off": best["coalescing_off"],
        "throughput_speedup": round(speedup, 2),
        "multiprocess": multiprocess_section,
        "write_burst": burst,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes, no JSON file")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, repeats=args.repeats)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if not args.quick:
        out = REPO_ROOT / "BENCH_serving.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
