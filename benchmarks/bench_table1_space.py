"""Experiment T1-SPACE (paper Table 1, Space column).

Claims under test, for a sequence S with distinct set Sset:

* static Wavelet Trie   ~ LB + o(h~ n)            where LB = LT(Sset) + n H0(S)
* append-only           ~ LB + PT + o(h~ n)       PT = O(|Sset| w) pointers
* fully dynamic         ~ LB + PT + O(n H0)

Each benchmark times the construction of one variant on one workload and
attaches the measured space decomposition together with the computed bounds
(LT, nH0, LB, PT, h~ n) as ``extra_info``, so the JSON/console output is the
Table 1 space experiment.  The assertions check the qualitative claims that
survive pure-Python constant factors: the bitvector payload tracks nH0 within
a small factor, the total stays below the uncompressed baselines, and the
static variant is the smallest of the three.
"""

import pytest

from repro.analysis import compute_bounds, wavelet_trie_space_report
from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie

from benchmarks.conftest import make_column, make_url_log

WORKLOADS = {
    "urls-4000": lambda: make_url_log(4000),
    "column-4000": lambda: make_column(4000),
}

VARIANTS = {
    "static": WaveletTrie,
    "append-only": AppendOnlyWaveletTrie,
    "dynamic": DynamicWaveletTrie,
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_space_vs_lower_bound(benchmark, workload, variant):
    values = WORKLOADS[workload]()
    bounds = compute_bounds(values)
    factory = VARIANTS[variant]

    trie = benchmark.pedantic(factory, args=(values,), rounds=1, iterations=1)

    report = wavelet_trie_space_report(trie)
    measured_bitvectors = trie.bitvector_bits()
    measured_total = trie.size_in_bits()
    raw_bits = sum(len(v.encode()) * 8 for v in values)
    benchmark.extra_info.update(
        {
            "experiment": "T1-SPACE",
            "workload": workload,
            "variant": variant,
            "n": bounds.length,
            "distinct": bounds.distinct,
            "LT_bits": round(bounds.lt_bits),
            "nH0_bits": round(bounds.entropy_bits),
            "LB_bits": round(bounds.lb_bits),
            "PT_bits": bounds.pt_bits,
            "hn_bits": round(bounds.total_height_bits),
            "raw_bits": raw_bits,
            "measured_bitvector_bits": measured_bitvectors,
            "measured_label_bits": trie.label_bits(),
            "measured_total_bits": measured_total,
            "bits_per_element": round(measured_total / bounds.length, 1),
            "lb_bits_per_element": round(bounds.lb_bits / bounds.length, 1),
        }
    )
    if variant == "static":
        benchmark.extra_info["succinct_breakdown"] = {
            key: round(value)
            for key, value in trie.succinct_space_breakdown().items()
        }

    # Qualitative Table 1 checks (generous constants: pure-Python directories).
    assert measured_bitvectors <= 4.0 * bounds.entropy_bits + 200 * trie.node_count()
    assert measured_total < raw_bits + bounds.pt_bits
    assert trie.label_bits() == bounds.label_bits


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_space_ranking_across_variants(benchmark, workload):
    """Static <= append-only <= dynamic in measured space, all below the naive copy."""
    values = WORKLOADS[workload]()

    def build_all():
        return (
            WaveletTrie(values),
            AppendOnlyWaveletTrie(values),
            DynamicWaveletTrie(values),
        )

    static, append_only, dynamic = benchmark.pedantic(build_all, rounds=1, iterations=1)
    naive_bits = NaiveIndexedSequence(values).size_in_bits()
    sizes = {
        "static": static.size_in_bits(),
        "append_only": append_only.size_in_bits(),
        "dynamic": dynamic.size_in_bits(),
        "naive": naive_bits,
    }
    benchmark.extra_info.update({"experiment": "T1-SPACE/ranking", "workload": workload, **sizes})
    assert sizes["static"] <= sizes["append_only"]
    assert sizes["static"] < naive_bits
    assert sizes["append_only"] < naive_bits
    assert sizes["dynamic"] < naive_bits
