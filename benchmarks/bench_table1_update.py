"""Experiments T1-APPEND / T1-INSERT / T1-DELETE (paper Table 1, update columns).

Claims under test:

* ``Append`` on the append-only Wavelet Trie costs ``O(|s| + h_s)`` --
  independent of the current sequence length n;
* ``Append``/``Insert``/``Delete`` on the fully dynamic Wavelet Trie cost
  ``O(|s| + h_s log n)`` -- growing only logarithmically with n.

Each benchmark performs a fixed batch of 100 updates against a pre-built trie
of n elements.  Insert/delete batches are paired so the structure size stays
(asymptotically) constant across rounds.
"""

import random

import pytest

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie

from benchmarks.conftest import SIZES, make_url_log

UPDATES_PER_ROUND = 100


def _new_values(seed: int) -> list:
    rng = random.Random(seed)
    base = make_url_log(200, seed=seed)
    # Mix in some never-seen strings so Init/split paths are exercised too.
    return [
        value if rng.random() < 0.8 else f"{value}/new-{rng.randrange(10)}"
        for value in base
    ]


@pytest.mark.parametrize("n", SIZES)
def test_append_append_only(benchmark, url_logs, n):
    """T1-APPEND (append-only): per-append cost must not grow with n."""
    trie = AppendOnlyWaveletTrie(url_logs[n])
    payload = _new_values(seed=n)

    def run():
        for value in payload[:UPDATES_PER_ROUND]:
            trie.append(value)

    benchmark.extra_info.update(
        {"experiment": "T1-APPEND/append-only", "n": n, "updates_per_round": UPDATES_PER_ROUND}
    )
    benchmark(run)
    assert len(trie) > n


@pytest.mark.parametrize("n", SIZES)
def test_append_dynamic(benchmark, url_logs, n):
    """T1-APPEND (dynamic): pays the extra log n of the dynamic bitvectors."""
    trie = DynamicWaveletTrie(url_logs[n])
    payload = _new_values(seed=n + 1)

    def run():
        for value in payload[:UPDATES_PER_ROUND]:
            trie.append(value)

    benchmark.extra_info.update(
        {"experiment": "T1-APPEND/dynamic", "n": n, "updates_per_round": UPDATES_PER_ROUND}
    )
    benchmark(run)
    assert len(trie) > n


@pytest.mark.parametrize("n", SIZES)
def test_insert_dynamic(benchmark, url_logs, n):
    """T1-INSERT: insertions at random positions, O(|s| + h_s log n) each."""
    trie = DynamicWaveletTrie(url_logs[n])
    payload = _new_values(seed=n + 2)
    rng = random.Random(n)

    def run():
        for value in payload[:UPDATES_PER_ROUND]:
            trie.insert(value, rng.randint(0, len(trie)))

    benchmark.extra_info.update(
        {"experiment": "T1-INSERT/dynamic", "n": n, "updates_per_round": UPDATES_PER_ROUND}
    )
    benchmark(run)
    assert len(trie) > n


@pytest.mark.parametrize("n", SIZES)
def test_delete_dynamic(benchmark, url_logs, n):
    """T1-DELETE: deletions at random positions (including last occurrences)."""
    # Over-provision so repeated rounds never drain the structure.
    values = url_logs[n] + make_url_log(4000, seed=n + 3)
    trie = DynamicWaveletTrie(values)
    rng = random.Random(n)

    def run():
        for _ in range(UPDATES_PER_ROUND):
            trie.delete(rng.randrange(len(trie)))

    benchmark.extra_info.update(
        {"experiment": "T1-DELETE/dynamic", "n": n, "updates_per_round": UPDATES_PER_ROUND}
    )
    benchmark(run)
    assert len(trie) > 0


@pytest.mark.parametrize("n", SIZES)
def test_insert_delete_churn_dynamic(benchmark, url_logs, n):
    """T1-INSERT+DELETE: paired churn keeps the size stable across rounds."""
    trie = DynamicWaveletTrie(url_logs[n])
    payload = _new_values(seed=n + 4)
    rng = random.Random(n + 5)

    def run():
        for value in payload[: UPDATES_PER_ROUND // 2]:
            trie.insert(value, rng.randint(0, len(trie)))
        for _ in range(UPDATES_PER_ROUND // 2):
            trie.delete(rng.randrange(len(trie)))

    benchmark.extra_info.update(
        {"experiment": "T1-CHURN/dynamic", "n": n, "updates_per_round": UPDATES_PER_ROUND}
    )
    benchmark(run)
    assert abs(len(trie) - n) <= UPDATES_PER_ROUND * 200
