"""Experiments T4.5-BV and T4.9-BV (Theorems 4.5 and 4.9: the bitvectors).

* Theorem 4.5 -- the append-only bitvector supports Access/Rank/Select/Append
  in O(1) with ``nH0 + o(n)`` bits;
* Theorem 4.9 -- the dynamic RLE+gamma bitvector supports all operations plus
  ``Init`` in ``O(log n)`` with ``O(nH0)`` bits.

Benchmarks measure append throughput, query latency and the cost of ``Init``
on both, for a Bernoulli(0.1) stream and a bursty stream, and attach the
measured space against ``nH0``.
"""

import random

import pytest

from repro.analysis.entropy import binary_entropy
from repro.bitvector import (
    AppendOnlyBitVector,
    DynamicBitVector,
    PlainBitVector,
    RLEBitVector,
    RRRBitVector,
)

N = 20_000


def bernoulli_bits(p: float, n: int = N, seed: int = 1) -> list:
    rng = random.Random(seed)
    return [1 if rng.random() < p else 0 for _ in range(n)]


def bursty_bits(n: int = N, seed: int = 2) -> list:
    rng = random.Random(seed)
    bits, bit = [], 0
    while len(bits) < n:
        bits.extend([bit] * rng.randint(1, 60))
        bit ^= 1
    return bits[:n]


STREAMS = {
    "bernoulli-0.1": lambda: bernoulli_bits(0.1),
    "bursty": lambda: bursty_bits(),
}


@pytest.mark.parametrize("stream", sorted(STREAMS))
def test_append_only_bitvector_appends(benchmark, stream):
    """T4.5-BV: append throughput of the Section 4.1 bitvector."""
    bits = STREAMS[stream]()

    def build():
        vector = AppendOnlyBitVector(block_size=1024)
        for bit in bits:
            vector.append(bit)
        return vector

    vector = benchmark.pedantic(build, rounds=1, iterations=1)
    ones = sum(bits)
    entropy = N * binary_entropy(ones / N)
    benchmark.extra_info.update(
        {
            "experiment": "T4.5-BV/append",
            "stream": stream,
            "n": N,
            "nH0_bits": round(entropy),
            "payload_bits": vector.payload_bits(),
            "total_bits": vector.size_in_bits(),
        }
    )
    assert len(vector) == N


@pytest.mark.parametrize("stream", sorted(STREAMS))
def test_dynamic_bitvector_appends(benchmark, stream):
    """T4.9-BV: append throughput of the Section 4.2 RLE+gamma bitvector."""
    bits = STREAMS[stream]()

    def build():
        vector = DynamicBitVector()
        for bit in bits:
            vector.append(bit)
        return vector

    vector = benchmark.pedantic(build, rounds=1, iterations=1)
    ones = sum(bits)
    entropy = N * binary_entropy(ones / N)
    benchmark.extra_info.update(
        {
            "experiment": "T4.9-BV/append",
            "stream": stream,
            "n": N,
            "nH0_bits": round(entropy),
            "runs": vector.run_count,
            "payload_bits": vector.size_in_bits(),
        }
    )
    assert len(vector) == N


@pytest.mark.parametrize("stream", sorted(STREAMS))
def test_append_only_bitvector_queries(benchmark, stream):
    bits = STREAMS[stream]()
    vector = AppendOnlyBitVector(bits, block_size=1024)
    rng = random.Random(3)
    positions = [rng.randint(0, N) for _ in range(500)]
    ones = vector.ones

    def run():
        total = 0
        for pos in positions:
            total += vector.rank(1, pos)
        for idx in range(0, ones, max(1, ones // 200)):
            total += vector.select(1, idx)
        return total

    benchmark.extra_info.update({"experiment": "T4.5-BV/query", "stream": stream})
    assert benchmark(run) > 0


@pytest.mark.parametrize("stream", sorted(STREAMS))
def test_dynamic_bitvector_mixed_updates(benchmark, stream):
    """T4.9-BV: random insert/delete/rank mix (the dynamic Wavelet Trie's diet)."""
    bits = STREAMS[stream]()
    vector = DynamicBitVector(bits)
    rng = random.Random(4)

    def run():
        for _ in range(300):
            action = rng.random()
            if action < 0.4:
                vector.insert(rng.randint(0, len(vector)), rng.randint(0, 1))
            elif action < 0.8:
                vector.delete(rng.randrange(len(vector)))
            else:
                vector.rank(1, rng.randint(0, len(vector)))

    benchmark.extra_info.update({"experiment": "T4.9-BV/updates", "stream": stream})
    benchmark(run)
    assert len(vector) > 0


def test_dynamic_bitvector_init(benchmark):
    """T4.9-BV: Init(b, n) must not depend on n (Remark 4.2)."""

    def run():
        total = 0
        for exponent in (10, 20, 30, 40):
            vector = DynamicBitVector.init_run(1, 1 << exponent)
            total += vector.rank(1, 1 << (exponent - 1))
        return total

    benchmark.extra_info["experiment"] = "T4.9-BV/init"
    assert benchmark(run) > 0


def test_append_only_bitvector_init(benchmark):
    """Theorem 4.3's Init-as-offset on the append-only bitvector."""

    def run():
        total = 0
        for exponent in (10, 20, 30, 40):
            vector = AppendOnlyBitVector.init_run(0, 1 << exponent)
            vector.append(1)
            total += vector.select(1, 0)
        return total

    benchmark.extra_info["experiment"] = "T4.5-BV/init"
    assert benchmark(run) > 0


@pytest.mark.parametrize("kind", ["plain", "rrr", "rle"])
@pytest.mark.parametrize("stream", sorted(STREAMS))
def test_static_bitvector_rank(benchmark, kind, stream):
    """Reference points for the static encodings used inside the tries."""
    bits = STREAMS[stream]()
    factory = {"plain": PlainBitVector, "rrr": RRRBitVector, "rle": RLEBitVector}[kind]
    vector = factory(bits)
    rng = random.Random(5)
    positions = [rng.randint(0, N) for _ in range(1000)]

    def run():
        total = 0
        for pos in positions:
            total += vector.rank(1, pos)
        return total

    benchmark.extra_info.update(
        {
            "experiment": "BV-STATIC/rank",
            "kind": kind,
            "stream": stream,
            "size_bits": vector.size_in_bits(),
        }
    )
    assert benchmark(run) > 0
