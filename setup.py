"""Packaging for the Wavelet Trie reproduction (offline-friendly legacy
setup.py -- no `wheel`/pyproject machinery required).

The core package is stdlib-only.  The optional ``numpy`` extra enables the
vectorised kernel backend (see docs/ARCHITECTURE.md, "Kernel backends")::

    pip install -e .          # pure-python kernel backend only
    pip install -e .[numpy]   # + the numpy-accelerated backend
"""
from setuptools import find_packages, setup

setup(
    name="repro-wavelet-trie",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of Grossi & Ottaviano's Wavelet Trie (PODS'12) grown "
        "into an engineered system: compressed dynamic indexed sequences "
        "with a pluggable word-level kernel backend"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    # int.bit_count (3.10+) is used throughout the kernel hot paths.
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # The numpy kernel backend is optional: everything runs without it,
        # and REPRO_KERNEL_BACKEND/use_backend select at runtime.
        "numpy": ["numpy>=1.22"],
    },
)
