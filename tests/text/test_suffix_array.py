"""Differential tests for suffix-array and BWT construction.

The prefix-doubling construction rides on the host sort machinery (one
``np.lexsort`` per round under the numpy backend, ``list.sort`` otherwise),
so every test runs under each available kernel backend and compares against
the sorted-suffix oracle -- the two code paths certify each other.
"""

import contextlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import kernel
from repro.text import bwt_from_suffix_array, suffix_array

BACKENDS = kernel.available_backends()


@contextlib.contextmanager
def active_backend(name):
    previous = kernel.use_backend(name)
    try:
        yield
    finally:
        kernel.use_backend(previous)


def oracle_suffix_array(codes):
    return sorted(range(len(codes)), key=lambda i: codes[i:])


def with_terminator(codes):
    """Shift to 1-based codes and append the unique smallest terminator."""
    return [code + 1 for code in codes] + [0]


@pytest.mark.parametrize("backend", BACKENDS)
class TestSuffixArray:
    def test_empty(self, backend):
        with active_backend(backend):
            assert suffix_array([]) == []

    def test_single_and_run(self, backend):
        with active_backend(backend):
            assert suffix_array([5]) == [0]
            # A constant run has no unique terminator: shorter suffixes sort
            # first via the doubling sentinel, matching the slice oracle.
            run = [3] * 9
            assert suffix_array(run) == oracle_suffix_array(run)

    def test_classic_banana(self, backend):
        codes = with_terminator([ord(c) for c in "banana"])
        with active_backend(backend):
            order = suffix_array(codes)
        assert order == oracle_suffix_array(codes)
        assert order[0] == len(codes) - 1  # the terminator suffix is row 0

    def test_negative_codes_rejected(self, backend):
        with active_backend(backend):
            with pytest.raises(ValueError):
                suffix_array([1, -1, 2])

    def test_random_against_oracle(self, backend):
        rng = random.Random(99)
        with active_backend(backend):
            for _ in range(25):
                n = rng.randint(1, 120)
                sigma = rng.choice([1, 2, 4, 26])
                codes = with_terminator(
                    [rng.randrange(sigma) for _ in range(n)]
                )
                assert suffix_array(codes) == oracle_suffix_array(codes)

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, backend, codes):
        terminated = with_terminator(codes)
        with active_backend(backend):
            assert suffix_array(terminated) == oracle_suffix_array(terminated)

    def test_backends_agree(self, backend):
        rng = random.Random(5)
        codes = with_terminator([rng.randrange(6) for _ in range(200)])
        with active_backend(backend):
            ours = suffix_array(codes)
        reference = oracle_suffix_array(codes)
        assert ours == reference


@pytest.mark.parametrize("backend", BACKENDS)
class TestBWT:
    def test_banana_rotation(self, backend):
        codes = with_terminator([ord(c) for c in "banana"])
        with active_backend(backend):
            order = suffix_array(codes)
            bwt = bwt_from_suffix_array(codes, order)
        # bwt[row] is the character preceding the row's suffix (wrapping).
        expected = [
            codes[pos - 1] if pos else codes[-1] for pos in oracle_suffix_array(codes)
        ]
        assert bwt == expected
        assert sorted(bwt) == sorted(codes)  # a permutation of the text

    def test_length_mismatch_rejected(self, backend):
        with active_backend(backend):
            with pytest.raises(ValueError):
                bwt_from_suffix_array([1, 2, 0], [0, 1])

    def test_bwt_invertible_via_lf(self, backend):
        """Walking the LF mapping from row 0 recovers the reversed text."""
        rng = random.Random(17)
        original = [rng.randrange(4) for _ in range(80)]
        codes = with_terminator(original)
        with active_backend(backend):
            order = suffix_array(codes)
            bwt = bwt_from_suffix_array(codes, order)
        counts = [0] * (max(codes) + 2)
        for code in bwt:
            counts[code + 1] += 1
        c_table = [0] * (len(counts))
        for code in range(1, len(counts)):
            c_table[code] = c_table[code - 1] + counts[code]
        row = 0
        recovered = []
        for _ in range(len(original)):
            code = bwt[row]
            rank = sum(1 for r in range(row) if bwt[r] == code)
            row = c_table[code] + rank
            recovered.append(code - 1)
        assert recovered[::-1] == original
