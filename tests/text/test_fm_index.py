"""Hypothesis differential suite for the FM-index.

Every query is cross-checked against the naive ``str`` oracle (``find``
loops over the original text), over both BWT node bitvector flavours and
every available kernel backend: the edge cases the issue named -- empty
pattern, pattern equal to the whole text, overlapping matches, absent
symbols, NUL-separator documents -- appear both as named regressions and
inside the property strategies.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import kernel
from repro.exceptions import OutOfBoundsError
from repro.text import FMIndex

BACKENDS = kernel.available_backends()
KINDS = ["plain", "rrr"]


@contextlib.contextmanager
def active_backend(name):
    previous = kernel.use_backend(name)
    try:
        yield
    finally:
        kernel.use_backend(previous)


def naive_count(text, pattern):
    if not pattern:
        return len(text) + 1
    count = 0
    start = 0
    while True:
        found = text.find(pattern, start)
        if found < 0:
            return count
        count += 1
        start = found + 1


def naive_locate(text, pattern):
    positions = []
    start = 0
    while True:
        found = text.find(pattern, start)
        if found < 0:
            return positions
        positions.append(found)
        start = found + 1


def check_against_oracle(fm, text, patterns):
    for pattern in patterns:
        assert fm.count(pattern) == naive_count(text, pattern), pattern
        if pattern:
            assert fm.locate(pattern) == naive_locate(text, pattern), pattern
    assert fm.count_many(patterns) == [naive_count(text, p) for p in patterns]


# Small alphabets force overlapping matches; the NUL keeps the separator
# convention of the document store inside the fuzzed space.
TEXTS = st.text(alphabet="ab\x00", max_size=40) | st.text(max_size=25)


@pytest.mark.parametrize("kind", KINDS)
class TestFMIndexDifferential:
    @given(text=TEXTS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_count_locate_match_oracle(self, kind, text, data):
        fm = FMIndex(text, sa_sample=4, bitvector=kind)
        patterns = [""]
        if text:
            patterns.append(text)  # pattern == the whole text
            start = data.draw(st.integers(0, len(text) - 1))
            stop = data.draw(st.integers(start + 1, len(text)))
            patterns.append(text[start:stop])
        patterns += ["a", "aa", "ab", "\x00", "zzz"]  # incl. absent symbols
        check_against_oracle(fm, text, patterns)

    @given(text=TEXTS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_extract_matches_slicing(self, kind, text, data):
        fm = FMIndex(text, sa_sample=3, bitvector=kind)
        start = data.draw(st.integers(0, len(text)))
        stop = data.draw(st.integers(start, len(text)))
        assert fm.extract(start, stop) == text[start:stop]

    def test_overlapping_matches(self, kind):
        text = "aaaaaa"
        fm = FMIndex(text, sa_sample=2, bitvector=kind)
        assert fm.count("aa") == 5
        assert fm.locate("aaa") == [0, 1, 2, 3]

    def test_empty_text_and_empty_pattern(self, kind):
        fm = FMIndex("", bitvector=kind)
        assert fm.text_length == 0
        assert fm.count("") == 1  # the empty pattern matches at offset 0
        assert fm.count("a") == 0
        assert fm.extract(0, 0) == ""
        full = FMIndex("xyz", bitvector=kind)
        assert full.count("") == 4  # n + 1 offsets
        assert full.count("xyz") == 1 and full.locate("xyz") == [0]

    def test_nul_separated_documents(self, kind):
        text = "doc one\x00doc two\x00three"
        fm = FMIndex(text, sa_sample=4, bitvector=kind)
        assert fm.count("doc ") == 2
        assert fm.locate("\x00") == [7, 15]
        assert fm.count("one\x00doc") == 1  # patterns may span separators
        assert fm.extract(0, len(text)) == text

    def test_absent_symbols_and_type_errors(self, kind):
        fm = FMIndex("hello world", bitvector=kind)
        assert fm.count("Q") == 0 and fm.locate("Q") == []
        assert fm.count("hq") == 0  # present then absent character
        with pytest.raises(TypeError):
            fm.count(b"hello")
        with pytest.raises(TypeError):
            FMIndex(123)

    def test_extract_bounds(self, kind):
        fm = FMIndex("abcdef", sa_sample=4, bitvector=kind)
        with pytest.raises(OutOfBoundsError):
            fm.extract(0, 7)
        with pytest.raises(OutOfBoundsError):
            fm.extract(-1, 2)
        with pytest.raises(OutOfBoundsError):
            fm.extract(5, 2)

    def test_sa_sample_validation(self, kind):
        with pytest.raises(ValueError):
            FMIndex("abc", sa_sample=0, bitvector=kind)

    def test_scalar_and_batched_backward_search_agree(self, kind):
        text = "the quick brown fox jumps over the lazy dog" * 3
        fm = FMIndex(text, sa_sample=8, bitvector=kind)
        patterns = ["the", "fox", "o", " ", "zebra", text[:50], ""]
        for pattern in patterns:
            assert fm._interval(pattern) == fm._interval_scalar(pattern)
        assert fm.count_many(patterns) == [fm.count(p) for p in patterns]


def test_unknown_bitvector_kind_rejected():
    with pytest.raises(ValueError):
        FMIndex("abc", bitvector="gap")


@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_build_identical_indexes(backend):
    """The numpy and python construction paths must agree query-for-query."""
    text = "mississippi\x00river runs\x00by mississippi banks"
    patterns = ["ssi", "is", "\x00", "river", "banks", "q", "mississippi"]
    with active_backend(backend):
        fm = FMIndex(text, sa_sample=4)
        check_against_oracle(fm, text, patterns)
        assert fm.extract(0, fm.text_length) == text


@pytest.mark.parametrize("backend", BACKENDS)
def test_sa_sample_is_pure_space_time_knob(backend):
    """Every sampling rate answers identically; only the size moves."""
    text = "abracadabra arcana " * 6
    with active_backend(backend):
        dense = FMIndex(text, sa_sample=1)
        default = FMIndex(text, sa_sample=32)
        sparse = FMIndex(text, sa_sample=512)
        for pattern in ["abra", "a", "cad", "nope", " arc"]:
            assert (
                dense.locate(pattern)
                == default.locate(pattern)
                == sparse.locate(pattern)
            )
        assert dense.size_in_bits() > sparse.size_in_bits()
