"""Tests for the byte-stream primitives of the storage format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.bitstring import Bits
from repro.exceptions import SerializationError
from repro.storage.varint import ByteReader, ByteWriter, bits_to_runs, runs_to_bits


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16383, 16384, 2**32, 2**60]
    )
    def test_roundtrip(self, value):
        writer = ByteWriter()
        writer.write_uvarint(value)
        reader = ByteReader(writer.getvalue())
        assert reader.read_uvarint() == value
        reader.expect_end()

    def test_negative_rejected(self):
        writer = ByteWriter()
        with pytest.raises(SerializationError):
            writer.write_uvarint(-1)

    def test_small_values_are_one_byte(self):
        writer = ByteWriter()
        writer.write_uvarint(100)
        assert len(writer) == 1

    def test_overlong_varint_rejected(self):
        # Ten continuation bytes exceed the 64-bit budget.
        reader = ByteReader(b"\x80" * 12 + b"\x01")
        with pytest.raises(SerializationError):
            reader.read_uvarint()

    @given(st.lists(st.integers(min_value=0, max_value=2**62), max_size=30))
    @settings(max_examples=50)
    def test_many_values_roundtrip(self, values):
        writer = ByteWriter()
        for value in values:
            writer.write_uvarint(value)
        reader = ByteReader(writer.getvalue())
        assert [reader.read_uvarint() for _ in values] == values
        reader.expect_end()


class TestFixedWidth:
    def test_u8_roundtrip(self):
        writer = ByteWriter()
        writer.write_u8(0)
        writer.write_u8(255)
        reader = ByteReader(writer.getvalue())
        assert reader.read_u8() == 0
        assert reader.read_u8() == 255

    def test_u8_out_of_range(self):
        writer = ByteWriter()
        with pytest.raises(SerializationError):
            writer.write_u8(256)
        with pytest.raises(SerializationError):
            writer.write_u8(-1)

    def test_u32_roundtrip(self):
        writer = ByteWriter()
        writer.write_u32(0xDEADBEEF)
        reader = ByteReader(writer.getvalue())
        assert reader.read_u32() == 0xDEADBEEF

    def test_u32_out_of_range(self):
        writer = ByteWriter()
        with pytest.raises(SerializationError):
            writer.write_u32(1 << 32)

    def test_bool_roundtrip(self):
        writer = ByteWriter()
        writer.write_bool(True)
        writer.write_bool(False)
        reader = ByteReader(writer.getvalue())
        assert reader.read_bool() is True
        assert reader.read_bool() is False

    def test_invalid_bool_byte(self):
        reader = ByteReader(b"\x07")
        with pytest.raises(SerializationError):
            reader.read_bool()


class TestBytesAndText:
    def test_bytes_roundtrip(self):
        writer = ByteWriter()
        writer.write_bytes(b"")
        writer.write_bytes(b"\x00\xff" * 10)
        reader = ByteReader(writer.getvalue())
        assert reader.read_bytes() == b""
        assert reader.read_bytes() == b"\x00\xff" * 10

    def test_text_roundtrip(self):
        writer = ByteWriter()
        writer.write_text("héllo wörld / ünïcode")
        reader = ByteReader(writer.getvalue())
        assert reader.read_text() == "héllo wörld / ünïcode"

    def test_invalid_utf8_raises(self):
        writer = ByteWriter()
        writer.write_bytes(b"\xff\xfe")
        reader = ByteReader(writer.getvalue())
        with pytest.raises(SerializationError):
            reader.read_text()

    def test_truncated_read_raises(self):
        writer = ByteWriter()
        writer.write_bytes(b"hello")
        data = writer.getvalue()[:-2]
        reader = ByteReader(data)
        with pytest.raises(SerializationError):
            reader.read_bytes()

    def test_expect_end_detects_trailing_bytes(self):
        reader = ByteReader(b"\x01\x02")
        reader.read_u8()
        with pytest.raises(SerializationError):
            reader.expect_end()


class TestBitsPayload:
    @pytest.mark.parametrize(
        "bits",
        [
            Bits.empty(),
            Bits.from_string("1"),
            Bits.from_string("0"),
            Bits.from_string("10110010"),
            Bits.from_string("1" * 200),
            Bits.from_string("0" * 1000),
            Bits.from_string("01" * 77),
            Bits.from_bytes(bytes(range(64))),
        ],
    )
    def test_roundtrip(self, bits):
        writer = ByteWriter()
        writer.write_bits(bits)
        reader = ByteReader(writer.getvalue())
        assert reader.read_bits() == bits
        reader.expect_end()

    def test_constant_run_is_compact(self):
        # A million-bit constant run must serialise to a handful of bytes
        # (the RLE mode), not 125 kB.
        writer = ByteWriter()
        writer.write_bits(Bits.zeros(1_000_000))
        assert len(writer) < 16

    def test_dense_random_bits_use_raw_mode(self):
        import random

        rng = random.Random(99)
        bits = Bits.from_iterable(rng.randrange(2) for _ in range(800))
        writer = ByteWriter()
        writer.write_bits(bits)
        # RAW mode: about 100 payload bytes plus a few bytes of header.
        assert len(writer) <= 110

    def test_unknown_mode_rejected(self):
        writer = ByteWriter()
        writer.write_u8(7)  # no such payload mode
        writer.write_uvarint(4)
        reader = ByteReader(writer.getvalue())
        with pytest.raises(SerializationError):
            reader.read_bits()

    def test_rle_length_mismatch_rejected(self):
        writer = ByteWriter()
        writer.write_u8(1)  # RLE mode
        writer.write_uvarint(10)  # declared length
        writer.write_uvarint(1)  # one run
        writer.write_u8(0)
        writer.write_uvarint(3)  # ... of only three bits
        reader = ByteReader(writer.getvalue())
        with pytest.raises(SerializationError):
            reader.read_bits()

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=400))
    @settings(max_examples=60)
    def test_arbitrary_bits_roundtrip(self, bit_list):
        bits = Bits.from_iterable(bit_list)
        writer = ByteWriter()
        writer.write_bits(bits)
        reader = ByteReader(writer.getvalue())
        assert reader.read_bits().to_tuple() == tuple(bit_list)


class TestRuns:
    def test_bits_to_runs(self):
        bits = Bits.from_string("0001101111")
        assert bits_to_runs(bits) == [(0, 3), (1, 2), (0, 1), (1, 4)]

    def test_empty(self):
        assert bits_to_runs(Bits.empty()) == []
        assert runs_to_bits([]) == Bits.empty()

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=300))
    @settings(max_examples=60)
    def test_runs_roundtrip(self, bit_list):
        bits = Bits.from_iterable(bit_list)
        assert runs_to_bits(bits_to_runs(bits)) == bits

    def test_runs_alternate(self):
        bits = Bits.from_string("0101010101")
        runs = bits_to_runs(bits)
        assert all(length == 1 for _, length in runs)
        assert [bit for bit, _ in runs] == [0, 1] * 5
