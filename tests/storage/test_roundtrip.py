"""Round-trip tests: every supported structure survives dumps/loads and save/load."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.db import AccessLogStore, ColumnStore, CompressedColumn
from repro.storage import dumps, load, loads, save
from repro.tries.binarize import BytesCodec, FixedWidthIntCodec
from repro.bits.bitstring import Bits

TRIE_CLASSES = [WaveletTrie, AppendOnlyWaveletTrie, DynamicWaveletTrie]


def assert_equivalent(original, restored, values):
    """The restored index answers every query like the original."""
    assert type(restored) is type(original)
    assert len(restored) == len(original)
    assert restored.to_list() == values
    for value in set(values):
        assert restored.rank(value, len(values)) == original.rank(value, len(values))
        assert restored.select(value, 0) == original.select(value, 0)
    if values:
        assert restored.distinct_count() == original.distinct_count()
        assert restored.average_height() == pytest.approx(original.average_height())


class TestTrieRoundtrip:
    @pytest.mark.parametrize("cls", TRIE_CLASSES)
    def test_url_log(self, cls, url_log):
        values = url_log[:150]
        original = cls(values)
        restored = loads(dumps(original))
        assert_equivalent(original, restored, values)

    @pytest.mark.parametrize("cls", TRIE_CLASSES)
    def test_empty(self, cls):
        restored = loads(dumps(cls([])))
        assert len(restored) == 0
        assert restored.rank("anything", 0) == 0

    @pytest.mark.parametrize("cls", TRIE_CLASSES)
    def test_single_value(self, cls):
        restored = loads(dumps(cls(["only"])))
        assert restored.to_list() == ["only"]
        assert restored.node_count() == 1

    @pytest.mark.parametrize("cls", TRIE_CLASSES)
    def test_constant_sequence(self, cls):
        values = ["same"] * 64
        restored = loads(dumps(cls(values)))
        assert restored.count("same") == 64
        assert restored.select("same", 63) == 63

    @pytest.mark.parametrize("cls", TRIE_CLASSES)
    def test_unicode_values(self, cls):
        values = ["héllo", "wörld", "héllo", "ünïcode/路径", "héllo"]
        restored = loads(dumps(cls(values)))
        assert restored.to_list() == values
        assert restored.rank("héllo", 5) == 3

    @pytest.mark.parametrize("kind", ["rrr", "plain", "rle"])
    def test_static_bitvector_kinds(self, kind, url_log):
        values = url_log[:120]
        original = WaveletTrie(values, bitvector=kind)
        restored = loads(dumps(original))
        assert restored.bitvector_kind == kind
        assert restored.to_list() == values

    def test_bytes_codec(self):
        values = [b"\x00\x01", b"\xff", b"\x00\x01", b"\x10\x20\x30"]
        original = WaveletTrie(values, codec=BytesCodec())
        restored = loads(dumps(original))
        assert restored.to_list() == values
        assert isinstance(restored.codec, BytesCodec)

    def test_int_codec(self):
        codec = FixedWidthIntCodec(16, lsb_first=True)
        values = [5, 1000, 5, 65535, 0, 5]
        original = DynamicWaveletTrie(values, codec=codec)
        restored = loads(dumps(original))
        assert restored.to_list() == values
        assert restored.codec.width == 16
        assert restored.codec.lsb_first is True
        assert restored.rank(5, 6) == 3

    def test_prefix_queries_after_restore(self, url_log):
        values = url_log[:200]
        original = WaveletTrie(values)
        restored = loads(dumps(original))
        prefixes = sorted({value.split("/")[2] for value in values if value.count("/") > 2})[:5]
        for host in prefixes:
            prefix = f"http://{host}"
            assert restored.rank_prefix(prefix, len(values)) == original.rank_prefix(
                prefix, len(values)
            )

    def test_range_analytics_after_restore(self, url_log):
        values = url_log[:200]
        restored = loads(dumps(WaveletTrie(values)))
        original = WaveletTrie(values)
        assert restored.distinct_in_range(20, 180) == original.distinct_in_range(20, 180)
        assert restored.top_k_in_range(0, 200, 5) == original.top_k_in_range(0, 200, 5)
        assert restored.range_majority(0, 10) == original.range_majority(0, 10)


class TestMutationAfterRestore:
    def test_append_only_keeps_growing(self, url_log):
        original = AppendOnlyWaveletTrie(url_log[:50])
        restored = loads(dumps(original))
        restored.append("http://brand.new/path")
        restored.append(url_log[0])
        assert len(restored) == 52
        assert restored.access(50) == "http://brand.new/path"
        assert restored.rank(url_log[0], 52) == original.rank(url_log[0], 50) + 1

    def test_dynamic_insert_delete_after_restore(self, url_log):
        original = DynamicWaveletTrie(url_log[:40])
        restored = loads(dumps(original))
        restored.insert("http://new.example/x", 7)
        assert restored.access(7) == "http://new.example/x"
        deleted = restored.delete(0)
        assert deleted == url_log[0]
        assert len(restored) == 40

    def test_dynamic_delete_last_occurrence_after_restore(self):
        values = ["aa", "ab", "aa", "cc"]
        restored = loads(dumps(DynamicWaveletTrie(values)))
        assert restored.delete(3) == "cc"
        assert restored.distinct_count() == 2
        assert restored.to_list() == ["aa", "ab", "aa"]


class TestTieredRoundtrip:
    def test_tiers_and_parameters_survive(self, url_log):
        values = url_log[:200]
        original = TieredWaveletTrie(values, active_capacity=48, compact_budget=2)
        restored = loads(dumps(original))
        assert type(restored) is TieredWaveletTrie
        assert restored.active_capacity == 48
        assert restored.compact_budget == 2
        assert restored.to_list() == values
        assert restored.mutable_start == original.mutable_start
        for value in set(values[:5]):
            assert restored.rank(value, len(values)) == original.rank(
                value, len(values)
            )

    def test_mid_seal_state_is_frozen_eagerly(self, url_log):
        """Saving with a freeze in flight persists the sealed tier's *content*
        (frozen eagerly at save time); the reopened index has no seal pending
        and the live original keeps its own in-flight freezer."""
        values = url_log[:64]
        original = TieredWaveletTrie(active_capacity=64, compact_budget=1)
        original.extend(values)
        original.append(values[0])
        assert any(r["state"] == "sealing" for r in original.tier_info())
        restored = loads(dumps(original))
        assert any(r["state"] == "sealing" for r in original.tier_info())
        assert all(r["state"] != "sealing" for r in restored.tier_info())
        assert restored.to_list() == values + [values[0]]

    def test_restored_tiered_keeps_absorbing_writes(self, url_log):
        original = TieredWaveletTrie(url_log[:30], active_capacity=8)
        restored = loads(dumps(original))
        restored.append("http://brand.new/path")
        assert restored.access(30) == "http://brand.new/path"
        assert restored.delete(30) == "http://brand.new/path"
        assert len(restored) == 30

    def test_empty_tiered(self):
        restored = loads(dumps(TieredWaveletTrie()))
        assert type(restored) is TieredWaveletTrie
        assert len(restored) == 0
        restored.append("first")
        assert restored.to_list() == ["first"]


class TestDatabaseLayerRoundtrip:
    def test_compressed_column(self, url_log):
        column = CompressedColumn("url", url_log[:80])
        restored = loads(dumps(column))
        assert restored.name == "url"
        assert restored.appendable is True
        assert list(restored.values()) == url_log[:80]
        restored.append("http://x.example/")
        assert len(restored) == 81

    def test_static_column(self, url_log):
        column = CompressedColumn("url", url_log[:80], appendable=False)
        restored = loads(dumps(column))
        assert restored.appendable is False
        with pytest.raises(Exception):
            restored.append("http://x.example/")

    def test_column_store(self, url_log):
        store = ColumnStore(["url", "status"])
        for index, url in enumerate(url_log[:60]):
            store.append_row({"url": url, "status": "200" if index % 3 else "404"})
        restored = loads(dumps(store))
        assert restored.column_names == ["url", "status"]
        assert len(restored) == 60
        assert restored.row(17) == store.row(17)
        assert restored.filter_eq("status", "404") == store.filter_eq("status", "404")
        restored.append_row({"url": "http://new/", "status": "500"})
        assert len(restored) == 61

    def test_access_log_store(self, url_log):
        log = AccessLogStore()
        for index, url in enumerate(url_log[:70]):
            log.append(url, timestamp=index * 10)
        restored = loads(dumps(log))
        assert len(restored) == 70
        assert restored.entry(33) == log.entry(33)
        assert restored.window(100, 300) == log.window(100, 300)
        assert restored.top_urls(3, 0, 700) == log.top_urls(3, 0, 700)
        restored.append("http://later.example/", timestamp=9999)
        assert len(restored) == 71


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path, url_log):
        path = tmp_path / "index.wt"
        original = WaveletTrie(url_log[:100])
        written = save(original, path)
        assert written == path.stat().st_size
        restored = load(path)
        assert restored.to_list() == url_log[:100]

    def test_save_is_atomic(self, tmp_path, url_log):
        path = tmp_path / "index.wt"
        save(WaveletTrie(url_log[:10]), path)
        save(WaveletTrie(url_log[:20]), path)  # overwrite in place
        assert len(load(path)) == 20
        assert not (tmp_path / "index.wt.tmp").exists()

    def test_on_disk_size_is_compressed(self, url_log):
        values = url_log[:400]
        raw_bytes = sum(len(value.encode()) + 1 for value in values)
        stored = len(dumps(WaveletTrie(values)))
        # The skewed URL log compresses to well under half its raw size.
        assert stored < raw_bytes / 2


class TestPropertyRoundtrip:
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=122),
                min_size=0,
                max_size=12,
            ),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_static_any_string_list(self, values):
        restored = loads(dumps(WaveletTrie(values)))
        assert restored.to_list() == values

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=40),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_dynamic_int_sequences(self, values, lsb_first):
        codec = FixedWidthIntCodec(8, lsb_first=lsb_first)
        restored = loads(dumps(DynamicWaveletTrie(values, codec=codec)))
        assert restored.to_list() == values

    @given(st.lists(st.sampled_from(["a", "b", "ab", "ba", "aa"]), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_append_only_small_alphabet(self, values):
        restored = loads(dumps(AppendOnlyWaveletTrie(values)))
        assert restored.to_list() == values
        for value in set(values):
            assert restored.count(value) == values.count(value)
