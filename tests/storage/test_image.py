"""RWT2 frozen-image tests: round trips, corruption, cross-backend parity.

Every supported type is written with :func:`dumps_image`/:func:`save_image`
and reopened under *each available kernel backend*; query results must be
identical to the in-memory original (the loaded structures answer queries
straight off the mapped words, so equality here certifies the whole
zero-copy path).  Corruption tests flip and truncate real section bytes and
expect the per-section CRC / bounds checks to name the damage.  The
numpy-absent fallback is covered by opening a numpy-written file under the
pure-python backend -- the bytes on disk are backend-independent.
"""

import mmap
import random

import pytest

from repro.bits import kernel
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.db.column import CompressedColumn
from repro.db.table import ColumnStore
from repro.exceptions import SerializationError
from repro.storage import (
    IMAGE_MAGIC,
    IMAGE_VERSION,
    dumps_image,
    freeze,
    load,
    loads,
    loads_image,
    open_image,
    save_image,
)
from repro.storage.image import PAGE, FrozenImage
from repro.tries.binarize import FixedWidthIntCodec


@pytest.fixture(params=["python", "numpy"])
def backend(request):
    """Run the test under one kernel backend, restoring the previous one."""
    if request.param not in kernel.available_backends():
        pytest.skip("numpy not installed")
    previous = kernel.use_backend(request.param)
    yield request.param
    kernel.use_backend(previous)


def assert_trie_equal(loaded, values):
    """Differential check of the full query surface against the original."""
    assert len(loaded) == len(values)
    assert [loaded.access(i) for i in range(len(values))] == list(values)
    probes = sorted(set(values))[:8]
    for value in probes:
        assert loaded.count(value) == values.count(value)
        assert loaded.rank(value, len(values) // 2) == values[: len(values) // 2].count(value)
        if value in values:
            assert loaded.select(value, 0) == values.index(value)
    prefix = values[0][:3]
    expected = sum(1 for v in values if v.startswith(prefix))
    assert loaded.count_prefix(prefix) == expected


class TestTrieRoundTrip:
    @pytest.mark.parametrize("kind", ["rrr", "plain"])
    def test_static_trie(self, backend, url_log, kind):
        values = url_log[:150]
        loaded = loads_image(dumps_image(WaveletTrie(values, bitvector=kind)), verify=True)
        assert isinstance(loaded, WaveletTrie)
        assert loaded.bitvector_kind == kind
        assert_trie_equal(loaded, values)

    def test_succinct_trie(self, backend, url_log):
        values = url_log[:150]
        loaded = loads_image(dumps_image(SuccinctWaveletTrie(values)), verify=True)
        assert isinstance(loaded, SuccinctWaveletTrie)
        assert_trie_equal(loaded, values)

    @pytest.mark.parametrize("cls", [AppendOnlyWaveletTrie, DynamicWaveletTrie])
    def test_growable_tries_freeze_to_static(self, backend, url_log, cls):
        values = url_log[:120]
        loaded = loads_image(dumps_image(cls(values)), verify=True)
        assert type(loaded) is WaveletTrie
        assert_trie_equal(loaded, values)

    def test_tiered_trie_persists_per_tier(self, backend, url_log):
        """A tiered trie images as one section group per frozen tier; the
        reopened instance has the same tier layout plus a fresh mutable tail
        that keeps absorbing writes."""
        values = url_log[:150]
        tiered = TieredWaveletTrie(values, active_capacity=48, compact_budget=2)
        loaded = loads_image(dumps_image(tiered), verify=True)
        assert isinstance(loaded, TieredWaveletTrie)
        assert loaded.active_capacity == tiered.active_capacity
        assert loaded.compact_budget == tiered.compact_budget
        assert_trie_equal(loaded, values)
        assert loaded.mutable_start == len(values)
        assert all(row["state"] != "sealing" for row in loaded.tier_info())
        loaded.append("http://post-image.example/write")
        assert len(loaded) == len(values) + 1

    def test_tiered_trie_mid_seal_is_snapshotted(self, backend, url_log):
        """Imaging while a freeze is in flight captures a fully frozen
        snapshot without touching the live instance's compaction state."""
        values = url_log[:64]
        tiered = TieredWaveletTrie(active_capacity=64, compact_budget=1)
        tiered.extend(values)
        tiered.append(values[0])  # seal now in flight at 1-block pace
        assert any(r["state"] == "sealing" for r in tiered.tier_info())
        loaded = loads_image(dumps_image(tiered), verify=True)
        assert any(r["state"] == "sealing" for r in tiered.tier_info())
        assert loaded.to_list() == values + [values[0]]

    def test_empty_trie(self, backend):
        loaded = loads_image(dumps_image(WaveletTrie([])), verify=True)
        assert len(loaded) == 0
        assert loaded.count("/anything") == 0

    def test_single_value_trie(self, backend):
        loaded = loads_image(dumps_image(WaveletTrie(["/only"] * 5)), verify=True)
        assert loaded.to_list() == ["/only"] * 5

    def test_int_codec_round_trips(self, backend):
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        trie = WaveletTrie(values, codec=FixedWidthIntCodec(8))
        loaded = loads_image(dumps_image(trie), verify=True)
        assert loaded.to_list() == values
        assert loaded.rank(5, len(values)) == 3

    def test_file_round_trip_and_load_dispatch(self, backend, url_log, tmp_path):
        values = url_log[:100]
        path = tmp_path / "trie.rwt2"
        written = save_image(WaveletTrie(values), path)
        assert written == path.stat().st_size
        assert path.read_bytes()[:4] == IMAGE_MAGIC
        for loaded in (open_image(path, verify=True), load(path), loads(path.read_bytes())):
            assert_trie_equal(loaded, values)

    def test_rle_trie_is_rejected(self, backend, url_log):
        trie = WaveletTrie(url_log[:40], bitvector="rle")
        with pytest.raises(SerializationError, match="rle"):
            dumps_image(trie)

    def test_loaded_trie_is_immutable(self, backend, url_log):
        loaded = loads_image(dumps_image(AppendOnlyWaveletTrie(url_log[:40])))
        from repro.exceptions import ImmutableStructureError

        with pytest.raises(ImmutableStructureError):
            loaded.append("/new")


class TestDbRoundTrip:
    def test_column(self, backend, column_values):
        column = CompressedColumn("region", column_values)
        loaded = loads_image(dumps_image(column), verify=True)
        assert loaded.name == "region"
        assert not loaded.appendable
        assert len(loaded) == len(column_values)
        assert [loaded.value_at(i) for i in range(0, len(column_values), 13)] == [
            column_values[i] for i in range(0, len(column_values), 13)
        ]
        probe = column_values[0]
        assert loaded.count_eq(probe) == column_values.count(probe)
        assert list(loaded.rows_eq(probe, limit=5)) == list(column.rows_eq(probe, limit=5))

    def test_column_store(self, backend, url_log):
        store = ColumnStore(["url", "verb"])
        for position, url in enumerate(url_log[:120]):
            store.append_row({"url": url, "verb": "GET" if position % 4 else "POST"})
        loaded = loads_image(dumps_image(store), verify=True)
        assert loaded.column_names == store.column_names
        assert len(loaded) == len(store)
        assert loaded.row(17) == store.row(17)
        assert loaded.filter_eq("verb", "POST") == store.filter_eq("verb", "POST")
        assert loaded.count_where({"verb": "GET"}) == store.count_where({"verb": "GET"})
        assert loaded.group_by_count("verb") == store.group_by_count("verb")

    def test_unsupported_object_raises(self, backend):
        with pytest.raises(SerializationError, match="frozen image"):
            dumps_image({"not": "supported"})


class TestCrossBackend:
    """Bytes written under one backend open identically under the other."""

    def test_numpy_written_file_opens_under_python(self, url_log, tmp_path):
        if "numpy" not in kernel.available_backends():
            pytest.skip("numpy not installed")
        values = url_log[:150]
        path = tmp_path / "cross.rwt2"
        previous = kernel.use_backend("numpy")
        try:
            save_image(SuccinctWaveletTrie(values), path)
            numpy_bytes = path.read_bytes()
            kernel.use_backend("python")
            assert_trie_equal(open_image(path, verify=True), values)
            # The image bytes themselves are backend-independent.
            save_image(SuccinctWaveletTrie(values), path)
            assert path.read_bytes() == numpy_bytes
        finally:
            kernel.use_backend(previous)

    def test_python_written_file_opens_under_numpy(self, url_log, tmp_path):
        if "numpy" not in kernel.available_backends():
            pytest.skip("numpy not installed")
        values = url_log[:150]
        path = tmp_path / "cross.rwt2"
        previous = kernel.use_backend("python")
        try:
            save_image(WaveletTrie(values), path)
            kernel.use_backend("numpy")
            assert_trie_equal(open_image(path, verify=True), values)
        finally:
            kernel.use_backend(previous)


@pytest.fixture(scope="module")
def image_bytes(url_log):
    return dumps_image(WaveletTrie(url_log[:100]))


class TestImageValidation:
    def test_too_short(self):
        with pytest.raises(SerializationError, match="too short"):
            loads_image(IMAGE_MAGIC + b"\x01")

    def test_bad_magic(self, image_bytes):
        with pytest.raises(SerializationError, match="magic"):
            loads_image(b"XXXX" + image_bytes[4:])

    def test_version_mismatch_names_both_versions(self, image_bytes):
        corrupted = bytearray(image_bytes)
        corrupted[4:8] = (IMAGE_VERSION + 7).to_bytes(4, "little")
        with pytest.raises(
            SerializationError,
            match=f"found {IMAGE_VERSION + 7}, expected {IMAGE_VERSION}",
        ):
            loads_image(bytes(corrupted))

    def test_header_bit_flip(self, image_bytes):
        corrupted = bytearray(image_bytes)
        corrupted[24] ^= 0x01  # inside the header JSON
        with pytest.raises(SerializationError, match="header"):
            loads_image(bytes(corrupted))

    def test_truncated_section_always_detected(self, image_bytes):
        # Cutting the last page off violates the section-table bounds check,
        # which runs even with verify=False.
        with pytest.raises(SerializationError, match="truncated"):
            loads_image(image_bytes[:-PAGE])

    def test_flipped_section_bit_fails_named_crc(self, image_bytes):
        image = FrozenImage(image_bytes)
        name = image.section_names()[0]
        offset, length, _ = image._sections[name]
        corrupted = bytearray(image_bytes)
        corrupted[offset + length // 2] ^= 0x10
        with pytest.raises(SerializationError) as excinfo:
            loads_image(bytes(corrupted), verify=True)
        assert name in str(excinfo.value)
        assert "checksum mismatch" in str(excinfo.value)
        # Without verification the flip goes unchecked at open time (by design).
        loads_image(bytes(corrupted), verify=False)

    def test_unknown_image_type(self, image_bytes):
        from repro.storage.image import ImageWriter

        writer = ImageWriter()
        writer.add_u64("w", [1, 2, 3])
        with pytest.raises(SerializationError, match="unknown frozen-image type"):
            loads_image(writer.tobytes("martian_index", {}))

    def test_open_image_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.rwt2"
        path.write_bytes(b"")
        with pytest.raises(SerializationError):
            open_image(path)

    def test_sections_are_page_aligned_and_read_only(self, image_bytes):
        image = FrozenImage(image_bytes)
        for name in image.section_names():
            offset, _, _ = image._sections[name]
            assert offset % PAGE == 0
            assert image.section(name).readonly

    def test_mmap_pagesize_divides_page(self):
        # The format's alignment promise only holds if the OS page size
        # divides the section alignment.
        assert PAGE % mmap.PAGESIZE == 0 or mmap.PAGESIZE % PAGE == 0


class TestFreeze:
    def test_freeze_passes_static_through(self, url_log):
        trie = WaveletTrie(url_log[:30])
        assert freeze(trie) is trie

    def test_freeze_snapshots_dynamic(self, url_log):
        dynamic = DynamicWaveletTrie(url_log[:50])
        frozen = freeze(dynamic)
        assert type(frozen) is WaveletTrie
        assert frozen.to_list() == dynamic.to_list()
        # The snapshot is independent: mutating the original changes nothing.
        dynamic.append("/after")
        assert len(frozen) == 50

    def test_freeze_routes_through_core_tiers(self, url_log):
        """storage.freeze is a thin wrapper over core.tiers.freeze_trie for
        every trie flavour -- the lifecycle logic lives in core, storage
        keeps only serialization."""
        from repro.core.tiers import freeze_trie

        dynamic = DynamicWaveletTrie(url_log[:40])
        assert freeze(dynamic).to_list() == freeze_trie(dynamic).to_list()
        tiered = TieredWaveletTrie(url_log[:40], active_capacity=16)
        snapshot = freeze(tiered)
        assert isinstance(snapshot, TieredWaveletTrie)
        assert snapshot.to_list() == tiered.to_list()
        assert all(row["elements"] == 0 or row["state"] == "frozen"
                   for row in snapshot.tier_info())

    def test_unfrozen_tiered_writer_is_rejected(self, url_log):
        """The RWT2 writer only accepts fully frozen tiered tries; live ones
        must go through freeze()/frozen_snapshot() first."""
        from repro.storage.image import _write_tiered_trie, ImageWriter

        tiered = TieredWaveletTrie(url_log[:30], active_capacity=100)
        assert len(tiered._active)  # live tail content
        with pytest.raises(SerializationError, match="fully frozen"):
            _write_tiered_trie(tiered, ImageWriter())


class TestConcurrentReaders:
    """Threads sharing one mapped image: reads are safe and exact.

    The serving layer hands one ``open_image`` result to every reader, so
    the loaded structures must tolerate concurrent queries on a *shared*
    object -- including the lazy per-backend re-preparation that runs on
    the first query after a backend switch.  The stress test computes the
    oracle serially first, then fires interleaved mixed workloads from
    many threads against the same ``FrozenImage``-backed trie and requires
    every thread to see byte-identical answers."""

    def test_threads_share_one_open_image(self, backend, url_log, tmp_path):
        import threading

        values = url_log
        path = tmp_path / "shared.rwt2"
        save_image(WaveletTrie(values), path)
        loaded = open_image(path, verify=True)

        prefix = values[0][:4]
        hot = max(set(values), key=values.count)

        def workload(seed):
            rng = random.Random(seed)
            out = []
            for _ in range(120):
                kind = rng.randrange(4)
                if kind == 0:
                    out.append(loaded.access(rng.randrange(len(values))))
                elif kind == 1:
                    out.append(loaded.rank(hot, rng.randrange(len(values) + 1)))
                elif kind == 2:
                    out.append(loaded.select(hot, rng.randrange(values.count(hot))))
                else:
                    out.append(
                        loaded.rank_prefix(prefix, rng.randrange(len(values) + 1))
                    )
            return out

        seeds = list(range(8))
        expected = {seed: workload(seed) for seed in seeds}  # serial oracle

        results = {}
        errors = []
        barrier = threading.Barrier(len(seeds))

        def run(seed):
            try:
                barrier.wait()  # maximise interleaving: all start together
                results[seed] = workload(seed)
            except Exception as error:  # pragma: no cover - failure path
                errors.append((seed, error))

        threads = [threading.Thread(target=run, args=(seed,)) for seed in seeds]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert results == expected

    def test_threads_share_one_image_across_columns(self, backend, url_log, tmp_path):
        """Many threads, one mapped ColumnStore image: each hammers its own
        column of the shared store and the batch paths stay exact."""
        import threading

        store = ColumnStore(["urls", "mirror"])
        for url, mirror in zip(url_log[:200], url_log[200:400]):
            store.append_row({"urls": url, "mirror": mirror})
        path = tmp_path / "store.rwt2"
        save_image(store, path)
        loaded = open_image(path, verify=True)

        def batch_workload(name, rows):
            snapshot = loaded.column(name).snapshot()
            positions = list(range(0, len(rows), 7))
            got = snapshot.access_many(positions)
            assert got == [rows[p] for p in positions]
            value = rows[3]
            assert snapshot.rank_many(value, [len(rows)]) == [rows.count(value)]
            return True

        lanes = [("urls", url_log[:200]), ("mirror", url_log[200:400])] * 3
        errors = []
        barrier = threading.Barrier(len(lanes))

        def run(name, rows):
            try:
                barrier.wait()
                for _ in range(20):
                    batch_workload(name, rows)
            except Exception as error:  # pragma: no cover - failure path
                errors.append((name, error))

        threads = [threading.Thread(target=run, args=lane) for lane in lanes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
