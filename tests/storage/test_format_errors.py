"""Failure injection for the container format: corrupted, truncated, foreign data."""

import pytest

from repro.core.static import WaveletTrie
from repro.exceptions import SerializationError
from repro.storage import FORMAT_VERSION, MAGIC, dumps, loads, save, load
from repro.storage.serializers import read_object, write_object


@pytest.fixture(scope="module")
def stored(url_log):
    return dumps(WaveletTrie(url_log[:60]))


class TestContainerValidation:
    def test_bad_magic(self, stored):
        corrupted = b"XXXX" + stored[4:]
        with pytest.raises(SerializationError, match="magic"):
            loads(corrupted)

    def test_empty_input(self):
        with pytest.raises(SerializationError):
            loads(b"")

    def test_not_a_wavelet_file(self):
        with pytest.raises(SerializationError):
            loads(b"PK\x03\x04 this is a zip archive, not an index")

    def test_bad_magic_names_both_container_magics(self, stored):
        """The bad-magic diagnostic must name *both* accepted containers
        (RWT1 streams and RWT2 images), so a user pointing the loader at the
        wrong file learns what the library would have accepted."""
        corrupted = b"XXXX" + stored[4:]
        with pytest.raises(SerializationError) as caught:
            loads(corrupted)
        message = str(caught.value)
        assert "RWT1" in message and "RWT2" in message
        assert "b'XXXX'" in message  # ...and what it actually found.

    def test_bad_magic_from_file_names_both_magics(self, tmp_path):
        path = tmp_path / "notanindex.wt"
        path.write_bytes(b"PK\x03\x04 a zip archive, not an index" * 3)
        with pytest.raises(SerializationError) as caught:
            load(path)
        message = str(caught.value)
        assert "RWT1" in message and "RWT2" in message

    def test_unsupported_version(self, stored):
        corrupted = bytearray(stored)
        corrupted[len(MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(SerializationError, match="version"):
            loads(bytes(corrupted))

    def test_version_error_names_found_and_expected(self, stored):
        corrupted = bytearray(stored)
        corrupted[len(MAGIC)] = FORMAT_VERSION + 41
        with pytest.raises(
            SerializationError,
            match=f"found {FORMAT_VERSION + 41}, expected {FORMAT_VERSION}",
        ):
            loads(bytes(corrupted))

    def test_truncated_payload(self, stored):
        with pytest.raises(SerializationError):
            loads(stored[: len(stored) // 2])

    def test_truncated_checksum(self, stored):
        with pytest.raises(SerializationError):
            loads(stored[:-2])

    def test_flipped_payload_byte_fails_checksum(self, stored):
        corrupted = bytearray(stored)
        # Flip a byte in the middle of the payload (well past the header).
        corrupted[len(stored) // 2] ^= 0xFF
        with pytest.raises(SerializationError, match="checksum"):
            loads(bytes(corrupted))

    def test_trailing_garbage_rejected(self, stored):
        with pytest.raises(SerializationError, match="trailing bytes after the checksum"):
            loads(stored + b"extra")


class TestObjectValidation:
    def test_unknown_type_tag(self):
        with pytest.raises(SerializationError, match="type tag"):
            read_object(250, b"")

    def test_unsupported_object(self):
        with pytest.raises(SerializationError, match="cannot be serialised"):
            write_object(object())

    def test_unsupported_builtin(self):
        with pytest.raises(SerializationError):
            dumps({"a": 1})

    def test_payload_for_wrong_type(self, stored, url_log):
        # Take a valid static-trie payload and present it under the dynamic tag.
        tag, payload = write_object(WaveletTrie(url_log[:20]))
        from repro.core.dynamic import DynamicWaveletTrie
        from repro.storage.serializers import TYPE_TAGS

        with pytest.raises(SerializationError):
            read_object(TYPE_TAGS[DynamicWaveletTrie], payload)


class TestFileErrors:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load(tmp_path / "does-not-exist.wt")

    def test_load_corrupted_file(self, tmp_path, url_log):
        path = tmp_path / "index.wt"
        save(WaveletTrie(url_log[:30]), path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x55
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError):
            load(path)

    def test_load_empty_file(self, tmp_path):
        path = tmp_path / "empty.wt"
        path.write_bytes(b"")
        with pytest.raises(SerializationError):
            load(path)

    def test_load_rejects_trailing_bytes(self, tmp_path, url_log):
        path = tmp_path / "index.wt"
        save(WaveletTrie(url_log[:30]), path)
        path.write_bytes(path.read_bytes() + b"garbage")
        with pytest.raises(SerializationError, match="trailing bytes"):
            load(path)

    def test_load_oversized_length_varint_fails_cleanly(self, tmp_path, url_log):
        # A corrupted payload-length varint claiming more bytes than the file
        # holds must raise instead of attempting a huge allocation.
        path = tmp_path / "index.wt"
        save(WaveletTrie(url_log[:30]), path)
        data = bytearray(path.read_bytes())
        # magic(4) + version(1) + type tag varint(1) -> the length varint.
        # Overwrite it with a 9-byte varint encoding ~2**60 and keep the rest.
        huge = bytearray()
        value = 1 << 60
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                huge.append(byte | 0x80)
            else:
                huge.append(byte)
                break
        corrupted = bytes(data[:6]) + bytes(huge) + bytes(data[7:])
        path.write_bytes(corrupted)
        with pytest.raises(SerializationError, match="exceeds the .* bytes left"):
            load(path)

    def test_load_truncated_file_streams_cleanly(self, tmp_path, url_log):
        path = tmp_path / "index.wt"
        save(WaveletTrie(url_log[:30]), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SerializationError):
            load(path)
