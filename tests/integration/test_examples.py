"""Every example script must run to completion (they are part of the API surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[script.stem for script in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_there_are_at_least_five_examples():
    assert len(EXAMPLES) >= 5
