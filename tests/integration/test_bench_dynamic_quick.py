"""Quick-mode run of the dynamic-layer benchmark harness.

Runs ``benchmarks/bench_dynamic.py`` at small sizes inside the test suite so
the perf harness (and its seed-replica cross-checks, which assert that the
bulk/batch answers equal the seed implementation's) cannot silently break.
No speedup thresholds are asserted here -- tiny sizes and CI noise would make
that flaky; the committed ``BENCH_dynamic.json`` records the full-size
numbers.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_dynamic.py"
)

EXPECTED_SECTIONS = {
    "dbv_bulk_construction",
    "dbv_iter_range_tail",
    "dbv_select_batch",
    "dbv_insert_many",
    "dbv_delete_many",
    "dwt_bulk_construction",
    "dwt_rank_batch",
    "dwt_access_batch",
    "dwt_select_batch",
    "dwt_insert_many",
    "dwt_delete_many",
    "dwt_rank_prefix_batch",
    "dwt_select_prefix_batch",
    "aot_bulk_construction",
    "aob_freeze_latency",
}


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_dynamic", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_dynamic_quick_mode():
    bench = load_bench_module()
    # run() embeds equality assertions of bulk/batch answers vs the seed
    # replica, so completing without error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert set(payload["results"]) == EXPECTED_SECTIONS
    for name, entry in payload["results"].items():
        assert entry["ops"] > 0, name
        assert entry["seed_ops_per_sec"] > 0, name
        assert entry["kernel_ops_per_sec"] > 0, name
        assert entry["speedup"] > 0, name
