"""Quick-mode run of the kernel microbenchmark harness.

Runs ``benchmarks/bench_kernel.py`` at small sizes inside the test suite so
the perf harness (and its seed-replica cross-checks, which assert that kernel
answers equal the seed implementation's) cannot silently break.  No speedup
thresholds are asserted here -- tiny sizes and CI noise would make that flaky;
the committed ``BENCH_kernel.json`` records the full-size numbers.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_kernel.py"
)

EXPECTED_SECTIONS = {
    "select",
    "rank",
    "rank_plain_batch",
    "access",
    "iter_range",
    "wavelet_build",
}


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_kernel", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


EXPECTED_BACKEND_SECTIONS = {
    "pack_bits",
    "directory_build",
    "rank_many",
    "access_many",
    "select_many",
    "wavelet_build",
}


def test_bench_kernel_quick_mode():
    bench = load_bench_module()
    # run() embeds equality assertions of kernel answers vs the seed replica
    # and of the numpy backend vs the python backend, so completing without
    # error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert set(payload["results"]) == EXPECTED_SECTIONS
    for name, entry in payload["results"].items():
        assert entry["ops"] > 0, name
        assert entry["seed_ops_per_sec"] > 0, name
        assert entry["kernel_ops_per_sec"] > 0, name
        assert entry["speedup"] > 0, name
    backends = payload["backends"]
    assert "python" in backends["available"]
    if "numpy" not in backends["available"]:
        assert "results" not in backends  # numpy-free installs: list only
        return
    assert set(backends["results"]) == EXPECTED_BACKEND_SECTIONS
    for name, entry in backends["results"].items():
        assert entry["ops"] > 0, name
        assert entry["python_ops_per_sec"] > 0, name
        assert entry["numpy_ops_per_sec"] > 0, name
        # No speedup thresholds here (tiny sizes + CI noise); the committed
        # BENCH_kernel.json records the full-size numbers.
        assert entry["numpy_speedup"] > 0, name


def test_bench_kernel_restores_active_backend():
    """The harness switches backends internally but must leave the session's
    active backend untouched."""
    from repro.bits import kernel

    bench = load_bench_module()
    before = kernel.active_backend()
    bench.run(quick=True, repeats=1)
    assert kernel.active_backend() == before
