"""Cross-module integration: ingest -> persist -> reload -> query -> analytics.

These tests chain the application layers the way a downstream user would:
workload generators feed the database layer, the indexes are persisted with
:mod:`repro.storage`, reloaded, queried through the declarative query layer
and the CLI, and the analytics answers are cross-checked against plain-Python
oracles.
"""

import json

import pytest

from repro.cli import main
from repro.db import AccessLogStore, ColumnStore, Query, TemporalGraphStore
from repro.storage import dumps, load, loads, save
from repro.workloads import EdgeStreamGenerator, UrlLogGenerator


class TestLogPipeline:
    def test_ingest_persist_reload_analyze(self, tmp_path):
        urls = UrlLogGenerator(domains=8, depth=2, branching=3, seed=55).generate(600)
        log = AccessLogStore()
        for tick, url in enumerate(urls):
            log.append(url, timestamp=tick)

        path = tmp_path / "log.wt"
        save(log, path)
        restored = load(path)

        # Windowed analytics agree with a plain recount of the raw list.
        window = (150, 450)
        low, high = restored.window(*window)
        assert (low, high) == (150, 450)
        domain = urls[200].split("/")[2]
        prefix = f"http://{domain}"
        expected = sum(1 for url in urls[150:450] if url.startswith(prefix))
        assert restored.count_prefix(prefix, *window) == expected

        top = restored.top_urls(3, *window)
        recount = {}
        for url in urls[150:450]:
            recount[url] = recount.get(url, 0) + 1
        assert top[0][1] == max(recount.values())
        assert recount[top[0][0]] == top[0][1]

    def test_cli_round_trip_agrees_with_library(self, tmp_path, capsys):
        urls = UrlLogGenerator(domains=5, depth=2, branching=2, seed=77).generate(300)
        log_file = tmp_path / "urls.log"
        log_file.write_text("\n".join(urls) + "\n", encoding="utf-8")
        index_file = tmp_path / "urls.wt"

        assert main(["build", str(log_file), "-o", str(index_file)]) == 0
        capsys.readouterr()

        assert main(["rank", str(index_file), "http://", "--prefix", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 300

        index = load(index_file)
        assert index.to_list() == urls
        assert main(["top", str(index_file), "-k", "1", "--json"]) == 0
        top_payload = json.loads(capsys.readouterr().out)
        assert top_payload["results"][0]["count"] == index.top_k_in_range(0, 300, 1)[0][1]


class TestColumnStorePipeline:
    def test_query_layer_after_reload(self, tmp_path):
        urls = UrlLogGenerator(domains=6, depth=2, branching=2, seed=99).generate(400)
        store = ColumnStore(["url", "status", "method"])
        for index, url in enumerate(urls):
            store.append_row(
                {
                    "url": url,
                    "status": "500" if index % 17 == 0 else "200",
                    "method": "POST" if index % 5 == 0 else "GET",
                }
            )
        restored = loads(dumps(store))

        query = (
            Query(restored)
            .where_eq("status", "500")
            .where_eq("method", "POST")
            .select("url", "status")
        )
        expected = [
            {"url": urls[index], "status": "500"}
            for index in range(400)
            if index % 17 == 0 and index % 5 == 0
        ]
        assert query.rows() == expected

        grouped = dict(Query(restored).in_rows(0, 100).group_by_count("method"))
        assert grouped["POST"] == len([i for i in range(100) if i % 5 == 0])
        assert grouped["GET"] == 100 - grouped["POST"]


class TestGraphPipeline:
    def test_snapshots_from_generated_stream(self):
        generator = EdgeStreamGenerator(initial_vertices=5, seed=3)
        graph = TemporalGraphStore()
        oracle = {}
        for tick in range(500):
            src, dst = generator.generate_edge()
            graph.add_edge(src, dst, timestamp=tick)
            oracle.setdefault(src, set()).add(dst)

        # Full-history snapshot equals the oracle adjacency sets.
        for vertex in list(oracle)[:8]:
            assert set(graph.neighbors_at(vertex, 500)) == oracle[vertex]

        # Per-window activity sums to the number of events.
        total_activity = sum(
            count for _, count in graph.active_vertices(0, 500)
        )
        assert total_activity == 500
