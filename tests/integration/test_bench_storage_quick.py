"""Quick-mode run of the storage cold-open benchmark harness.

Runs ``benchmarks/bench_storage.py`` at small sizes inside the test suite so
the harness (and its embedded differential checks -- tiled-vs-direct build
equality, image queries identical under every backend and to the RWT1
rebuild) cannot silently break.  No latency thresholds are asserted here --
tiny sizes and CI noise would make that flaky; the committed
``BENCH_storage.json`` records the full-size numbers.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_storage.py"
)


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_storage", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_storage_quick_mode():
    bench = load_bench_module()
    # run() embeds equality assertions (tiled trie vs direct build, image
    # queries under every backend vs the in-memory original and the RWT1
    # rebuild), so completing without error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert "python" in payload["backends"]
    assert len(payload["results"]) == 2
    smallest = min(payload["results"].values(), key=lambda entry: entry["elements"])
    assert smallest["open_speedup_vs_rwt1"] > 0
    for entry in payload["results"].values():
        assert entry["rwt2_open_s"] > 0
        assert entry["rwt2_bytes"] > 0
        # Quick mode never spawns subprocesses or writes outside tempdirs.
        assert "cold_rwt2" not in entry


def test_bench_storage_restores_active_backend():
    """The harness switches backends for its differential checks but must
    leave the session's active backend untouched."""
    from repro.bits import kernel

    bench = load_bench_module()
    before = kernel.active_backend()
    bench.run(quick=True, repeats=1)
    assert kernel.active_backend() == before
