"""Quick-mode run of the tiered mixed-workload benchmark harness.

Runs ``benchmarks/bench_tiered.py`` at small sizes inside the test suite so
the harness (and its embedded differential checks -- identical operation
streams against the tiered and pure-dynamic tries compared batch by batch,
plus the post-burst access sweep) cannot silently break.  No throughput or
latency thresholds are asserted here -- at 20k elements the frozen-tier RRR
advantage has not kicked in and CI noise would make timing asserts flaky;
the committed ``BENCH_tiered.json`` records the full-size (n=1M) numbers.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_tiered.py"
)


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_tiered", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_tiered_quick_mode():
    bench = load_bench_module()
    # run() embeds differential assertions (every mixed-stream batch result,
    # every per-op-table call, and a post-burst access sweep compared against
    # the oracle), so completing without error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert payload["elements"] == 20_000
    assert "python" in payload["backends"]
    mixed = payload["mixed_workload"]
    assert mixed["tiered_ops_per_s"] > 0 and mixed["dynamic_ops_per_s"] > 0
    per_op = payload["per_op"]
    assert set(per_op) == {
        "rank_many",
        "rank_prefix_many",
        "access_many",
        "select_many",
    }
    for row in per_op.values():
        assert row["tiered_s_per_100"] > 0 and row["dynamic_s_per_100"] > 0
    latency = payload["write_latency"]
    assert latency["burst_appends"] > 2 * payload["active_capacity"]
    assert latency["tiers_after_burst"] > 1  # the burst crossed seals
    assert latency["max_single_append_s"] > 0
    assert latency["stop_the_world_freeze_s"] > 0


def test_bench_tiered_mix_is_normalised():
    bench = load_bench_module()
    assert abs(sum(bench.MIX.values()) - 1.0) < 1e-9
    assert bench.MIX["write"] > 0  # the sustained workload really writes
