"""End-to-end integration tests across packages.

These scenarios mirror the paper's motivating applications and chain every
layer together: workload generation -> binarisation -> Wavelet Trie ->
analytics / db layer -> space accounting.
"""

import random
from collections import Counter

import pytest

from repro.analysis import compute_bounds, wavelet_trie_space_report
from repro.baselines import (
    BTreeSequenceIndex,
    DictWaveletSequence,
    NaiveIndexedSequence,
    TextCollectionSequence,
)
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.db import AccessLogStore
from repro.exceptions import InvalidOperationError
from repro.wavelet import BalancedDynamicWaveletTree
from repro.workloads import EdgeStreamGenerator, IntegerSequenceGenerator, UrlLogGenerator


class TestLogIngestionScenario:
    """The intro scenario: compress and index a sequential log on the fly."""

    def test_streaming_ingestion_and_analytics(self):
        generator = UrlLogGenerator(domains=15, depth=2, branching=3, seed=77)
        store = AccessLogStore()
        mirror = []
        for tick, url in enumerate(generator.stream(1200)):
            store.append(url, timestamp=tick)
            mirror.append(url)
        # Windowed analytics agree with a plain recomputation.
        window = (300, 900)
        window_values = mirror[window[0]:window[1]]
        top = store.top_urls(5, *window)
        counter = Counter(window_values)
        assert [count for _, count in top] == [
            count for _, count in counter.most_common(5)
        ]
        domain = generator.domains()[0]
        prefix = f"http://{domain}/"
        assert store.count_prefix(prefix, *window) == sum(
            1 for value in window_values if value.startswith(prefix)
        )
        # Compression: the index must be smaller than the raw log.
        raw_bits = sum(len(value.encode()) * 8 for value in mirror)
        assert store.size_in_bits() < raw_bits

    def test_append_only_matches_static_rebuild_at_checkpoints(self):
        generator = UrlLogGenerator(domains=8, seed=31)
        values = generator.generate(600)
        append_only = AppendOnlyWaveletTrie(block_size=256)
        for index, value in enumerate(values, start=1):
            append_only.append(value)
            if index in (1, 50, 313, 600):
                static = WaveletTrie(values[:index])
                assert append_only.node_count() == static.node_count()
                assert append_only.average_height() == pytest.approx(static.average_height())


class TestDatabaseScenario:
    def test_alphabet_growth_is_the_differentiator(self):
        """The paper's issue (a): only the Wavelet Trie handles unseen values."""
        initial = ["red", "green", "blue"] * 20
        trie = AppendOnlyWaveletTrie(initial)
        baseline = DictWaveletSequence(initial)
        trie.append("magenta")          # fine: the alphabet grows
        with pytest.raises(InvalidOperationError):
            baseline.append("magenta")  # impossible for the mapped Wavelet Tree
        assert trie.count("magenta") == 1

    def test_space_ranking_of_approaches(self):
        # The regime the paper targets: many repetitions per distinct string
        # (60 distinct URLs over 1500 log entries).
        values = UrlLogGenerator(domains=10, depth=2, branching=2, seed=3).generate(1500)
        wavelet_trie = WaveletTrie(values)
        naive = NaiveIndexedSequence(values)
        btree = BTreeSequenceIndex(values)
        text = TextCollectionSequence(values)
        # The orderings the paper argues for: the Wavelet Trie beats the
        # explicit sequence, which beats the B-tree index (which stores the
        # strings twice); the text-collection approach compresses characters
        # but not string repetitions, so it also loses to the Wavelet Trie.
        assert wavelet_trie.size_in_bits() < naive.size_in_bits()
        assert naive.size_in_bits() < btree.size_in_bits()
        assert wavelet_trie.size_in_bits() < text.size_in_bits()
        # And the Wavelet Trie's bitvector payload tracks the entropy bound.
        bounds = compute_bounds(values)
        assert wavelet_trie.bitvector_bits() < 3 * bounds.entropy_bits + 8192


class TestGraphScenario:
    def test_snapshot_reconstruction_with_deletions(self):
        generator = EdgeStreamGenerator(initial_vertices=5, seed=13)
        edges = generator.generate(500)
        history = DynamicWaveletTrie(edges)
        # Retract 50 random events and verify against a list replay.
        rng = random.Random(5)
        mirror = list(edges)
        for _ in range(50):
            position = rng.randrange(len(mirror))
            assert history.delete(position) == mirror.pop(position)
        vertex = generator.vertex_uri(1)
        prefix = f"{vertex} ->"
        snapshot = dict(history.distinct_in_range(0, len(mirror), prefix=prefix))
        expected = Counter(value for value in mirror if value.startswith(prefix))
        assert snapshot == dict(expected)


class TestNumericScenario:
    def test_balanced_tree_over_large_universe(self):
        generator = IntegerSequenceGenerator(
            universe=2 ** 48, alphabet_size=100, clustered=True, seed=9
        )
        values = generator.generate(800)
        tree = BalancedDynamicWaveletTree(universe=2 ** 48, values=values, seed=21)
        assert tree.to_list() == values
        assert tree.max_height() <= tree.theoretical_height_bound(alpha=2.0)
        # Interleave updates and queries.
        tree.insert(42, 100)
        assert tree.access(100) == 42
        assert tree.delete(100) == 42
        counter = Counter(values)
        for value, count in list(counter.items())[:10]:
            assert tree.count(value) == count


class TestSpaceReportsIntegration:
    def test_reports_are_consistent_across_variants(self):
        values = UrlLogGenerator(domains=6, seed=55).generate(300)
        static = WaveletTrie(values)
        append_only = AppendOnlyWaveletTrie(values)
        dynamic = DynamicWaveletTrie(values)
        reports = {
            "static": wavelet_trie_space_report(static),
            "append_only": wavelet_trie_space_report(append_only),
            "dynamic": wavelet_trie_space_report(dynamic),
        }
        labels = {name: report.components["node_labels"] for name, report in reports.items()}
        # All variants store the same Patricia trie, hence identical label bits.
        assert len(set(labels.values())) == 1
        for report in reports.values():
            assert report.total_bits > 0
