"""Quick-mode run of the full-text search benchmark harness.

Runs ``benchmarks/bench_search.py`` at small sizes inside the test suite so
the harness (and its embedded differential gates -- every count and locate
answer compared against the ``str.find`` oracle, batched and scalar
backward-search intervals compared pattern by pattern, round-robin
``document`` extraction) cannot silently break.  No speedup thresholds are
asserted here: at ~4k corpus characters the batch amortisation has barely
kicked in and CI noise would make timing asserts flaky; the committed
``BENCH_search.json`` records the full-size numbers where the >= 2x
batched-over-scalar backward-search claim is checked.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_search.py"
)


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_search", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_search_quick_mode():
    bench = load_bench_module()
    # run() embeds the differential gates (FM counts/locations vs the
    # str.find oracle, scalar vs batched intervals, document extraction),
    # so completing without error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert payload["documents"] == 120
    assert payload["text_chars"] > 0
    count = payload["count"]
    assert count["fm_ms"] > 0 and count["naive_scan_ms"] > 0
    assert count["scan_chars_per_query"] == payload["text_chars"]
    backward = payload["backward_search"]
    assert backward["patterns"] == 128
    assert backward["batched_ms"] > 0 and backward["scalar_ms"] > 0
    # The sa_sample knob trades locate time for space monotonically in size.
    knob = payload["sa_sample_knob"]
    assert [row["sa_sample"] for row in knob] == [4, 32, 128]
    sizes = [row["index_bits"] for row in knob]
    assert sizes[0] > sizes[1] > sizes[2]


def test_full_size_payload_backs_the_batched_claim():
    """The committed BENCH_search.json must show batched backward search
    >= 2x over the scalar rank-pair loop (the PR's acceptance claim)."""
    import json

    bench_json = BENCH_PATH.parent.parent / "BENCH_search.json"
    payload = json.loads(bench_json.read_text())
    assert payload["quick"] is False
    assert payload["backward_search"]["speedup"] >= 2.0
