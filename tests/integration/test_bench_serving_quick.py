"""Quick-mode run of the serving benchmark harness.

Runs ``benchmarks/bench_serving.py`` at small sizes inside the test suite so
the harness (and its embedded differential gates -- byte-identical response
maps between the coalescing-on and coalescing-off replays, and the exact
row count after the concurrent write burst) cannot silently break.  No
throughput threshold is asserted here: at 20k rows and 8 clients the
scalar queries are too cheap for coalescing to pay off reliably under CI
noise; the committed ``BENCH_serving.json`` records the full-size numbers
(64 clients, n=1M) where the >=2x speedup claim is checked.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_serving.py"
)


def load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_serving", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_serving_quick_mode():
    bench = load_bench_module()
    # run() embeds the differential gates (responses compared byte-for-byte
    # across modes and repeats, write-burst row count asserted), so
    # completing without error is itself a correctness check.
    payload = bench.run(quick=True, repeats=1)
    assert payload["quick"] is True
    assert payload["elements"] == 20_000
    assert payload["clients"] == 8
    on, off = payload["coalescing_on"], payload["coalescing_off"]
    assert on["throughput_rps"] > 0 and off["throughput_rps"] > 0
    assert on["p50_ms"] > 0 and on["p99_ms"] >= on["p50_ms"]
    # Coalescing formed multi-request batches; the serial mode never does.
    assert on["max_batch"] > 1
    assert off["max_batch"] == 1 and off["mean_batch"] == 1.0
    burst = payload["write_burst"]
    assert burst["appends"] == 100
    # Write coalescing: strictly fewer bulk extends than appends.
    assert burst["bulk_extends"] < burst["appends"]
    assert burst["mean_appends_per_extend"] > 1
    # The multi-process section ran its sharded replay and its embedded
    # determinism gate (cluster frames byte-identical to single-process).
    multi = payload["multiprocess"]
    assert multi["byte_identical_to_single_process"] is True
    assert multi["cpus"] >= 1
    cluster = multi["workers_2"]
    assert cluster["workers"] == 2
    assert cluster["throughput_rps"] > 0
    assert cluster["export_s"] > 0 and cluster["spawn_s"] > 0
    # No throughput floor here: with fewer cores than workers the
    # scatter-gather hop costs more than the (nonexistent) parallelism
    # pays.  On such hosts the payload is flagged degraded and carries no
    # speedup claim at all; only multi-core hosts record the ratio.
    assert multi["degraded"] == (multi["cpus"] < 2)
    if multi["degraded"]:
        assert "speedup_vs_single_process" not in cluster
    else:
        assert cluster["speedup_vs_single_process"] > 0


def test_bench_serving_mix_is_normalised():
    bench = load_bench_module()
    assert abs(sum(bench.MIX.values()) - 1.0) < 1e-9
    assert set(bench.MIX) <= {"access", "rank", "select", "rank_prefix", "select_prefix"}
