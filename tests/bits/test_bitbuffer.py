"""Tests for the mutable BitBuffer."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.exceptions import OutOfBoundsError


class TestAppend:
    def test_append_single_bits(self):
        buffer = BitBuffer()
        for bit in [1, 0, 1, 1]:
            buffer.append(bit)
        assert len(buffer) == 4
        assert buffer.to_list() == [1, 0, 1, 1]
        assert buffer.ones == 3
        assert buffer.zeros == 1

    def test_append_bits_payload(self):
        buffer = BitBuffer([1, 0])
        buffer.append_bits(Bits.from_string("110"))
        assert buffer.to_bits().to01() == "10110"

    def test_append_run(self):
        buffer = BitBuffer()
        buffer.append_run(1, 3)
        buffer.append_run(0, 2)
        buffer.append_run(1, 0)
        assert buffer.to_bits().to01() == "11100"
        with pytest.raises(ValueError):
            buffer.append_run(1, -1)

    def test_append_int(self):
        buffer = BitBuffer()
        buffer.append_int(5, 4)
        assert buffer.to_bits().to01() == "0101"
        with pytest.raises(ValueError):
            buffer.append_int(16, 4)

    def test_extend_and_clear(self):
        buffer = BitBuffer()
        buffer.extend([1, 1, 0])
        buffer.extend(Bits.from_string("01"))
        assert buffer.to_bits().to01() == "11001"
        buffer.clear()
        assert len(buffer) == 0 and buffer.ones == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=300))
    def test_extend_matches_per_bit_append(self, bits):
        """The word-packed extend is semantically identical to appending each
        bit: same payload, same length, same popcount bookkeeping."""
        bulk = BitBuffer([1, 0])
        bulk.extend(iter(bits))  # generator: no len() shortcut available
        reference = BitBuffer([1, 0])
        for bit in bits:
            reference.append(bit)
        assert bulk.to_bits() == reference.to_bits()
        assert bulk.ones == reference.ones
        assert len(bulk) == len(reference)

    def test_extend_truthiness_matches_append(self):
        bulk = BitBuffer()
        bulk.extend(["x", 0, 2, None, True])
        assert bulk.to_bits().to01() == "10101"
        assert bulk.ones == 3


class TestQueries:
    def test_getitem(self):
        buffer = BitBuffer([0, 1, 1, 0])
        assert buffer[0] == 0 and buffer[1] == 1 and buffer[-1] == 0
        with pytest.raises(OutOfBoundsError):
            _ = buffer[4]

    def test_rank(self):
        bits = [0, 1, 1, 0, 1, 0, 0, 1]
        buffer = BitBuffer(bits)
        for pos in range(len(bits) + 1):
            assert buffer.rank(1, pos) == sum(bits[:pos])
            assert buffer.rank(0, pos) == pos - sum(bits[:pos])
        with pytest.raises(OutOfBoundsError):
            buffer.rank(1, 9)

    def test_select(self):
        bits = [0, 1, 1, 0, 1]
        buffer = BitBuffer(bits)
        assert buffer.select(1, 0) == 1
        assert buffer.select(1, 2) == 4
        assert buffer.select(0, 1) == 3
        with pytest.raises(OutOfBoundsError):
            buffer.select(1, 3)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=120))
    def test_matches_reference(self, bits):
        buffer = BitBuffer(bits)
        assert buffer.to_list() == bits
        assert buffer.ones == sum(bits)
        for pos in range(0, len(bits) + 1, max(1, len(bits) // 7)):
            assert buffer.rank(1, pos) == sum(bits[:pos])
