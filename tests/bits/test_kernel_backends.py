"""Cross-backend differential tests of the kernel backend contract.

Every dispatched contract primitive is run under both the python and the
numpy backend on random payloads *and* on the adversarial shapes that break
word-level code (empty, all-zeros, all-ones, a single set bit in every
position class, exact word/superblock boundaries), and the results are
asserted identical after container normalisation.  The python backend is the
correctness oracle (it is itself tested against naive references in
``test_kernel.py``), so agreement here certifies the numpy backend.

Also covers the backend-selection API: ``use_backend`` round-trips, unknown
names raise, and the ``REPRO_KERNEL_BACKEND`` fallback resolution is pure
and graceful.
"""

import random

import pytest

from repro.bits import kernel
from repro.bits.kernel import npkernel, pykernel

requires_numpy = pytest.mark.skipif(
    not npkernel.HAVE_NUMPY, reason="numpy not installed"
)

# Lengths hitting every alignment class: sub-byte, byte, sub-word, exact
# word, word+1, superblock (512 = 8 words) boundaries, and a multi-superblock
# size large enough to clear every small-input delegation threshold.
BOUNDARY_LENGTHS = [0, 1, 7, 8, 63, 64, 65, 127, 128, 511, 512, 513, 4096, 10_001]


def payloads(length):
    """Random plus adversarial ``(value, length)`` payloads of one length."""
    rng = random.Random(length * 1_000_003 + 7)
    out = []
    if length == 0:
        return [(0, 0)]
    out.append((rng.getrandbits(length), length))
    out.append((0, length))  # all zeros
    out.append(((1 << length) - 1, length))  # all ones
    for position in {0, length // 2, length - 1}:  # single set bit
        out.append((1 << (length - 1 - position), length))
    return out


def both(name, *args):
    """Run contract function ``name`` under both backends; return the pair."""
    py = getattr(pykernel, name)(*args)
    np_ = getattr(npkernel, name)(*args)
    return py, np_


def norm(value):
    if isinstance(value, tuple):
        return tuple(norm(part) for part in value)
    if isinstance(value, (int, bytes, str)):
        return value
    return kernel.as_int_list(value)


@requires_numpy
@pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
def test_packing_and_popcounts_agree(length):
    for value, n in payloads(length):
        words = pykernel.pack_value(value, n)
        bits = [(value >> (n - 1 - i)) & 1 for i in range(n)]
        py_pack, np_pack = both("pack_bits", bits)
        assert norm(py_pack) == norm(np_pack)
        assert py_pack[1] == np_pack[1] == n
        assert norm(py_pack[0]) == words
        py_pop, np_pop = both("popcount_words", words)
        assert py_pop == np_pop == value.bit_count()
        py_ones, np_ones = both("one_positions", words)
        assert norm(py_ones) == norm(np_ones)


@requires_numpy
@pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
def test_directories_agree(length):
    for value, n in payloads(length):
        words = pykernel.pack_value(value, n)
        py_dir, np_dir = both("build_rank_directory", words)
        assert norm(py_dir[0]) == norm(np_dir[0])  # super_cum
        assert py_dir[1] == np_dir[1]  # word_pop bytes
        assert norm(py_dir[2]) == norm(np_dir[2])  # word_cum
        py_cum, np_cum = both("cumulative_popcounts", py_dir[1], n)
        assert norm(py_cum) == norm(np_cum)
        for block_size in (1, 7, 63):
            py_blocks, np_blocks = both("block_popcounts", words, n, block_size)
            assert norm(py_blocks) == norm(np_blocks)


@requires_numpy
@pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
def test_runs_agree(length):
    for value, n in payloads(length):
        words = pykernel.pack_value(value, n)
        assert norm(both("run_lengths_of_value", value, n)[0]) == norm(
            both("run_lengths_of_value", value, n)[1]
        )
        py_runs, np_runs = both("runs_of_value", value, n)
        assert py_runs == np_runs
        py_wruns, np_wruns = both("runs_of_words", words, n)
        assert py_wruns == np_wruns == py_runs


@requires_numpy
@pytest.mark.parametrize("length", [l for l in BOUNDARY_LENGTHS if l])
def test_delete_positions_from_runs_agrees(length):
    """Run surgery under both backends: random and adversarial payloads
    (all-zeros and all-ones collapse to one run; single-bit payloads and
    word-boundary lengths stress the coalescing), with batch sizes on both
    sides of the numpy backend's small-input delegation threshold."""
    rng = random.Random(length * 7 + 3)
    for value, n in payloads(length):
        runs = pykernel.runs_of_value(value, n)
        for count in {1, min(31, n), min(64, n), n}:
            positions = sorted(rng.sample(range(n), count))
            py_kept, py_deleted = pykernel.delete_positions_from_runs(
                runs, positions
            )
            np_kept, np_deleted = npkernel.delete_positions_from_runs(
                runs, positions
            )
            assert py_kept == np_kept
            assert py_deleted == np_deleted
            # The oracle of the oracle: reconstruct from the flat bit list.
            bits = [(value >> (n - 1 - i)) & 1 for i in range(n)]
            assert py_deleted == [bits[p] for p in positions]
            survivors = [
                bit for i, bit in enumerate(bits) if i not in set(positions)
            ]
            flattened = [
                bit for bit, run_len in py_kept for _ in range(run_len)
            ]
            assert flattened == survivors
            # Normalised output: no empty runs, no equal adjacent bits.
            assert all(run_len > 0 for _, run_len in py_kept)
            assert all(
                py_kept[i][0] != py_kept[i + 1][0]
                for i in range(len(py_kept) - 1)
            )
    with pytest.raises(ValueError):
        npkernel.delete_positions_from_runs([(1, 4)], list(range(64)))
    with pytest.raises(ValueError):
        pykernel.delete_positions_from_runs([(1, 4)], [4])


@requires_numpy
@pytest.mark.parametrize("length", [l for l in BOUNDARY_LENGTHS if l])
def test_batch_rank_select_access_agree(length):
    rng = random.Random(length * 31 + 5)
    for value, n in payloads(length):
        words = pykernel.pack_value(value, n)
        word_pop = bytes(word.bit_count() for word in words)
        abs_cum, zero_cum = pykernel.cumulative_popcounts(word_pop, n)
        py_handle = pykernel.prepare_rank_select(words, n, abs_cum, zero_cum)
        np_handle = npkernel.prepare_rank_select(words, n, abs_cum, zero_cum)
        positions = [rng.randrange(n) for _ in range(64)]
        rank_positions = [rng.randrange(n + 1) for _ in range(64)] + [0, n]
        assert norm(
            pykernel.access_many_packed(py_handle, positions)
        ) == norm(npkernel.access_many_packed(np_handle, positions))
        for bit in (0, 1):
            assert norm(
                pykernel.rank_many_packed(py_handle, bit, rank_positions)
            ) == norm(npkernel.rank_many_packed(np_handle, bit, rank_positions))
            total = abs_cum[-1] if bit else zero_cum[-1]
            if not total:
                continue
            indexes = [rng.randrange(total) for _ in range(64)]
            indexes += [0, total - 1]
            assert norm(
                pykernel.select_many_packed(py_handle, bit, indexes)
            ) == norm(npkernel.select_many_packed(np_handle, bit, indexes))


@requires_numpy
def test_select_in_word_many_agrees():
    rng = random.Random(99)
    words = [rng.getrandbits(64) for _ in range(50)]
    words += [0xFFFFFFFFFFFFFFFF, 1, 1 << 63, 0x5555555555555555]
    for word in words:
        total = word.bit_count()
        for q in (1, 3, total):  # small (delegated) and full (vectorised)
            ks = sorted(rng.sample(range(total), min(q, total)))
            if not ks:
                continue
            py_res, np_res = both("select_in_word_many", word, ks)
            assert py_res == np_res
    with pytest.raises(ValueError):
        npkernel.select_in_word_many(1, list(range(40)))


@requires_numpy
def test_wavelet_build_survives_symbols_beyond_int64():
    """Symbols outside the int64 range cannot be vectorised; the numpy
    backend must fall back to the python partition instead of overflowing
    (regression)."""
    from repro.wavelet.wavelet_tree import WaveletTree

    big = 1 << 63
    start = kernel.active_backend()
    try:
        kernel.use_backend("numpy")
        tree = WaveletTree([big, 5, big], alphabet_size=big + 1)
        assert tree.access(0) == big
        assert tree.rank(big, 3) == 2
        assert tree.select(5, 0) == 1
    finally:
        kernel.use_backend(start)


@requires_numpy
def test_partition_by_pivot_agrees():
    rng = random.Random(123)
    for n in (0, 1, 63, 64, 1000):
        symbols = [rng.randrange(256) for _ in range(n)]
        py_sym = pykernel.prepare_symbols(symbols)
        np_sym = npkernel.prepare_symbols(symbols)
        for pivot in (0, 7, 128, 256):
            pw, plen, pleft, pright = pykernel.partition_by_pivot(py_sym, pivot)
            nw, nlen, nleft, nright = npkernel.partition_by_pivot(np_sym, pivot)
            assert plen == nlen
            assert norm(pw) == norm(nw)
            assert norm(pleft) == norm(nleft)
            assert norm(pright) == norm(nright)


@requires_numpy
def test_batch_queries_mirror_input_container():
    """Array in, array out; list in, list out (the numpy backend contract)."""
    import numpy as np

    rng = random.Random(5)
    n = 2048
    value = rng.getrandbits(n)
    words = pykernel.pack_value(value, n)
    abs_cum, zero_cum = pykernel.cumulative_popcounts(
        bytes(w.bit_count() for w in words), n
    )
    handle = npkernel.prepare_rank_select(words, n, abs_cum, zero_cum)
    as_list = [rng.randrange(n) for _ in range(40)]
    as_array = np.asarray(as_list, dtype=np.int64)
    assert isinstance(npkernel.rank_many_packed(handle, 1, as_list), list)
    assert isinstance(
        npkernel.rank_many_packed(handle, 1, as_array), np.ndarray
    )
    assert isinstance(npkernel.access_many_packed(handle, as_list), list)
    assert isinstance(
        npkernel.access_many_packed(handle, as_array), np.ndarray
    )


# ----------------------------------------------------------------------
# Backend selection API
# ----------------------------------------------------------------------
def test_use_backend_round_trips():
    start = kernel.active_backend()
    assert start in kernel.available_backends()
    previous = kernel.use_backend("python")
    assert previous == start
    assert kernel.active_backend() == "python"
    # Dispatch follows immediately: the active backend's module serves calls.
    assert kernel.pack_bits([1, 0, 1])[1] == 3
    restored = kernel.use_backend(start)
    assert restored == "python"
    assert kernel.active_backend() == start


def test_use_backend_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernel.use_backend("cython")
    with pytest.raises(ValueError):
        kernel.use_backend("")
    # A failed switch must not clobber the active backend.
    assert kernel.active_backend() in kernel.available_backends()


def test_use_backend_unavailable_raises():
    if "numpy" in kernel.available_backends():
        pytest.skip("numpy installed; unavailability covered by resolver test")
    with pytest.raises(RuntimeError, match="not available"):
        kernel.use_backend("numpy")


def test_env_var_resolution_is_graceful():
    resolve = kernel._resolve_default_backend
    full = {"python": None, "numpy": None}
    only_py = {"python": None}
    assert resolve(None, full) == ("numpy", "")
    assert resolve(None, only_py) == ("python", "")
    assert resolve("python", full) == ("python", "")
    assert resolve("NumPy", full) == ("numpy", "")
    name, warning = resolve("numpy", only_py)
    assert name == "python" and "falling back" in warning
    name, warning = resolve("fortran", full)
    assert name == "numpy" and "not a known kernel backend" in warning


@requires_numpy
def test_every_structure_accepts_ndarray_batches():
    """Numpy index/position arrays must be accepted (and answered as plain
    lists) by every structure's batch queries, not just PlainBitVector
    (regression: array pass-through in validate_select_indexes used to
    crash the non-plain select_many implementations on `if not indexes`)."""
    import numpy as np

    from repro.bitvector import (
        PlainBitVector,
        RLEBitVector,
        RRRBitVector,
    )
    from repro.wavelet.wavelet_tree import WaveletTree

    rng = random.Random(11)
    bits = [rng.randint(0, 1) for _ in range(2000)]
    ones = sum(bits)
    idx_arr = np.arange(0, ones, 7, dtype=np.int64)
    pos_arr = np.arange(0, 2000, 13, dtype=np.int64)
    for factory in (PlainBitVector, RRRBitVector, RLEBitVector):
        vector = factory(bits)
        expected = vector.select_many(1, idx_arr.tolist())
        got = kernel.as_int_list(vector.select_many(1, idx_arr))
        assert got == expected, factory.__name__
        assert kernel.as_int_list(
            vector.access_many(pos_arr)
        ) == vector.access_many(pos_arr.tolist()), factory.__name__

    data = [rng.randrange(8) for _ in range(500)]
    tree = WaveletTree(data, alphabet_size=8)
    count = tree.count(3)
    tree_idx = np.arange(count, dtype=np.int64)
    assert tree.select_many(3, tree_idx) == tree.select_many(
        3, tree_idx.tolist()
    )
    tree_pos = np.arange(0, 500, 11, dtype=np.int64)
    assert tree.access_many(tree_pos) == tree.access_many(tree_pos.tolist())
    assert tree.rank_many(3, tree_pos) == tree.rank_many(3, tree_pos.tolist())


def test_batch_queries_accept_any_iterable_container():
    """Sets, dict views, generators and ranges must work as batch inputs
    under every backend (regression: the numpy batch path used to crash on
    sized non-indexable containers like sets)."""
    from repro.bitvector.plain import PlainBitVector

    rng = random.Random(3)
    bits = [rng.randint(0, 1) for _ in range(4096)]
    vector = PlainBitVector(bits)
    queries = {i * 37 % 4096 for i in range(100)}  # a set: sized, unindexable
    start = kernel.active_backend()
    try:
        for backend in kernel.available_backends():
            kernel.use_backend(backend)
            assert sorted(vector.access_many(queries)) == sorted(
                vector.access_many(list(queries))
            )
            assert sorted(vector.rank_many(1, queries)) == sorted(
                vector.rank_many(1, list(queries))
            )
            assert list(vector.access_many(range(100))) == bits[:100]
            assert vector.access_many(pos for pos in [5, 9]) == [
                bits[5],
                bits[9],
            ]
            ones = vector.ones
            some = {idx * 13 % ones for idx in range(64)}
            assert sorted(vector.select_many(1, some)) == sorted(
                vector.select_many(1, list(some))
            )
    finally:
        kernel.use_backend(start)


@requires_numpy
def test_structures_follow_backend_switch():
    """A structure built under one backend answers identically after a
    switch (handles re-prepare lazily per backend)."""
    from repro.bitvector.plain import PlainBitVector

    rng = random.Random(17)
    bits = [rng.randint(0, 1) for _ in range(5000)]
    start = kernel.active_backend()
    try:
        kernel.use_backend("numpy")
        vector = PlainBitVector(bits)
        positions = [rng.randrange(5000) for _ in range(200)]
        under_numpy = vector.rank_many(1, positions)
        kernel.use_backend("python")
        under_python = vector.rank_many(1, positions)
        assert kernel.as_int_list(under_numpy) == under_python
        ones = vector.ones
        indexes = [rng.randrange(ones) for _ in range(200)]
        kernel.use_backend("numpy")
        sel_numpy = vector.select_many(1, indexes)
        kernel.use_backend("python")
        sel_python = vector.select_many(1, indexes)
        assert kernel.as_int_list(sel_numpy) == sel_python
    finally:
        kernel.use_backend(start)
