"""Unit tests for the word-level bitops kernel.

Every primitive is checked against a per-bit naive reference on random words
and payloads, including all the alignment edge cases (empty, sub-byte,
sub-word, word-straddling, multi-word).
"""

import random

import pytest

from repro.bits import kernel
from repro.bits.bitstring import Bits


def naive_bits_of_word(word, width=64):
    return [(word >> (64 - 1 - i)) & 1 for i in range(width)]


def naive_bits_of_value(value, length):
    return [(value >> (length - 1 - i)) & 1 for i in range(length)]


def random_payload(rng, length):
    return rng.getrandbits(length) if length else 0


class TestPacking:
    @pytest.mark.parametrize("length", list(range(0, 258)) + [1000, 4096, 10_001])
    def test_pack_value_roundtrip(self, length):
        rng = random.Random(length)
        value = random_payload(rng, length)
        words = kernel.pack_value(value, length)
        assert len(words) == (length + 63) // 64
        assert all(0 <= word <= kernel.WORD_MASK for word in words)
        assert kernel.unpack_value(words, length) == value
        # Left-aligned layout: bit i lives in word i//64 at in-word offset i%64.
        reference = naive_bits_of_value(value, length)
        for i in (0, 1, 63, 64, 65, length - 1):
            if 0 <= i < length:
                word = words[i // 64]
                assert (word >> (63 - (i % 64))) & 1 == reference[i]
        # The final word is zero-padded on the right.
        if length % 64:
            assert words[-1] & ((1 << (64 - length % 64)) - 1) == 0

    @pytest.mark.parametrize("length", [0, 1, 7, 8, 63, 64, 65, 128, 257, 999])
    def test_pack_iterable_matches_pack_value(self, length):
        rng = random.Random(length * 7 + 1)
        bits = [rng.randint(0, 1) for _ in range(length)]
        value = int("".join(map(str, bits)), 2) if bits else 0
        words, got_length = kernel.pack_iterable(bits)
        assert got_length == length
        # The active backend may return its native word container (e.g. a
        # numpy array); values must match the canonical list packer.
        assert kernel.as_int_list(words) == kernel.pack_value(value, length)

    def test_words_to_int_concatenates(self):
        words = [0x0123456789ABCDEF, 0xFEDCBA9876543210]
        assert kernel.words_to_int(words) == (words[0] << 64) | words[1]
        assert kernel.words_to_int([]) == 0


class TestInWordPrimitives:
    def test_select_in_word_against_naive(self):
        rng = random.Random(42)
        samples = [rng.getrandbits(64) for _ in range(200)]
        samples += [0x8000000000000000, 1, kernel.WORD_MASK, 0x5555555555555555]
        for word in samples:
            ones = [i for i, b in enumerate(naive_bits_of_word(word)) if b]
            for k, expected in enumerate(ones):
                assert kernel.select_in_word(word, k) == expected
            with pytest.raises(ValueError):
                kernel.select_in_word(word, len(ones))

    def test_select_zero_in_word_respects_width(self):
        rng = random.Random(43)
        for _ in range(100):
            width = rng.randint(1, 64)
            word = rng.getrandbits(width) << (64 - width)
            zeros = [
                i for i, b in enumerate(naive_bits_of_word(word, width)) if not b
            ]
            for k, expected in enumerate(zeros):
                assert kernel.select_zero_in_word(word, k, width) == expected
            # Padding bits past `width` must never surface as zeros.
            with pytest.raises(ValueError):
                kernel.select_zero_in_word(word, len(zeros), width)

    def test_rank_word_prefix(self):
        rng = random.Random(44)
        for _ in range(50):
            word = rng.getrandbits(64)
            reference = naive_bits_of_word(word)
            for offset in range(65):
                assert kernel.rank_word_prefix(word, offset) == sum(
                    reference[:offset]
                )

    def test_invert_word(self):
        word = 0xF0F0F0F0F0F0F0F0
        assert kernel.invert_word(word) == 0x0F0F0F0F0F0F0F0F
        # Only the top `width` bits are complemented; the rest stay zero.
        assert kernel.invert_word(word, 8) == 0x0F << 56


class TestRangedOperations:
    @pytest.mark.parametrize("length", [1, 63, 64, 65, 200, 512, 1000])
    def test_popcount_range(self, length):
        rng = random.Random(length)
        value = random_payload(rng, length)
        words = kernel.pack_value(value, length)
        reference = naive_bits_of_value(value, length)
        cases = [(0, length), (0, 0), (length, length)]
        cases += [
            tuple(sorted((rng.randint(0, length), rng.randint(0, length))))
            for _ in range(30)
        ]
        for start, stop in cases:
            assert kernel.popcount_range(words, start, stop) == sum(
                reference[start:stop]
            )
        assert kernel.popcount_words(words) == sum(reference)

    @pytest.mark.parametrize("length", [1, 8, 63, 64, 65, 129, 257, 640])
    def test_broadword_iter_words(self, length):
        rng = random.Random(length + 5)
        value = random_payload(rng, length)
        words = kernel.pack_value(value, length)
        reference = naive_bits_of_value(value, length)
        assert list(kernel.broadword_iter_words(words, 0, length)) == reference
        for _ in range(20):
            start, stop = sorted(
                (rng.randint(0, length), rng.randint(0, length))
            )
            assert (
                list(kernel.broadword_iter_words(words, start, stop))
                == reference[start:stop]
            )

    @pytest.mark.parametrize("length", [1, 9, 64, 65, 127, 128, 300])
    def test_extract_bits_value(self, length):
        rng = random.Random(length + 9)
        value = random_payload(rng, length)
        words = kernel.pack_value(value, length)
        bits = Bits(value, length)
        for _ in range(40):
            start, stop = sorted(
                (rng.randint(0, length), rng.randint(0, length))
            )
            assert (
                kernel.extract_bits_value(words, start, stop)
                == bits.slice(start, stop).value
            )

    @pytest.mark.parametrize("length", [0, 1, 64, 65, 200, 513])
    def test_one_positions(self, length):
        rng = random.Random(length + 13)
        value = random_payload(rng, length)
        words = kernel.pack_value(value, length)
        reference = [
            i for i, b in enumerate(naive_bits_of_value(value, length)) if b
        ]
        assert kernel.one_positions(words) == reference

    @pytest.mark.parametrize("length", [0, 1, 2, 63, 64, 65, 257, 1000])
    def test_run_lengths_of_value(self, length):
        rng = random.Random(length + 17)
        for _ in range(10):
            value = random_payload(rng, length)
            reference_bits = naive_bits_of_value(value, length)
            expected = []
            for bit in reference_bits:
                if expected and expected[-1][0] == bit:
                    expected[-1][1] += 1
                else:
                    expected.append([bit, 1])
            lengths = kernel.run_lengths_of_value(value, length)
            assert lengths == [run_len for _, run_len in expected]
            assert sum(lengths) == length


class TestRankDirectory:
    @pytest.mark.parametrize("n_words", [0, 1, 7, 8, 9, 16, 33])
    def test_directory_invariants(self, n_words):
        rng = random.Random(n_words)
        words = [rng.getrandbits(64) for _ in range(n_words)]
        super_cum, word_pop, word_cum = kernel.build_rank_directory(words)
        assert len(super_cum) == (n_words + 7) // 8 + 1
        assert len(word_pop) == n_words
        assert len(word_cum) == n_words + 1
        assert super_cum[-1] == sum(word.bit_count() for word in words)
        for index, word in enumerate(words):
            assert word_pop[index] == word.bit_count()
            # Two-level rank identity: ones before word = superblock sample
            # plus the in-superblock cumulative byte.
            assert super_cum[index >> 3] + word_cum[index] == sum(
                w.bit_count() for w in words[:index]
            )

    def test_select_one_in_words(self):
        rng = random.Random(99)
        words = [rng.getrandbits(64) for _ in range(20)]
        super_cum, word_pop, _ = kernel.build_rank_directory(words)
        reference = kernel.one_positions(words)
        for idx in range(0, len(reference), 17):
            assert (
                kernel.select_one_in_words(words, super_cum, word_pop, idx)
                == reference[idx]
            )
