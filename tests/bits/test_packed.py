"""Tests for PackedIntVector."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.packed import PackedIntVector
from repro.exceptions import OutOfBoundsError


class TestPackedIntVector:
    def test_basic_append_and_get(self):
        vector = PackedIntVector(5, [1, 31, 0, 17])
        assert len(vector) == 4
        assert vector.to_list() == [1, 31, 0, 17]

    def test_zero_width(self):
        vector = PackedIntVector(0, [0, 0, 0])
        assert len(vector) == 3
        assert vector[1] == 0

    def test_word_boundary_crossing(self):
        # width 7 guarantees values straddling 64-bit word boundaries
        values = [(i * 37) % 128 for i in range(100)]
        vector = PackedIntVector(7, values)
        assert vector.to_list() == values

    def test_full_width(self):
        values = [0, (1 << 64) - 1, 12345678901234567890 % (1 << 64)]
        vector = PackedIntVector(64, values)
        assert vector.to_list() == values

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            PackedIntVector(3, [8])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PackedIntVector(65)
        with pytest.raises(ValueError):
            PackedIntVector(-1)

    def test_out_of_range_access(self):
        vector = PackedIntVector(4, [1, 2])
        with pytest.raises(OutOfBoundsError):
            _ = vector[2]
        assert vector[-1] == 2  # negative indexing supported

    def test_from_values_picks_minimal_width(self):
        vector = PackedIntVector.from_values([3, 7, 0])
        assert vector.width == 3
        assert vector.to_list() == [3, 7, 0]
        assert PackedIntVector.from_values([]).width == 0

    def test_size_in_bits(self):
        vector = PackedIntVector(8, list(range(64)))
        assert vector.size_in_bits() == 8 * 64  # 512 payload bits in 8 words

    @given(st.integers(min_value=1, max_value=33), st.data())
    def test_random_roundtrip(self, width, data):
        values = data.draw(
            st.lists(st.integers(min_value=0, max_value=(1 << width) - 1), max_size=150)
        )
        vector = PackedIntVector(width, values)
        assert vector.to_list() == values
        for index in range(len(values)):
            assert vector[index] == values[index]
