"""Tests for the immutable Bits value type."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.bitstring import Bits
from repro.exceptions import OutOfBoundsError


bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=200)


class TestConstruction:
    def test_empty(self):
        empty = Bits.empty()
        assert len(empty) == 0
        assert not empty
        assert empty.to01() == ""

    def test_from_string(self):
        bits = Bits.from_string("0100")
        assert len(bits) == 4
        assert bits.to01() == "0100"
        assert bits[0] == 0 and bits[1] == 1 and bits[2] == 0 and bits[3] == 0

    def test_from_string_with_separators(self):
        assert Bits.from_string("01_00 11") == Bits.from_string("010011")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Bits.from_string("01x0")

    def test_from_iterable(self):
        assert Bits.from_iterable([1, 0, 1]).to01() == "101"
        assert Bits.from_iterable([]).to01() == ""
        assert Bits.from_iterable([True, False]).to01() == "10"

    def test_from_bytes_roundtrip(self):
        data = b"\x00\xffab"
        bits = Bits.from_bytes(data)
        assert len(bits) == 32
        assert bits.to_bytes() == data

    def test_from_int(self):
        assert Bits.from_int(5, 4).to01() == "0101"

    def test_zeros_ones(self):
        assert Bits.zeros(5).to01() == "00000"
        assert Bits.ones(3).to01() == "111"

    def test_leading_zeros_preserved(self):
        bits = Bits.from_string("0001")
        assert len(bits) == 4
        assert bits != Bits.from_string("001")
        assert bits != Bits.from_string("1")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Bits(8, 3)  # 8 does not fit in 3 bits
        with pytest.raises(ValueError):
            Bits(-1, 4)
        with pytest.raises(ValueError):
            Bits(0, -1)


class TestAccess:
    def test_getitem_and_negative_index(self):
        bits = Bits.from_string("10110")
        assert bits[0] == 1
        assert bits[4] == 0
        assert bits[-1] == 0
        assert bits[-2] == 1

    def test_getitem_out_of_range(self):
        bits = Bits.from_string("101")
        with pytest.raises(OutOfBoundsError):
            _ = bits[3]

    def test_slicing(self):
        bits = Bits.from_string("1011001")
        assert bits[2:5].to01() == "110"
        assert bits.slice(0, 0).to01() == ""
        assert bits.prefix(3).to01() == "101"
        assert bits.suffix_from(4).to01() == "001"
        assert bits[:].to01() == "1011001"

    def test_iteration(self):
        assert list(Bits.from_string("0110")) == [0, 1, 1, 0]

    def test_counts(self):
        bits = Bits.from_string("0110110")
        assert bits.popcount() == 4
        assert bits.count(1) == 4
        assert bits.count(0) == 3


class TestOperations:
    def test_concatenation(self):
        assert (Bits.from_string("01") + Bits.from_string("001")).to01() == "01001"
        assert (Bits.empty() + Bits.from_string("1")).to01() == "1"

    def test_appended(self):
        assert Bits.from_string("01").appended(1).to01() == "011"

    def test_startswith(self):
        bits = Bits.from_string("00101")
        assert bits.startswith(Bits.empty())
        assert bits.startswith(Bits.from_string("001"))
        assert not bits.startswith(Bits.from_string("01"))
        assert not bits.startswith(Bits.from_string("001011"))

    def test_lcp_length(self):
        a = Bits.from_string("001011")
        assert a.lcp_length(Bits.from_string("001100")) == 3
        assert a.lcp_length(Bits.from_string("1")) == 0
        assert a.lcp_length(a) == 6
        assert a.lcp_length(Bits.from_string("0010")) == 4
        assert Bits.empty().lcp_length(a) == 0

    def test_equality_and_hash(self):
        a = Bits.from_string("0101")
        b = Bits.from_iterable([0, 1, 0, 1])
        assert a == b and hash(a) == hash(b)
        assert a != Bits.from_string("101")
        assert a != "0101"

    def test_lexicographic_order(self):
        assert Bits.from_string("0") < Bits.from_string("1")
        assert Bits.from_string("01") < Bits.from_string("010")
        assert Bits.from_string("001") < Bits.from_string("01")
        assert Bits.from_string("1") > Bits.from_string("0111")
        assert Bits.from_string("01") <= Bits.from_string("01")
        values = [Bits.from_string(s) for s in ["1", "0", "01", "001", "11"]]
        assert [v.to01() for v in sorted(values)] == ["0", "001", "01", "1", "11"]


class TestProperties:
    @given(bit_lists)
    def test_roundtrip_through_iterable(self, bits):
        value = Bits.from_iterable(bits)
        assert list(value) == bits
        assert len(value) == len(bits)
        assert value.popcount() == sum(bits)

    @given(bit_lists, bit_lists)
    def test_concatenation_matches_lists(self, left, right):
        combined = Bits.from_iterable(left) + Bits.from_iterable(right)
        assert list(combined) == left + right

    @given(bit_lists, st.integers(min_value=0, max_value=220),
           st.integers(min_value=0, max_value=220))
    def test_slice_matches_list_slice(self, bits, start, stop):
        value = Bits.from_iterable(bits)
        assert list(value.slice(start, stop)) == bits[start:stop] if start <= stop \
            else list(value.slice(start, stop)) == []

    @given(bit_lists, bit_lists)
    def test_lcp_is_symmetric_and_correct(self, left, right):
        a, b = Bits.from_iterable(left), Bits.from_iterable(right)
        lcp = a.lcp_length(b)
        assert lcp == b.lcp_length(a)
        assert left[:lcp] == right[:lcp]
        if lcp < min(len(left), len(right)):
            assert left[lcp] != right[lcp]

    @given(bit_lists)
    def test_string_roundtrip(self, bits):
        value = Bits.from_iterable(bits)
        assert Bits.from_string(value.to01()) == value
