"""Tests for the integer codecs (unary, gamma, delta) and combinatorial coding."""

import pytest
from hypothesis import given, strategies as st

from repro.bits.codes import (
    BitReader,
    BitWriter,
    combinatorial_rank,
    combinatorial_unrank,
    decode_delta,
    decode_gamma,
    decode_unary,
    delta_code_length,
    encode_delta,
    encode_gamma,
    encode_unary,
    gamma_code_length,
    offset_width,
    unary_code_length,
)
from repro.exceptions import EncodingError, OutOfBoundsError


class TestWriterReader:
    def test_write_read_ints(self):
        writer = BitWriter()
        writer.write_int(5, 4)
        writer.write_int(0, 3)
        writer.write_int(1, 1)
        reader = BitReader(writer.to_bits())
        assert reader.read_int(4) == 5
        assert reader.read_int(3) == 0
        assert reader.read_int(1) == 1
        assert reader.remaining() == 0

    def test_write_int_overflow(self):
        writer = BitWriter()
        with pytest.raises(EncodingError):
            writer.write_int(8, 3)

    def test_read_past_end(self):
        reader = BitReader(BitWriter().to_bits())
        with pytest.raises(OutOfBoundsError):
            reader.read_bit()

    def test_seek(self):
        writer = BitWriter()
        writer.write_int(0b1011, 4)
        reader = BitReader(writer.to_bits())
        reader.seek(2)
        assert reader.read_bit() == 1
        with pytest.raises(OutOfBoundsError):
            reader.seek(9)


class TestUnary:
    def test_known_values(self):
        assert encode_unary([0]).to01() == "1"
        assert encode_unary([3]).to01() == "0001"
        assert encode_unary([0, 2]).to01() == "1001"

    def test_roundtrip(self):
        values = [0, 1, 5, 2, 0, 7]
        assert decode_unary(encode_unary(values), len(values)) == values

    def test_lengths(self):
        assert unary_code_length(0) == 1
        assert unary_code_length(4) == 5
        with pytest.raises(EncodingError):
            unary_code_length(-1)


class TestGammaDelta:
    def test_gamma_known_values(self):
        assert encode_gamma([1]).to01() == "1"
        assert encode_gamma([2]).to01() == "010"
        assert encode_gamma([5]).to01() == "00101"

    def test_gamma_rejects_zero(self):
        with pytest.raises(EncodingError):
            encode_gamma([0])

    def test_delta_known_values(self):
        assert encode_delta([1]).to01() == "1"
        # delta(5): gamma(3)="011" then 2 low bits "01"
        assert encode_delta([5]).to01() == "01101"

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
    def test_gamma_roundtrip(self, values):
        assert decode_gamma(encode_gamma(values), len(values)) == values

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
    def test_delta_roundtrip(self, values):
        assert decode_delta(encode_delta(values), len(values)) == values

    @given(st.integers(min_value=1, max_value=10**9))
    def test_code_lengths_match_encodings(self, value):
        assert gamma_code_length(value) == len(encode_gamma([value]))
        assert delta_code_length(value) == len(encode_delta([value]))

    @given(st.integers(min_value=2, max_value=10**9))
    def test_delta_shorter_than_gamma_for_large_values(self, value):
        # Asymptotically delta wins; for all values >= 32 it is never longer.
        if value >= 32:
            assert delta_code_length(value) <= gamma_code_length(value)


class TestCombinatorial:
    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_rank_unrank_roundtrip(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        ones = bin(value).count("1")
        rank = combinatorial_rank(value, width, ones)
        assert 0 <= rank
        assert combinatorial_unrank(rank, width, ones) == value

    def test_offset_width_extremes(self):
        assert offset_width(10, 0) == 0
        assert offset_width(10, 10) == 0
        assert offset_width(4, 2) == 3  # C(4,2)=6 -> 3 bits

    def test_rank_is_lexicographic(self):
        # All 3-bit blocks with two ones, in MSB-first numeric order:
        # 011 (3), 101 (5), 110 (6) -> ranks 2, 1, 0?  The enumeration is by
        # position of the ones left-to-right; verify it is a bijection and
        # strictly monotone in some consistent order.
        blocks = [0b011, 0b101, 0b110]
        ranks = [combinatorial_rank(b, 3, 2) for b in blocks]
        assert sorted(ranks) == [0, 1, 2]
        for block, rank in zip(blocks, ranks):
            assert combinatorial_unrank(rank, 3, 2) == block
