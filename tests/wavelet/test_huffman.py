"""Tests for Huffman codes and the Huffman-shaped Wavelet Tree."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.entropy import empirical_entropy
from repro.exceptions import OutOfBoundsError, ValueNotFoundError
from repro.wavelet import HuffmanWaveletTree, huffman_codes


class TestHuffmanCodes:
    def test_empty_and_singleton(self):
        assert huffman_codes({}) == {}
        codes = huffman_codes({"a": 10})
        assert len(codes) == 1 and len(codes["a"]) == 1

    def test_codes_are_prefix_free(self):
        frequencies = {"a": 45, "b": 13, "c": 12, "d": 16, "e": 9, "f": 5}
        codes = huffman_codes(frequencies)
        assert len(codes) == 6
        for x in codes:
            for y in codes:
                if x != y:
                    assert not codes[x].startswith(codes[y])

    def test_frequent_symbols_get_shorter_codes(self):
        frequencies = {"rare": 1, "common": 1000, "mid": 50}
        codes = huffman_codes(frequencies)
        assert len(codes["common"]) <= len(codes["mid"]) <= len(codes["rare"])

    def test_average_length_close_to_entropy(self):
        rng = random.Random(1)
        data = [rng.choice("aaaaabbbccd") for _ in range(2000)]
        counts = Counter(data)
        codes = huffman_codes(counts)
        average = sum(counts[s] * len(codes[s]) for s in counts) / len(data)
        entropy = empirical_entropy(data)
        assert entropy <= average < entropy + 1

    @given(st.dictionaries(st.text(min_size=1, max_size=3), st.integers(min_value=1, max_value=1000), min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_property_prefix_free_and_complete(self, frequencies):
        codes = huffman_codes(frequencies)
        assert set(codes) == set(frequencies)
        items = list(codes.values())
        for i, x in enumerate(items):
            for y in items[i + 1:]:
                assert not x.startswith(y) and not y.startswith(x)


class TestHuffmanWaveletTree:
    def test_known_sequence(self):
        data = list("abracadabra")
        tree = HuffmanWaveletTree(data)
        assert tree.to_list() == data
        assert tree.count("a") == 5
        assert tree.rank("b", 9) == 2
        assert tree.select("r", 1) == 9
        assert tree.rank("z", 5) == 0
        with pytest.raises(ValueNotFoundError):
            tree.select("z", 0)
        with pytest.raises(OutOfBoundsError):
            tree.select("a", 5)

    def test_single_distinct_symbol(self):
        tree = HuffmanWaveletTree(["x"] * 10)
        assert tree.access(7) == "x"
        assert tree.rank("x", 10) == 10
        assert tree.select("x", 9) == 9

    def test_skewed_tree_is_shallower_than_balanced_for_skewed_data(self):
        rng = random.Random(6)
        data = [rng.choice("a" * 90 + "bcdefgh") for _ in range(1500)]
        tree = HuffmanWaveletTree(data)
        codes = tree.codes
        weighted_depth = sum(len(codes[s]) for s in data) / len(data)
        assert weighted_depth < 3  # balanced over 8 symbols would be 3

    @given(st.lists(st.sampled_from("abcde"), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_against_list(self, data):
        if not data:
            return
        tree = HuffmanWaveletTree(data)
        assert tree.to_list() == data
        for symbol in set(data):
            occurrences = [i for i, x in enumerate(data) if x == symbol]
            assert tree.count(symbol) == len(occurrences)
            assert tree.select(symbol, len(occurrences) - 1) == occurrences[-1]
            for pos in (0, len(data) // 2, len(data)):
                assert tree.rank(symbol, pos) == data[:pos].count(symbol)


class TestHuffmanBatchAPIs:
    """The batch methods (docs/API.md convention) vs their scalar twins.

    ``access_many``/``rank_many``/``select_many`` must return exactly what
    the scalar loop returns, preserve input order, and validate the whole
    batch before touching the tree (all-or-nothing).
    """

    DATA = list("abracadabra simsalabim abracadabra")

    def test_access_many_matches_scalar(self):
        tree = HuffmanWaveletTree(self.DATA)
        positions = [0, 5, 3, len(self.DATA) - 1, 5, 12]
        assert tree.access_many(positions) == [tree.access(p) for p in positions]
        assert tree.access_many([]) == []
        assert tree.access_many(range(3)) == [tree.access(p) for p in range(3)]

    def test_rank_many_matches_scalar(self):
        tree = HuffmanWaveletTree(self.DATA)
        positions = [0, len(self.DATA), 7, 7, 3]
        for symbol in ["a", "b", " ", "z"]:  # incl. an absent symbol
            assert tree.rank_many(symbol, positions) == [
                tree.rank(symbol, p) for p in positions
            ]
        assert tree.rank_many("a", []) == []

    def test_select_many_matches_scalar(self):
        tree = HuffmanWaveletTree(self.DATA)
        indexes = [0, tree.count("a") - 1, 1, 1]
        assert tree.select_many("a", indexes) == [
            tree.select("a", i) for i in indexes
        ]
        assert tree.select_many("a", []) == []

    def test_batch_validation_is_all_or_nothing(self):
        tree = HuffmanWaveletTree(self.DATA)
        size = len(self.DATA)
        with pytest.raises(OutOfBoundsError):
            tree.access_many([0, size])  # access: pos < size
        with pytest.raises(OutOfBoundsError):
            tree.rank_many("a", [0, size + 1])  # rank: pos <= size
        with pytest.raises(OutOfBoundsError):
            tree.select_many("a", [0, tree.count("a")])
        with pytest.raises(ValueNotFoundError):
            tree.select_many("z", [0])

    def test_single_symbol_tree_batches(self):
        tree = HuffmanWaveletTree(["x"] * 6)
        assert tree.access_many([0, 5, 2]) == ["x", "x", "x"]
        assert tree.rank_many("x", [0, 3, 6]) == [0, 3, 6]
        assert tree.rank_many("y", [2, 4]) == [0, 0]
        assert tree.select_many("x", [5, 0]) == [5, 0]

    @given(
        data=st.lists(st.sampled_from("abcde "), min_size=1, max_size=120),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_batches_match_scalar(self, data, seed):
        rng = random.Random(seed)
        tree = HuffmanWaveletTree(data)
        positions = [rng.randrange(len(data)) for _ in range(10)]
        assert tree.access_many(positions) == [tree.access(p) for p in positions]
        rank_positions = [rng.randint(0, len(data)) for _ in range(10)]
        for symbol in "abcde z":
            assert tree.rank_many(symbol, rank_positions) == [
                tree.rank(symbol, p) for p in rank_positions
            ]
        for symbol in set(data):
            total = tree.count(symbol)
            indexes = [rng.randrange(total) for _ in range(min(6, total))]
            assert tree.select_many(symbol, indexes) == [
                tree.select(symbol, i) for i in indexes
            ]
