"""Tests for the fixed-alphabet dynamic Wavelet Tree and the Section 6
probabilistically balanced dynamic Wavelet Tree (Theorem 6.2)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import OutOfBoundsError, ValueNotFoundError
from repro.wavelet import BalancedDynamicWaveletTree, FixedAlphabetDynamicWaveletTree
from repro.workloads import IntegerSequenceGenerator


class TestFixedAlphabetDynamicWaveletTree:
    def test_append_access_rank_select(self):
        tree = FixedAlphabetDynamicWaveletTree(["red", "green", "blue"])
        data = ["red", "blue", "red", "green", "blue", "red"]
        for value in data:
            tree.append(value)
        assert tree.to_list() == data
        assert tree.rank("red", 4) == 2
        assert tree.select("blue", 1) == 4
        assert tree.count("green") == 1

    def test_insert_delete(self):
        tree = FixedAlphabetDynamicWaveletTree(["a", "b"], values=["a", "a", "b"])
        tree.insert("b", 1)
        assert tree.to_list() == ["a", "b", "a", "b"]
        assert tree.delete(2) == "a"
        assert tree.to_list() == ["a", "b", "b"]

    def test_unknown_symbol_rejected(self):
        """The limitation the Wavelet Trie removes: the alphabet cannot grow."""
        tree = FixedAlphabetDynamicWaveletTree(["a", "b"])
        tree.append("a")
        with pytest.raises(ValueNotFoundError):
            tree.append("c")
        with pytest.raises(ValueNotFoundError):
            tree.rank("c", 1)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            FixedAlphabetDynamicWaveletTree([])

    def test_randomised_against_list(self):
        rng = random.Random(12)
        alphabet = [f"s{i}" for i in range(9)]
        tree = FixedAlphabetDynamicWaveletTree(alphabet)
        reference = []
        for _ in range(400):
            action = rng.random()
            if action < 0.6 or not reference:
                value = rng.choice(alphabet)
                position = rng.randint(0, len(reference))
                tree.insert(value, position)
                reference.insert(position, value)
            else:
                position = rng.randrange(len(reference))
                assert tree.delete(position) == reference.pop(position)
        assert tree.to_list() == reference
        for value in alphabet:
            assert tree.count(value) == reference.count(value)


class TestBalancedDynamicWaveletTree:
    def test_basic_sequence_operations(self):
        tree = BalancedDynamicWaveletTree(universe=2 ** 20)
        data = [5, 1000, 5, 99999, 5, 1000]
        for value in data:
            tree.append(value)
        assert tree.to_list() == data
        assert tree.rank(5, 5) == 3
        assert tree.select(1000, 1) == 5
        assert tree.count(99999) == 1
        tree.insert(7, 0)
        assert tree.access(0) == 7
        assert tree.delete(0) == 7
        assert tree.to_list() == data

    def test_out_of_universe_rejected(self):
        tree = BalancedDynamicWaveletTree(universe=100)
        with pytest.raises(OutOfBoundsError):
            tree.append(100)
        with pytest.raises(OutOfBoundsError):
            tree.rank(-1, 0)

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            BalancedDynamicWaveletTree(universe=1)

    def test_hash_is_invertible(self):
        tree = BalancedDynamicWaveletTree(universe=2 ** 32, seed=5)
        rng = random.Random(8)
        values = [rng.randrange(2 ** 32) for _ in range(50)]
        for value in values:
            assert tree._unhash(tree._hash(value)) == value

    def test_theorem_6_2_height_bound(self):
        """The observed height stays near (alpha+2) log|Sigma| despite a 2^64 universe."""
        generator = IntegerSequenceGenerator(
            universe=2 ** 64, alphabet_size=128, clustered=True, seed=3
        )
        values = generator.generate(1200)
        tree = BalancedDynamicWaveletTree(universe=2 ** 64, values=values, seed=11)
        distinct = tree.distinct_count()
        assert distinct > 64
        bound = tree.theoretical_height_bound(alpha=2.0)
        assert tree.max_height() <= bound
        # And dramatically below the universe depth of 64.
        assert tree.max_height() <= 32

    def test_different_seeds_same_answers(self):
        values = [3, 7, 3, 11, 3]
        for seed in (1, 2, 3):
            tree = BalancedDynamicWaveletTree(universe=64, values=values, seed=seed)
            assert tree.to_list() == values
            assert tree.count(3) == 3

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40 - 1), max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip_huge_universe(self, values):
        tree = BalancedDynamicWaveletTree(universe=2 ** 40, seed=9)
        for value in values:
            tree.append(value)
        assert tree.to_list() == values
        for value in set(values):
            assert tree.count(value) == values.count(value)

    def test_pathological_alphabet_stays_balanced(self):
        """Powers of two (a caterpillar for the raw trie) are balanced once hashed.

        The raw MSB-first encoding of {2^k} produces a trie of height ~|Sigma|
        because every value branches off the all-zeros spine at its own depth;
        the hashed tree must stay near (alpha+2) log|Sigma| instead.
        """
        import random as _random

        rng = _random.Random(7)
        alphabet = [1 << k for k in range(60)]
        values = [rng.choice(alphabet) for _ in range(1500)]
        tree = BalancedDynamicWaveletTree(universe=2 ** 64, values=values, seed=5)
        assert tree.to_list() == values
        assert tree.max_height() <= tree.theoretical_height_bound(alpha=2.0)
        assert tree.max_height() < 30  # far below the |Sigma| ~ 60 raw height

    def test_pathological_alphabet_unbalanced_without_hashing(self):
        """The same alphabet on the raw codec degenerates (the Section 6 motivation)."""
        import random as _random

        from repro.core.dynamic import DynamicWaveletTrie
        from repro.tries.binarize import FixedWidthIntCodec

        rng = _random.Random(7)
        alphabet = [1 << k for k in range(60)]
        values = [rng.choice(alphabet) for _ in range(400)]
        trie = DynamicWaveletTrie(values, codec=FixedWidthIntCodec(64))
        heights = [trie.height_of(value) for value in set(values)]
        assert max(heights) >= len(set(values)) - 1
