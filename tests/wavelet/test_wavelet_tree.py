"""Tests for the classic Wavelet Tree, including the paper's Figure 1 example."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import OutOfBoundsError
from repro.wavelet import WaveletTree


class TestFigure1:
    """The worked example of Figure 1: 'abracadabra' over {a, b, c, d, r}."""

    SYMBOLS = {"a": 0, "b": 1, "c": 2, "d": 3, "r": 4}
    TEXT = "abracadabra"

    def build(self):
        return WaveletTree([self.SYMBOLS[c] for c in self.TEXT], alphabet_size=5)

    def test_access_reconstructs_text(self):
        tree = self.build()
        inverse = {v: k for k, v in self.SYMBOLS.items()}
        assert "".join(inverse[tree.access(i)] for i in range(len(self.TEXT))) == self.TEXT

    def test_root_bitvector_matches_figure(self):
        # Figure 1 splits {a, b} (left) vs {c, d, r} (right); with the
        # balanced split over 5 symbols mid = 2, so symbols >= 2 go right:
        # a b r a c a d a b r a  ->  0 0 1 0 1 0 1 0 0 1 0
        tree = self.build()
        root_bits = [tree._root.bitvector.access(i) for i in range(len(self.TEXT))]
        assert root_bits == [0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0]

    def test_counts_match_figure(self):
        tree = self.build()
        counts = Counter(self.TEXT)
        for char, symbol in self.SYMBOLS.items():
            assert tree.count(symbol) == counts[char]

    def test_rank_select_examples(self):
        tree = self.build()
        a, r = self.SYMBOLS["a"], self.SYMBOLS["r"]
        assert tree.rank(a, 11) == 5
        assert tree.rank(a, 1) == 1
        assert tree.select(a, 0) == 0
        assert tree.select(a, 4) == 10
        assert tree.select(r, 1) == 9
        assert tree.rank(r, 3) == 1


class TestWaveletTreeGeneral:
    def test_empty(self):
        tree = WaveletTree([])
        assert len(tree) == 0
        assert tree.rank(0, 0) == 0

    def test_single_symbol_alphabet(self):
        tree = WaveletTree([0, 0, 0], alphabet_size=1)
        assert tree.access(1) == 0
        assert tree.rank(0, 3) == 3
        assert tree.select(0, 2) == 2

    def test_alphabet_size_validation(self):
        with pytest.raises(ValueError):
            WaveletTree([0, 5], alphabet_size=5)
        with pytest.raises(ValueError):
            WaveletTree([-1])
        with pytest.raises(ValueError):
            WaveletTree([0], bitvector="nope")

    def test_symbol_out_of_alphabet(self):
        tree = WaveletTree([0, 1, 2], alphabet_size=3)
        with pytest.raises(OutOfBoundsError):
            tree.rank(3, 1)
        with pytest.raises(OutOfBoundsError):
            tree.select(3, 0)

    def test_rank_of_absent_symbol_in_alphabet(self):
        tree = WaveletTree([0, 0, 2], alphabet_size=4)
        assert tree.rank(1, 3) == 0
        assert tree.rank(3, 3) == 0

    def test_height_is_logarithmic(self):
        tree = WaveletTree(list(range(64)), alphabet_size=64)
        assert tree.height() == 6

    def test_bitvector_kinds_agree(self):
        rng = random.Random(2)
        data = [rng.randrange(12) for _ in range(300)]
        trees = {kind: WaveletTree(data, bitvector=kind) for kind in ("rrr", "plain", "rle")}
        for pos in range(0, 300, 37):
            values = {kind: tree.access(pos) for kind, tree in trees.items()}
            assert len(set(values.values())) == 1

    def test_range_count(self):
        rng = random.Random(3)
        data = [rng.randrange(20) for _ in range(400)]
        tree = WaveletTree(data)
        for start, stop, low, high in [(0, 400, 0, 20), (50, 300, 3, 9), (100, 101, 5, 6), (10, 10, 0, 20)]:
            expected = sum(1 for x in data[start:stop] if low <= x < high)
            assert tree.range_count(start, stop, low, high) == expected

    def test_quantile(self):
        rng = random.Random(4)
        data = [rng.randrange(50) for _ in range(300)]
        tree = WaveletTree(data)
        for start, stop in [(0, 300), (17, 230), (100, 120)]:
            window = sorted(data[start:stop])
            for k in (0, len(window) // 2, len(window) - 1):
                assert tree.quantile(start, stop, k) == window[k]
        with pytest.raises(OutOfBoundsError):
            tree.quantile(10, 20, 10)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_against_list(self, data):
        tree = WaveletTree(data, alphabet_size=31)
        assert tree.to_list() == data
        for symbol in set(data):
            assert tree.count(symbol) == data.count(symbol)
            occurrences = [i for i, x in enumerate(data) if x == symbol]
            for idx in range(0, len(occurrences), max(1, len(occurrences) // 3)):
                assert tree.select(symbol, idx) == occurrences[idx]

    def test_size_reporting(self):
        data = [i % 8 for i in range(1000)]
        tree = WaveletTree(data)
        assert tree.size_in_bits() > 0
