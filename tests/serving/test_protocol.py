"""The NDJSON wire protocol: decoding, validation, deterministic encoding."""

import json

import pytest

from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.serving.protocol import (
    ADMIN_OPS,
    ERROR_CODES,
    OP_FIELDS,
    READ_OPS,
    WRITE_OPS,
    ProtocolError,
    decode_frame,
    encode_error,
    encode_frame,
    encode_result,
    error_code_for_exception,
)


def frame(**payload) -> bytes:
    return json.dumps(payload).encode() + b"\n"


class TestDecode:
    def test_every_op_has_a_field_spec(self):
        assert READ_OPS | WRITE_OPS | ADMIN_OPS == set(OP_FIELDS)

    def test_valid_read_frames(self):
        request = decode_frame(frame(op="access", pos=3, id="c1"))
        assert (request.op, request.shard, request.id) == ("access", "default", "c1")
        assert request.args == {"pos": 3}
        request = decode_frame(frame(op="rank", value="a", pos=0, shard="urls"))
        assert request.shard == "urls"
        assert request.args == {"value": "a", "pos": 0}
        request = decode_frame(frame(op="select_prefix", prefix="", idx=7))
        assert request.args == {"prefix": "", "idx": 7}

    def test_valid_write_and_admin_frames(self):
        assert decode_frame(frame(op="append", value="x")).args == {"value": "x"}
        assert decode_frame(frame(op="extend", values=["x", ""])).args == {
            "values": ["x", ""]
        }
        assert decode_frame(frame(op="stats")).args == {}
        assert decode_frame(frame(op="ping")).args == {}

    def test_extra_fields_are_ignored(self):
        request = decode_frame(frame(op="access", pos=1, banana=True))
        assert request.args == {"pos": 1}

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"not json\n", "malformed"),
            (b"[1, 2]\n", "malformed"),
            (b'"access"\n', "malformed"),
            (b"\xff\xfe\n", "malformed"),
            (frame(op="access", pos="3"), "malformed"),
            (frame(op="access", pos=True), "malformed"),
            (frame(op="rank", value=3, pos=0), "malformed"),
            (frame(op="extend", values=["a", 3]), "malformed"),
            (frame(op="extend", values="abc"), "malformed"),
            (frame(op="access", pos=0, shard=7), "malformed"),
            (frame(op="frobnicate"), "bad_request"),
            (frame(op=3), "bad_request"),
            (frame(pos=3), "bad_request"),
            (frame(op="access"), "bad_request"),
            (frame(op="rank", value="a"), "bad_request"),
            (frame(op="select", idx=0), "bad_request"),
        ],
    )
    def test_rejects_with_the_precise_code(self, line, code):
        with pytest.raises(ProtocolError) as caught:
            decode_frame(line)
        assert caught.value.code == code

    def test_oversized_frame(self):
        line = frame(op="append", value="x" * 100)
        with pytest.raises(ProtocolError) as caught:
            decode_frame(line, max_frame_bytes=64)
        assert caught.value.code == "oversized"
        assert decode_frame(line).op == "append"  # default limit is roomy


class TestEncode:
    def test_frames_are_compact_sorted_and_newline_terminated(self):
        payload = {"ok": True, "id": 9, "result": [1, 2]}
        line = encode_frame(payload)
        assert line == b'{"id":9,"ok":true,"result":[1,2]}\n'
        assert json.loads(line) == payload

    def test_encoding_is_deterministic_across_insertion_orders(self):
        a = encode_frame({"id": 1, "ok": True, "result": "x"})
        b = encode_frame({"result": "x", "ok": True, "id": 1})
        assert a == b

    def test_result_frame_with_and_without_version(self):
        assert json.loads(encode_result("r", 5, 10)) == {
            "id": "r", "ok": True, "result": 5, "version": 10,
        }
        assert json.loads(encode_result(None, "pong")) == {
            "id": None, "ok": True, "result": "pong",
        }

    def test_error_frame_carries_a_typed_code(self):
        payload = json.loads(encode_error(3, "timeout", "too slow"))
        assert payload == {
            "id": 3, "ok": False,
            "error": {"code": "timeout", "message": "too slow"},
        }
        with pytest.raises(AssertionError):
            encode_error(3, "nonsense-code", "boom")

    def test_error_frames_sort_error_first(self):
        # The shard relies on this prefix to count error responses cheaply.
        assert encode_error(1, "internal", "x").startswith(b'{"error"')
        assert not encode_result(1, "x").startswith(b'{"error"')


class TestErrorMapping:
    def test_library_exceptions_map_onto_the_closed_set(self):
        assert error_code_for_exception(OutOfBoundsError("x")) == "out_of_bounds"
        assert error_code_for_exception(ValueNotFoundError("x")) == "value_not_found"
        assert (
            error_code_for_exception(InvalidOperationError("x"))
            == "invalid_operation"
        )
        assert error_code_for_exception(RuntimeError("x")) == "internal"
        assert error_code_for_exception(ProtocolError("oversized", "x")) == "oversized"

    def test_every_mapped_code_is_declared(self):
        for error in (
            OutOfBoundsError("x"),
            ValueNotFoundError("x"),
            InvalidOperationError("x"),
            RuntimeError("x"),
        ):
            assert error_code_for_exception(error) in ERROR_CODES
