"""Snapshot isolation: pinned readers never observe in-flight writes.

Covers the primitive (:class:`~repro.db.column.ColumnSnapshot` pins a prefix
for free and keeps answering it unchanged through appends *and* physical
compaction) and the serving rule built on it (a tick's read batch answers
against the version pinned before any injected mid-batch churn).
"""

import asyncio
import random

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.db.column import ColumnSnapshot, CompressedColumn
from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.serving import (
    FaultInjector,
    FaultPlan,
    IndexServer,
    NDJSONClient,
    ServerConfig,
)

VALUES = ["app/a", "app/b", "zoo", "app/a", "", "b", "app/a"]


def make_column(values=VALUES, **kwargs) -> CompressedColumn:
    return CompressedColumn("urls", values, tiered=True, **kwargs)


def everything(snapshot: ColumnSnapshot) -> dict:
    """Every answer a snapshot can give, as one comparable structure."""
    n = len(snapshot)
    rows = list(snapshot.iter_range(0, n))
    distinct = sorted(set(rows))
    return {
        "len": n,
        "rows": rows,
        "access_many": snapshot.access_many(list(range(n))),
        "rank": {v: snapshot.rank(v, n) for v in distinct},
        "select": {
            v: [snapshot.select(v, i) for i in range(snapshot.rank(v, n))]
            for v in distinct
        },
        "rank_prefix": {p: snapshot.rank_prefix(p, n) for p in ("app/", "", "z")},
    }


class TestColumnSnapshotPrimitive:
    def test_snapshot_is_pinned_through_appends_and_compaction(self):
        column = make_column()
        snapshot = column.snapshot()
        before = everything(snapshot)
        assert snapshot.is_current()

        column.extend(["app/new", "zzz", "app/a"] * 20)
        column.index.compact()  # physical re-layout of everything pinned
        assert not snapshot.is_current()
        assert everything(snapshot) == before
        assert len(column) == len(VALUES) + 60

        fresh = column.snapshot()
        assert fresh.version == len(column)
        assert fresh.is_current()
        assert everything(fresh) != before

    def test_snapshot_matches_the_naive_prefix_oracle(self):
        rng = random.Random(5)
        universe = ["app/a", "app/b", "b", "zoo", ""]
        values = [rng.choice(universe) for _ in range(80)]
        column = make_column(values)
        snapshot = column.snapshot()
        column.extend([rng.choice(universe) for _ in range(40)])
        oracle = NaiveIndexedSequence(values)  # the pinned prefix only
        n = snapshot.version
        for pos in range(n):
            assert snapshot.access(pos) == oracle.access(pos)
        for value in universe:
            assert snapshot.rank(value, n) == oracle.rank(value, n)
            for idx in range(snapshot.rank(value, n)):
                assert snapshot.select(value, idx) == oracle.select(value, idx)
        for prefix in ("app/", "b", "", "zzz"):
            assert snapshot.rank_prefix(prefix, n) == oracle.rank_prefix(prefix, n)

    def test_select_validates_against_the_pinned_count(self):
        column = make_column(["a", "b"])
        snapshot = column.snapshot()
        column.extend(["a", "a"])
        # Three 'a's live, but the pin sees exactly one.
        assert snapshot.select("a", 0) == 0
        with pytest.raises(OutOfBoundsError, match="only 1 occurrences"):
            snapshot.select("a", 1)
        with pytest.raises(OutOfBoundsError, match="non-negative"):
            snapshot.select("a", -1)
        assert snapshot.select_many("a", [0]) == [0]
        with pytest.raises(OutOfBoundsError):
            snapshot.select_many("a", [0, 1])

    def test_values_appended_after_the_pin_do_not_exist(self):
        column = make_column(["a"])
        snapshot = column.snapshot()
        column.append("ghost")
        with pytest.raises(OutOfBoundsError, match="length 1"):
            snapshot.access(1)
        with pytest.raises(ValueNotFoundError, match="'ghost'"):
            snapshot.select("ghost", 0)
        with pytest.raises(ValueNotFoundError, match="prefix 'gh'"):
            snapshot.select_prefix("gh", 0)
        assert snapshot.rank("ghost", 1) == 0
        assert list(snapshot.iter_range(0, 1)) == ["a"]
        with pytest.raises(OutOfBoundsError):
            snapshot.iter_range(0, 2)

    def test_snapshot_rejects_writes(self):
        snapshot = make_column().snapshot()
        with pytest.raises(InvalidOperationError):
            snapshot.append("x")

    def test_explicit_version_pins_an_earlier_prefix(self):
        column = make_column(["a", "b", "c"])
        snapshot = ColumnSnapshot(column.index, version=2)
        assert len(snapshot) == 2
        assert snapshot.access_many([0, 1]) == ["a", "b"]
        with pytest.raises(OutOfBoundsError):
            ColumnSnapshot(column.index, version=4)

    def test_snapshot_creation_is_o1_no_copy(self):
        column = make_column()
        snapshot = column.snapshot()
        assert snapshot.size_in_bits() == column.size_in_bits()
        assert snapshot._index is column.index  # shared, not copied


class TestServingIsolation:
    def test_mid_batch_churn_is_invisible_to_the_pinned_tick(self, tmp_path):
        """Writes injected *between* snapshot pin and batch execution.

        The fault seam fires after the pump pins the tick's snapshot; it
        appends rows that would change every answer if the batch read the
        live column.  Responses must reflect the pin, and their ``version``
        field proves which prefix answered.
        """
        faults = FaultInjector().script(
            *[FaultPlan(churn_values=["app/a"] * 5) for _ in range(50)]
        )
        path = str(tmp_path / "iso.sock")

        async def main():
            column = make_column(["app/a", "b"])
            server = IndexServer(
                column, ServerConfig(unix_path=path), faults=faults
            )
            await server.start()
            clients = [await NDJSONClient.connect(path) for _ in range(8)]

            async def probe(client, i):
                return await client.call(op="rank", value="app/a", pos=0, id=i)

            # pos=0 is valid at every version; rank(value, 0) == 0 always,
            # so the interesting signal is the version each response pinned.
            answers = await asyncio.gather(
                *[probe(c, i) for i, c in enumerate(clients)]
            )
            follow_ups = []
            for client in clients:
                response = await client.call(op="stats")
                follow_ups.append(response["result"]["shards"]["default"])
                await client.close()
            await server.stop()
            return answers, follow_ups

        answers, shard_stats = asyncio.run(main())
        versions = {a["version"] for a in answers}
        for answer in answers:
            assert answer["ok"] and answer["result"] == 0
        # Churn landed (rows grew), yet every response's version is one the
        # pump pinned *before* its tick's churn fired.
        assert shard_stats[0]["rows"] > 2
        assert all(v <= shard_stats[0]["rows"] for v in versions)
        assert faults.applied["churned_rows"] > 0

    def test_full_answers_are_fixed_by_the_pinned_version(self, tmp_path):
        """Every response equals the naive oracle at exactly its version."""
        universe = ["app/a", "app/b", "b"]
        rng = random.Random(11)
        log = [rng.choice(universe) for _ in range(30)]
        path = str(tmp_path / "iso2.sock")

        async def main():
            column = make_column(log[:10])
            server = IndexServer(column, ServerConfig(unix_path=path))
            await server.start()
            writer = await NDJSONClient.connect(path)
            readers = [await NDJSONClient.connect(path) for _ in range(6)]

            async def write_tail():
                for value in log[10:]:
                    await writer.call(op="append", value=value)

            async def read_loop(client, salt):
                out = []
                for i in range(12):
                    value = universe[(i + salt) % len(universe)]
                    out.append(await client.call(op="rank", value=value, pos=0))
                    response = await client.call(
                        op="rank_prefix", prefix="app/", pos=0
                    )
                    out.append(response)
                return out

            results = await asyncio.gather(
                write_tail(), *[read_loop(c, s) for s, c in enumerate(readers)]
            )
            for client in readers:
                await client.close()
            await writer.close()
            await server.stop()
            return results[1:]

        for lane in asyncio.run(main()):
            for response in lane:
                assert response["ok"]
                # version must be a prefix length that existed in the log
                assert 10 <= response["version"] <= len(log)
                assert response["result"] == 0  # rank at pos=0 is always 0

    def test_reads_and_writes_interleave_without_torn_versions(self, tmp_path):
        """access at a just-written position succeeds iff version covers it;
        responses never report a version larger than the rows ever written."""
        path = str(tmp_path / "iso3.sock")

        async def main():
            column = make_column(["seed"])
            server = IndexServer(column, ServerConfig(unix_path=path))
            await server.start()
            client = await NDJSONClient.connect(path)
            versions = []
            for i in range(20):
                write = await client.call(op="append", value=f"row{i}")
                assert write["ok"]
                versions.append(write["version"])
                read = await client.call(op="access", pos=write["version"] - 1)
                assert read["ok"] and read["result"] == f"row{i}"
                assert read["version"] >= write["version"]
            await client.close()
            await server.stop()
            return versions

        versions = asyncio.run(main())
        assert versions == sorted(versions)  # strictly monotone writes
        assert versions[-1] == 21
