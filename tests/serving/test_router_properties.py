"""Property suite for the cluster's partition function and read router.

Everything here is hermetic -- no worker processes.  The
:class:`~repro.serving.router.ClusterRouter`'s only I/O seam is its async
``fetch`` callable, so the properties drive it against *sliced in-process
columns* and compare byte-for-byte against the unsharded coalescer
(:func:`~repro.serving.coalescer.run_read_tick`), the same oracle the
single-process server uses.

Pinned properties:

* the partition function is **total** -- every non-negative position maps
  to exactly one shard, and that shard's range contains it;
* it is **stable** -- a pure function of ``(total, num_shards)``,
  bit-identical across recomputation and across the manifest round-trip
  (what a supervisor restart or worker respawn does);
* scatter-gathered reads are **byte-identical** to the unsharded server
  for the whole query surface, success and error frames alike.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List

from hypothesis import given, settings, strategies as st

from repro.core.static import WaveletTrie
from repro.db.column import CompressedColumn
from repro.db.partition import partition_ranges
from repro.serving.coalescer import run_read_tick
from repro.serving.protocol import Request
from repro.serving.router import ClusterRouter, PartitionMap

VALUES = st.lists(
    st.sampled_from(["app/a", "app/b", "app/cart", "blog", "b", ""]),
    min_size=0,
    max_size=40,
)


class SlicedColumns:
    """An in-process stand-in for the worker fleet: one slice per shard."""

    def __init__(self, values: List[str], partition: PartitionMap) -> None:
        self.slices = [
            WaveletTrie(values[partition.base_of(i) : partition.bounds[i + 1]])
            for i in range(partition.num_shards)
        ]
        self.batches: List[int] = []  # scatter widths, for amortisation checks

    async def fetch(self, shard: int, payloads: List[Dict[str, Any]]) -> List[Any]:
        self.batches.append(len(payloads))
        trie = self.slices[shard]
        results: List[Any] = []
        for payload in payloads:
            op = payload["op"]
            if op == "access":
                results.append(trie.access(payload["pos"]))
            elif op == "rank":
                results.append(trie.rank(payload["value"], payload["pos"]))
            elif op == "rank_prefix":
                results.append(trie.rank_prefix(payload["prefix"], payload["pos"]))
            elif op == "select":
                results.append(trie.select(payload["value"], payload["idx"]))
            elif op == "select_prefix":
                results.append(trie.select_prefix(payload["prefix"], payload["idx"]))
            else:  # pragma: no cover - the router only emits read ops
                raise AssertionError(op)
        return results


class TestPartitionFunction:
    @given(total=st.integers(0, 2000), num_shards=st.integers(1, 12))
    def test_total_every_position_has_exactly_one_owner(self, total, num_shards):
        part = PartitionMap.from_total(total, num_shards)
        ranges = partition_ranges(total, num_shards)
        # The ranges tile [0, total): disjoint, contiguous, complete.
        assert ranges[0][0] == 0 and ranges[-1][1] == total
        assert all(hi == next_lo for (_, hi), (next_lo, _) in zip(ranges, ranges[1:]))
        for pos in range(min(total, 64)):
            owner = part.owner_of(pos)
            owners = [i for i, (lo, hi) in enumerate(ranges) if lo <= pos < hi]
            assert owners == [owner]
        # Appended rows (>= total) always belong to the tail.
        assert part.owner_of(total) == part.tail
        assert part.owner_of(total + 17) == part.tail

    @given(total=st.integers(0, 2000), num_shards=st.integers(1, 12))
    def test_stable_across_recomputation_and_manifest_round_trip(
        self, total, num_shards
    ):
        first = PartitionMap.from_total(total, num_shards)
        again = PartitionMap.from_total(total, num_shards)
        assert first == again and first.bounds == again.bounds
        # The respawn path: manifest JSON in between.
        restored = PartitionMap.from_manifest(
            json.loads(json.dumps(first.to_manifest()))
        )
        assert restored == first
        for pos in range(0, total + 2, max(1, total // 7)):
            assert restored.owner_of(pos) == first.owner_of(pos)
            assert restored.boundary_of(pos) == first.boundary_of(pos)

    @given(total=st.integers(0, 500), num_shards=st.integers(1, 8))
    def test_balanced_within_one_row(self, total, num_shards):
        lengths = [hi - lo for lo, hi in partition_ranges(total, num_shards)]
        assert sum(lengths) == total
        assert max(lengths) - min(lengths) <= 1

    @given(pos=st.integers(0, 40), total=st.integers(0, 40), shards=st.integers(1, 5))
    def test_boundary_matches_rank_decomposition(self, pos, total, shards):
        # boundary_of(pos) is owner_of(pos) except at exact range ends,
        # where either neighbour is valid for a rank; it must never exceed
        # the tail and must cover pos with its [base, base+len] span.
        part = PartitionMap.from_total(total, shards)
        boundary = part.boundary_of(pos)
        assert 0 <= boundary <= part.tail
        base = part.base_of(boundary)
        assert base <= pos
        if boundary < part.tail:
            assert pos - base <= part.length_of(boundary)


def request_log(values: List[str]) -> List[Request]:
    """Every op against every interesting position/index, valid and not."""
    n = len(values)
    keys = sorted(set(values))[:3] + ["app/", "zz-missing", ""]
    log: List[Request] = []
    ident = 0
    for pos in {-1, 0, n // 3, max(0, n - 1), n, n + 3}:
        log.append(Request("access", "default", f"a{ident}", {"pos": pos}))
        ident += 1
    for key in keys:
        for pos in {0, n // 2, n, n + 2}:
            log.append(Request("rank", "default", f"r{ident}", {"value": key, "pos": pos}))
            log.append(
                Request("rank_prefix", "default", f"p{ident}", {"prefix": key, "pos": pos})
            )
            ident += 1
        for idx in {-1, 0, 1, n // 2, n + 1}:
            log.append(Request("select", "default", f"s{ident}", {"value": key, "idx": idx}))
            log.append(
                Request(
                    "select_prefix", "default", f"q{ident}", {"prefix": key, "idx": idx}
                )
            )
            ident += 1
    return log


class TestScatterGatherByteIdentity:
    @settings(max_examples=30, deadline=None)
    @given(values=VALUES, num_shards=st.integers(1, 5))
    def test_routed_frames_equal_unsharded_frames(self, values, num_shards):
        part = PartitionMap.from_total(len(values), num_shards)
        workers = SlicedColumns(values, part)
        router = ClusterRouter(part, workers.fetch)
        requests = request_log(values)

        column = CompressedColumn("default", list(values))
        expected = run_read_tick(column.snapshot(), requests)
        actual = asyncio.run(router.answer(requests, len(values)))
        assert actual == expected  # byte-for-byte, success and error frames

    @settings(max_examples=15, deadline=None)
    @given(values=VALUES.filter(lambda v: len(v) >= 6), num_shards=st.integers(2, 4))
    def test_routing_is_stable_across_router_restarts(self, values, num_shards):
        # A fresh router (cold caches -- what a supervisor restart builds)
        # answers the same log with the same bytes as a warmed-up one.
        part = PartitionMap.from_total(len(values), num_shards)
        requests = request_log(values)
        warm = ClusterRouter(part, SlicedColumns(values, part).fetch)
        first = asyncio.run(warm.answer(requests, len(values)))
        second = asyncio.run(warm.answer(requests, len(values)))  # cached counts
        cold = ClusterRouter(part, SlicedColumns(values, part).fetch)
        third = asyncio.run(cold.answer(requests, len(values)))
        assert first == second == third

    def test_count_caches_amortise_repeat_ranks(self):
        values = ["app/a", "app/b", "blog"] * 20
        part = PartitionMap.from_total(len(values), 4)
        workers = SlicedColumns(values, part)
        router = ClusterRouter(part, workers.fetch)
        log = [
            Request("rank", "default", i, {"value": "app/a", "pos": len(values)})
            for i in range(8)
        ]
        asyncio.run(router.answer(log, len(values)))
        cold_subrequests = sum(workers.batches)
        workers.batches.clear()
        asyncio.run(router.answer(log, len(values)))
        warm_subrequests = sum(workers.batches)
        # Warm pass needs only the per-request boundary-local ranks (the
        # worker's own coalescer dedups those); the frozen full counts --
        # 3 shards' worth on the cold pass -- never refetch.
        assert cold_subrequests == len(log) + 3
        assert warm_subrequests == len(log)
