"""Crash recovery: scripted worker deaths, no lost or duplicated responses.

Worker crashes are driven deterministically through the existing
fault-injection seams: a JSON ``--fault-script`` rides the worker's argv,
:meth:`~repro.serving.faults.FaultInjector.from_specs` turns it into a
scripted plan, and ``{"exit": N}`` hard-kills the process (``os._exit``)
at the ``before_batch`` seam -- *after* requests were accepted and the
batch snapshot pinned, the worst moment.  Scripts only apply to
generation 0, so respawned workers come back healthy.

No wall-clock sleeps anywhere: ``restart_backoff=0``, the supervisor's
ready handshake is event-driven, and recovery is exercised purely by
awaiting the responses the client is owed.  The invariants pinned:

* every submitted request gets exactly one response (no losses, no
  duplicates -- correlation ids are unique across the whole run);
* journaled writes survive a tail-worker crash **exactly once** (the
  respawn replays the journal; acknowledged versions never rewind);
* recovered responses are byte-identical to a never-crashed cluster's;
* a worker dead past ``max_restarts`` degrades loudly (``internal``
  errors for its shard) instead of hanging, and the supervisor's restart
  accounting shows up in ``stats``.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import List

import pytest

from repro.db.column import CompressedColumn
from repro.serving.cluster import ClusterConfig, ClusterError, ClusterSupervisor
from repro.serving.protocol import encode_request
from repro.serving.server import NDJSONClient, ServerConfig
from repro.storage.shards import export_shard_images


def export(tmp_path, values: List[str], workers: int) -> str:
    image_dir = tmp_path / "images"
    export_shard_images(
        {"default": CompressedColumn("default", values, appendable=True)},
        image_dir,
        workers,
    )
    return str(image_dir)


def make_cluster(tmp_path, image_dir: str, **cluster_kw) -> ClusterSupervisor:
    cluster_kw.setdefault("restart_backoff", 0.0)
    return ClusterSupervisor(
        ServerConfig(unix_path=str(tmp_path / "sup.sock")),
        ClusterConfig(image_dir=image_dir, **cluster_kw),
    )


def make_values(n: int = 300, seed: int = 3) -> List[str]:
    rng = random.Random(seed)
    return [rng.choice(["app/a", "app/b", "blog", "b"]) for _ in range(n)]


class TestCrashRecovery:
    def test_read_worker_crash_mid_batch_recovers_every_response(self, tmp_path):
        values = make_values()
        image_dir = export(tmp_path, values, 3)

        async def run(fault_scripts) -> List[bytes]:
            cluster = make_cluster(tmp_path, image_dir, fault_scripts=fault_scripts)
            await cluster.start()
            try:
                client = await NDJSONClient.connect(
                    cluster.config.unix_path, max_inflight=64
                )
                # A burst spanning all three shards: shard 0 dies mid-batch.
                futures = [
                    await client.submit(
                        encode_request("access", id=i, pos=(i * 7) % len(values))
                    )
                    for i in range(90)
                ]
                futures.append(
                    await client.submit(
                        encode_request("rank", id="r", value="app/a", pos=len(values))
                    )
                )
                frames = [await future for future in futures]
                stats = json.loads(
                    await client.call_raw(encode_request("stats", id="s"))
                )["result"]
                await client.close()
            finally:
                await cluster.stop()
            return frames, stats

        crashed_frames, crashed_stats = asyncio.run(
            run({0: [{"exit": 17}]})
        )
        healthy_frames, healthy_stats = asyncio.run(run({}))

        # Exactly one response per request, none lost, none duplicated.
        ids = [json.loads(frame)["id"] for frame in crashed_frames]
        assert len(ids) == len(set(ids)) == 91
        # Byte-identical to the never-crashed run.
        assert crashed_frames == healthy_frames
        assert all(json.loads(frame)["ok"] for frame in crashed_frames)
        # The crash really happened and really was recovered.
        assert crashed_stats["cluster"]["total_restarts"] >= 1
        assert crashed_stats["cluster"]["workers"]["0"]["restarts"] >= 1
        assert crashed_stats["cluster"]["workers"]["0"]["ready"]
        assert healthy_stats["cluster"]["total_restarts"] == 0

    def test_tail_crash_applies_journaled_writes_exactly_once(self, tmp_path):
        values = make_values()
        image_dir = export(tmp_path, values, 3)

        async def main():
            # Tail worker (index 2): survive one batch, die on the next --
            # which is the batch carrying our writes.
            cluster = make_cluster(
                tmp_path,
                image_dir,
                fault_scripts={2: [{"skip": 1}, {"exit": 42}]},
            )
            await cluster.start()
            try:
                client = await NDJSONClient.connect(
                    cluster.config.unix_path, max_inflight=64
                )
                # First batch: a harmless read consumes the skip tick.
                await client.call_raw(encode_request("access", id="warm", pos=0))
                write1 = await client.submit(
                    encode_request("extend", id="w1", values=["zzz", "zzz"])
                )
                write2 = await client.submit(
                    encode_request("append", id="w2", value="qqq")
                )
                reads = [
                    await client.submit(encode_request("access", id=i, pos=i * 3))
                    for i in range(40)
                ]
                first = json.loads(await write1)
                second = json.loads(await write2)
                frames = [json.loads(await future) for future in reads]
                # Post-recovery reads see the writes exactly once.
                rank = json.loads(
                    await client.call_raw(
                        encode_request(
                            "rank", id="rz", value="zzz", pos=len(values) + 3
                        )
                    )
                )
                tail_row = json.loads(
                    await client.call_raw(
                        encode_request("access", id="t", pos=len(values) + 2)
                    )
                )
                stats = json.loads(
                    await client.call_raw(encode_request("stats", id="s"))
                )["result"]
                await client.close()
            finally:
                await cluster.stop()
            assert first == {
                "id": "w1", "ok": True,
                "result": {"appended": 2}, "version": len(values) + 2,
            }
            assert second == {
                "id": "w2", "ok": True,
                "result": {"appended": 1}, "version": len(values) + 3,
            }
            assert all(frame["ok"] for frame in frames)
            assert rank["result"] == 2, f"write applied {rank['result']}x, not once"
            assert tail_row["result"] == "qqq"
            assert stats["cluster"]["workers"]["2"]["restarts"] >= 1
            assert stats["cluster"]["journal_entries"]["default"] == 2
            assert stats["cluster"]["columns"]["default"] == len(values) + 3

        asyncio.run(main())

    def test_worker_dead_past_restart_budget_degrades_loudly(self, tmp_path):
        values = make_values(120)
        image_dir = export(tmp_path, values, 3)

        async def main():
            cluster = make_cluster(
                tmp_path,
                image_dir,
                fault_scripts={0: [{"exit": 9}]},
                max_restarts=0,  # the crash exhausts the budget immediately
            )
            await cluster.start()
            try:
                client = await NDJSONClient.connect(
                    cluster.config.unix_path, max_inflight=8
                )
                # Hits shard 0, which dies and may never come back.
                dead = json.loads(
                    await client.call_raw(encode_request("access", id="d", pos=0))
                )
                # Shards 1/2 keep serving: the cluster degrades, not dies.
                alive = json.loads(
                    await client.call_raw(
                        encode_request("access", id="a", pos=len(values) - 1)
                    )
                )
                stats = json.loads(
                    await client.call_raw(encode_request("stats", id="s"))
                )["result"]
                await client.close()
            finally:
                await cluster.stop()
            assert not dead["ok"]
            assert dead["error"]["code"] == "internal"
            assert "unavailable" in dead["error"]["message"]
            assert alive == {
                "id": "a", "ok": True,
                "result": values[-1], "version": len(values),
            }
            assert stats["cluster"]["workers"]["0"]["failed"]
            assert stats["cluster"]["workers"]["1"]["ready"]

        asyncio.run(main())

    def test_worker_crashing_before_ready_fails_start(self, tmp_path):
        image_dir = export(tmp_path, make_values(60), 1)

        async def main():
            cluster = make_cluster(
                tmp_path,
                image_dir,
                # Unknown fault key: the worker raises during startup,
                # before its ready handshake.
                fault_scripts={0: [{"not-a-fault": 1}]},
            )
            with pytest.raises(ClusterError, match="before its ready handshake"):
                await cluster.start()

        asyncio.run(main())

    def test_repeated_crashes_within_budget_all_recover(self, tmp_path):
        values = make_values(200)
        image_dir = export(tmp_path, values, 2)

        async def main():
            # Worker 0 dies on its first batch; every respawn is healthy,
            # so one restart suffices -- but issue several bursts to prove
            # the restarted worker is a full citizen.
            cluster = make_cluster(
                tmp_path, image_dir, fault_scripts={0: [{"exit": 5}]}
            )
            await cluster.start()
            try:
                client = await NDJSONClient.connect(
                    cluster.config.unix_path, max_inflight=32
                )
                for burst in range(3):
                    futures = [
                        await client.submit(
                            encode_request(
                                "access", id=f"{burst}-{i}", pos=(i * 11) % len(values)
                            )
                        )
                        for i in range(30)
                    ]
                    frames = [json.loads(await future) for future in futures]
                    assert all(frame["ok"] for frame in frames)
                    assert [frame["result"] for frame in frames] == [
                        values[(i * 11) % len(values)] for i in range(30)
                    ]
                stats = json.loads(
                    await client.call_raw(encode_request("stats", id="s"))
                )["result"]
                await client.close()
            finally:
                await cluster.stop()
            assert stats["cluster"]["workers"]["0"]["restarts"] == 1

        asyncio.run(main())
