"""Edge cases of :class:`~repro.serving.metrics.ServingMetrics` and the
cluster's cross-worker counter merge.

The merge contract the cluster's ``stats`` op depends on: *merged stats
equal the sum of the per-worker stats* -- exactly, for every counter that
sums (requests, errors, ticks, disconnects, batch totals), with max-style
fields taking the max and non-composable percentiles dropped rather than
fabricated.
"""

from __future__ import annotations

import random

from repro.serving.metrics import ServingMetrics, merge_snapshots


class TestSnapshotEdgeCases:
    def test_empty_window_has_no_percentiles(self):
        # No latency samples recorded: the snapshot must not invent
        # percentiles (no zero-filled ops, no division errors).
        metrics = ServingMetrics()
        snapshot = metrics.snapshot()
        assert snapshot["latency"] == {}
        assert snapshot["batches"] == {}
        assert snapshot["requests"] == {}
        assert snapshot["ticks"] == 0

    def test_single_sample_latency_is_its_own_percentiles(self):
        metrics = ServingMetrics()
        metrics.record_latency("access", 0.004)
        stats = metrics.snapshot()["latency"]["access"]
        assert stats["samples"] == 1
        assert stats["p50_ms"] == stats["p99_ms"] == stats["max_ms"] == 4.0

    def test_drained_ring_vanishes_from_snapshot(self):
        # A ring that existed but holds nothing must be skipped, not
        # crash the percentile computation.
        metrics = ServingMetrics(reservoir=4)
        metrics.record_latency("rank", 0.001)
        metrics._latency["rank"].clear()
        assert metrics.snapshot()["latency"] == {}

    def test_reservoir_keeps_only_recent_samples(self):
        metrics = ServingMetrics(reservoir=8)
        for i in range(100):
            metrics.record_latency("access", float(i))
        stats = metrics.snapshot()["latency"]["access"]
        assert stats["samples"] == 8
        assert stats["max_ms"] == 99_000.0  # newest survive, oldest evicted

    def test_single_batch_mean_equals_its_size(self):
        metrics = ServingMetrics()
        metrics.record_batch("access", 7)
        stats = metrics.snapshot()["batches"]["access"]
        assert stats == {"batches": 1, "requests": 7, "mean_size": 7.0, "max_size": 7}


class TestMergeSnapshots:
    def test_merge_of_nothing_is_zero(self):
        merged = merge_snapshots([])
        assert merged["requests"] == {} and merged["errors"] == {}
        assert merged["ticks"] == 0 and merged["client_disconnects"] == 0
        assert merged["batches"] == {} and merged["latency"] == {}

    def test_merge_of_one_preserves_every_counter(self):
        metrics = ServingMetrics()
        metrics.record_request("access")
        metrics.record_error("timeout")
        metrics.record_batch("rank", 3)
        metrics.record_tick()
        snapshot = metrics.snapshot()
        merged = merge_snapshots([snapshot])
        assert merged["requests"] == snapshot["requests"]
        assert merged["errors"] == snapshot["errors"]
        assert merged["ticks"] == snapshot["ticks"]
        assert merged["batches"] == snapshot["batches"]

    def test_merged_counters_are_exact_sums_across_workers(self):
        # Simulate a supervisor + three workers with overlapping op mixes.
        rng = random.Random(17)
        workers = []
        for _ in range(4):
            metrics = ServingMetrics()
            for _ in range(rng.randrange(5, 40)):
                metrics.record_request(rng.choice(["access", "rank", "select"]))
            for _ in range(rng.randrange(0, 6)):
                metrics.record_error(rng.choice(["timeout", "out_of_bounds"]))
            for _ in range(rng.randrange(1, 9)):
                metrics.record_batch(
                    rng.choice(["access", "rank"]), rng.randrange(1, 12)
                )
                metrics.record_tick()
            for _ in range(rng.randrange(0, 20)):
                metrics.record_latency("access", rng.random() / 100)
            workers.append(metrics)
        snapshots = [metrics.snapshot() for metrics in workers]
        merged = merge_snapshots(snapshots)

        for op in ("access", "rank", "select"):
            assert merged["requests"].get(op, 0) == sum(
                s["requests"].get(op, 0) for s in snapshots
            )
        for code in ("timeout", "out_of_bounds"):
            assert merged["errors"].get(code, 0) == sum(
                s["errors"].get(code, 0) for s in snapshots
            )
        assert merged["ticks"] == sum(s["ticks"] for s in snapshots)
        for op in merged["batches"]:
            calls = sum(s["batches"].get(op, {}).get("batches", 0) for s in snapshots)
            total = sum(s["batches"].get(op, {}).get("requests", 0) for s in snapshots)
            assert merged["batches"][op]["batches"] == calls
            assert merged["batches"][op]["requests"] == total
            assert merged["batches"][op]["mean_size"] == round(total / calls, 2)
            assert merged["batches"][op]["max_size"] == max(
                s["batches"].get(op, {}).get("max_size", 0) for s in snapshots
            )
        assert merged["latency"]["access"]["samples"] == sum(
            s["latency"].get("access", {}).get("samples", 0) for s in snapshots
        )
        assert merged["latency"]["access"]["max_ms"] == max(
            s["latency"].get("access", {}).get("max_ms", 0.0) for s in snapshots
        )
        # Percentiles do not compose: the merge must not fabricate them.
        assert "p50_ms" not in merged["latency"]["access"]
        assert "p99_ms" not in merged["latency"]["access"]

    def test_merge_is_associative_on_counters(self):
        parts = []
        for seed in (1, 2, 3):
            metrics = ServingMetrics()
            for _ in range(seed * 4):
                metrics.record_request("access")
                metrics.record_batch("access", seed)
            parts.append(metrics.snapshot())
        all_at_once = merge_snapshots(parts)
        two_step = merge_snapshots([merge_snapshots(parts[:2]), parts[2]])
        assert all_at_once == two_step
