"""Hypothesis-driven churn fuzz of the serving layer.

Random schedules of concurrent reads and appends run against an
:class:`~repro.serving.shard.IndexShard` (real pump, real coalescing, real
snapshot pins); every response frame is then re-derived *byte for byte* from
:class:`~repro.baselines.NaiveIndexedSequence` prefixes.  A read answered at
``version v`` must equal the naive oracle over the first ``v`` rows of the
final log -- including every typed error message -- for some ``v`` within
the window the phase allows (concurrent appends make the exact pin a
scheduling choice; the window is the linearization freedom).

Every test runs under each available kernel backend, mirroring
``tests/core/test_delete_churn.py``, so the numpy batch kernels and the pure
python walks certify each other through the whole serving stack.
"""

import asyncio
import contextlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import NaiveIndexedSequence
from repro.bits import kernel
from repro.core.interface import check_select_prefix_index
from repro.db.column import CompressedColumn
from repro.exceptions import OutOfBoundsError, ValueNotFoundError
from repro.serving import (
    IndexShard,
    Request,
    encode_error,
    encode_result,
    error_code_for_exception,
    error_message,
)

BACKENDS = kernel.available_backends()

UNIVERSE = ["app/li", "app/lo", "app/le", "app/x", "apricot", "b", ""]
PROBES = ["app/", "app/l", "ap", "b", "zzz", ""]


@contextlib.contextmanager
def active_backend(name):
    previous = kernel.use_backend(name)
    try:
        yield
    finally:
        kernel.use_backend(previous)


@st.composite
def request_specs(draw):
    op = draw(
        st.sampled_from(
            ["access", "rank", "select", "rank_prefix", "select_prefix", "append"]
        )
    )
    return {
        "op": op,
        "value": draw(st.sampled_from(UNIVERSE + ["missing-value"])),
        "prefix": draw(st.sampled_from(PROBES + ["zz-missing"])),
        "pos": draw(st.integers(min_value=-2, max_value=48)),
        "idx": draw(st.integers(min_value=-2, max_value=14)),
    }


SCHEDULES = st.lists(
    st.lists(request_specs(), min_size=1, max_size=6), min_size=1, max_size=5
)
INITIAL = st.lists(st.sampled_from(UNIVERSE), min_size=0, max_size=16)


def build_request(slot, spec) -> Request:
    args = {
        "access": {"pos": spec["pos"]},
        "rank": {"value": spec["value"], "pos": spec["pos"]},
        "select": {"value": spec["value"], "idx": spec["idx"]},
        "rank_prefix": {"prefix": spec["prefix"], "pos": spec["pos"]},
        "select_prefix": {"prefix": spec["prefix"], "idx": spec["idx"]},
        "append": {"value": spec["value"]},
    }[spec["op"]]
    return Request(op=spec["op"], id=slot, args=args)


def expected_frame(request: Request, version: int, naive) -> bytes:
    """The oracle frame for ``request`` answered at pinned ``version``."""
    args = request.args
    try:
        if request.op == "access":
            pos = args["pos"]
            if not 0 <= pos < version:
                raise OutOfBoundsError(
                    f"position {pos} out of range for length {version}"
                )
            result = naive.access(pos)
        elif request.op == "rank":
            pos = args["pos"]
            if not 0 <= pos <= version:
                raise OutOfBoundsError(
                    f"rank position {pos} out of range for length {version}"
                )
            result = naive.rank(args["value"], pos)
        elif request.op == "select":
            idx = args["idx"]
            if idx < 0:
                raise OutOfBoundsError("select index must be non-negative")
            total = naive.rank(args["value"], version)
            if total == 0:
                raise ValueNotFoundError(
                    f"value {args['value']!r} does not occur in the sequence"
                )
            if idx >= total:
                raise OutOfBoundsError(
                    f"select index {idx} out of range: only {total} occurrences"
                )
            result = naive.select(args["value"], idx)
        elif request.op == "rank_prefix":
            pos = args["pos"]
            if not 0 <= pos <= version:
                raise OutOfBoundsError(
                    f"rank position {pos} out of range for length {version}"
                )
            result = naive.rank_prefix(args["prefix"], pos)
        else:
            assert request.op == "select_prefix"
            matches = naive.rank_prefix(args["prefix"], version)
            if matches == 0:
                raise ValueNotFoundError(
                    f"no element has prefix {args['prefix']!r}"
                )
            check_select_prefix_index(args["prefix"], args["idx"], matches)
            result = naive.select_prefix(args["prefix"], args["idx"])
    except (OutOfBoundsError, ValueNotFoundError) as error:
        return encode_error(
            request.id, error_code_for_exception(error), error_message(error)
        )
    return encode_result(request.id, result, version)


async def run_schedule(initial, schedule):
    """Execute the schedule; return per-phase observations + the final log."""
    column = CompressedColumn("fuzz", initial, tiered=True)
    shard = IndexShard("fuzz", column, compact_budget=2)
    observations = []
    for phase in schedule:
        low = len(column)
        requests = [build_request(slot, spec) for slot, spec in enumerate(phase)]
        frames = await asyncio.gather(
            *[shard.submit(request) for request in requests]
        )
        observations.append((low, len(column), requests, frames))
    await shard.drain()
    return observations, list(column.values())


def check_run(initial, schedule):
    observations, final_log = asyncio.run(run_schedule(initial, schedule))
    appended = sum(
        1 for phase in schedule for spec in phase if spec["op"] == "append"
    )
    assert len(final_log) == len(initial) + appended

    oracles = {}

    def oracle(version):
        if version not in oracles:
            oracles[version] = NaiveIndexedSequence(final_log[:version])
        return oracles[version]

    import json

    for low, high, requests, frames in observations:
        for request, frame in zip(requests, frames):
            if request.op == "append":
                payload = json.loads(frame)
                assert payload["ok"] and payload["result"] == {"appended": 1}
                assert low < payload["version"] <= high
                # The row it reports exists at its version in the log.
                assert final_log[payload["version"] - 1] == request.args["value"]
                continue
            candidates = {
                expected_frame(request, version, oracle(version))
                for version in range(low, high + 1)
            }
            assert frame in candidates, (request, frame, sorted(candidates))


class TestServingChurn:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(initial=INITIAL, schedule=SCHEDULES)
    def test_every_response_matches_a_naive_prefix_oracle(
        self, backend, initial, schedule
    ):
        with active_backend(backend):
            check_run(initial, schedule)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deterministic_mixed_regression(self, backend):
        schedule = [
            [
                {"op": "append", "value": "app/li", "prefix": "", "pos": 0, "idx": 0},
                {"op": "rank", "value": "app/li", "prefix": "", "pos": 3, "idx": 0},
                {"op": "access", "value": "", "prefix": "", "pos": 9, "idx": 0},
            ],
            [
                {"op": "select", "value": "app/li", "prefix": "", "pos": 0, "idx": 0},
                {"op": "select_prefix", "value": "", "prefix": "app/", "pos": 0, "idx": 1},
                {"op": "append", "value": "b", "prefix": "", "pos": 0, "idx": 0},
                {"op": "rank_prefix", "value": "", "prefix": "app/", "pos": 4, "idx": 0},
            ],
            [
                {"op": "select_prefix", "value": "", "prefix": "zzz", "pos": 0, "idx": 0},
                {"op": "select", "value": "apricot", "prefix": "", "pos": 0, "idx": -1},
            ],
        ]
        with active_backend(backend):
            check_run(["app/li", "app/lo", "b", ""], schedule)
