"""Transport endpoints: HTTP routes, stats payload, multi-shard routing,
the ``serve`` CLI command, and lifecycle edges."""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.db.column import CompressedColumn
from repro.serving import IndexServer, NDJSONClient, ServerConfig


def make_column(name="urls", values=("app/a", "app/b", "b")) -> CompressedColumn:
    return CompressedColumn(name, list(values), tiered=True)


async def http_call(host, port, request: bytes):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request)
    await writer.drain()
    status = (await reader.readline()).decode()
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", 0)))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return int(status.split()[1]), headers, body


class TestHttpTransport:
    def test_query_stats_ping_and_404(self):
        async def main():
            server = IndexServer(
                make_column(), ServerConfig(unix_path=None, http_port=0)
            )
            await server.start()
            host, port = server.http_address
            body = (
                b'{"op":"access","pos":1,"id":"q1"}\n'
                b'{"op":"rank","value":"b","pos":3,"id":"q2"}\n'
                b"\n"
                b'{"op":"nope","id":"q3"}\n'
            )
            request = (
                b"POST /query HTTP/1.1\r\ncontent-length: %d\r\n\r\n" % len(body)
            ) + body
            query = await http_call(host, port, request)
            stats = await http_call(host, port, b"GET /stats HTTP/1.1\r\n\r\n")
            ping = await http_call(host, port, b"GET /ping HTTP/1.1\r\n\r\n")
            missing = await http_call(host, port, b"GET /nope HTTP/1.1\r\n\r\n")
            bad = await http_call(host, port, b"GARBAGE\r\n\r\n")
            await server.stop()
            return query, stats, ping, missing, bad

        query, stats, ping, missing, bad = asyncio.run(main())
        status, headers, body = query
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        frames = [json.loads(line) for line in body.splitlines() if line]
        assert [f.get("id") for f in frames] == ["q1", "q2", "q3"]
        assert frames[0]["result"] == "app/b"
        assert frames[1]["result"] == 1
        assert frames[2]["error"]["code"] == "bad_request"

        payload = json.loads(stats[2])
        assert stats[0] == 200 and payload["ok"]
        assert "default" in payload["result"]["shards"]
        assert json.loads(ping[2])["result"] == "pong"
        assert missing[0] == 404
        assert bad[0] == 400

    def test_body_too_large_is_rejected(self):
        async def main():
            server = IndexServer(
                make_column(), ServerConfig(unix_path=None, http_port=0)
            )
            await server.start()
            host, port = server.http_address
            request = b"POST /query HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n"
            result = await http_call(host, port, request)
            await server.stop()
            return result

        status, _, _ = asyncio.run(main())
        assert status == 413


class TestStatsPayload:
    def test_stats_reflect_requests_batches_and_latency(self, tmp_path):
        path = str(tmp_path / "stats.sock")

        async def main():
            server = IndexServer(make_column(), ServerConfig(unix_path=path))
            await server.start()
            clients = [await NDJSONClient.connect(path) for _ in range(6)]
            await asyncio.gather(
                *[c.call(op="rank", value="b", pos=3) for c in clients]
            )
            await clients[0].call(op="append", value="new")
            stats = (await clients[0].call(op="stats"))["result"]
            for client in clients:
                await client.close()
            await server.stop()
            return stats

        stats = asyncio.run(main())
        metrics = stats["metrics"]
        assert metrics["requests"]["rank"] == 6
        assert metrics["requests"]["append"] == 1
        assert metrics["requests"]["stats"] == 1
        assert metrics["batches"]["rank"]["requests"] == 6
        assert metrics["batches"]["rank"]["batches"] <= 6
        assert metrics["latency"]["rank"]["samples"] == 6
        assert metrics["latency"]["rank"]["p50_ms"] >= 0
        assert metrics["ticks"] >= 1
        shard = stats["shards"]["default"]
        assert shard["rows"] == 4 and shard["appendable"]
        assert stats["config"]["coalesce"] is True


class TestMultiShard:
    def test_requests_route_by_shard_name(self, tmp_path):
        path = str(tmp_path / "multi.sock")

        async def main():
            server = IndexServer(
                {
                    "urls": make_column("urls", ["u1", "u2"]),
                    "agents": make_column("agents", ["a1"]),
                },
                ServerConfig(unix_path=path),
            )
            await server.start()
            client = await NDJSONClient.connect(path)
            urls = await client.call(op="access", pos=1, shard="urls")
            agents = await client.call(op="access", pos=0, shard="agents")
            default = await client.call(op="access", pos=0)  # no such shard
            stats = (await client.call(op="stats"))["result"]
            await client.close()
            await server.stop()
            return urls, agents, default, stats

        urls, agents, default, stats = asyncio.run(main())
        assert urls["result"] == "u2"
        assert agents["result"] == "a1"
        assert default["error"]["code"] == "unknown_shard"
        assert set(stats["shards"]) == {"agents", "urls"}


class TestLifecycle:
    def test_no_transport_config_is_an_error(self):
        async def main():
            server = IndexServer(
                make_column(), ServerConfig(unix_path=None, http_port=None)
            )
            await server.start()

        with pytest.raises(ValueError, match="no transport"):
            asyncio.run(main())

    def test_stop_removes_the_unix_socket(self, tmp_path):
        path = str(tmp_path / "gone.sock")

        async def main():
            server = IndexServer(make_column(), ServerConfig(unix_path=path))
            await server.start()
            assert os.path.exists(path)
            await server.stop()

        asyncio.run(main())
        assert not os.path.exists(path)


class TestServeCli:
    def test_parser_accepts_the_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "idx.wt", "--socket", "/tmp/x.sock", "--http-port", "0",
                "--shard", "urls", "--no-coalesce", "--max-pending", "9",
                "--timeout", "1.5", "--compact-budget", "4",
            ]
        )
        assert args.command == "serve"
        assert args.socket == "/tmp/x.sock"
        assert args.http_port == 0
        assert args.shard == "urls"
        assert args.no_coalesce
        assert args.max_pending == 9
        assert args.timeout == 1.5
        assert args.compact_budget == 4

    def test_serve_subprocess_answers_and_shuts_down_on_sigterm(self, tmp_path):
        data = tmp_path / "data.txt"
        data.write_text("app/a\napp/b\nb\n")
        index = str(tmp_path / "data.wt")
        env = {**os.environ, "PYTHONPATH": "src"}
        subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "build", str(data),
                "-o", index, "--variant", "tiered",
            ],
            env=env, check=True, capture_output=True, cwd="/root/repo",
        )
        sock = str(tmp_path / "serve.sock")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", index, "--socket", sock],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            cwd="/root/repo",
        )
        try:
            deadline = time.monotonic() + 20
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, proc.stderr
                assert proc.poll() is None, proc.communicate()
                time.sleep(0.02)
            with socket.socket(socket.AF_UNIX) as conn:
                conn.connect(sock)
                conn.sendall(b'{"op":"rank_prefix","prefix":"app/","pos":3,"id":1}\n')
                line = conn.makefile().readline()
            payload = json.loads(line)
            assert payload == {"id": 1, "ok": True, "result": 2, "version": 3}
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=20)
        assert proc.returncode == 0, err.decode()
        assert "serving shard 'default'" in out.decode()
