"""Fault injection: the server under slow handlers, crashes, skewed clocks,
hostile frames and vanishing clients.

Everything is deterministic: faults are scripted per tick, slowness is
``asyncio.sleep(0)`` yield turns, and time is a fake clock the script
advances -- no wall-clock sleeps anywhere.
"""

import asyncio
import json

import pytest

from repro.db.column import CompressedColumn
from repro.serving import (
    FaultInjector,
    FaultPlan,
    IndexServer,
    IndexShard,
    NDJSONClient,
    Request,
    ServerConfig,
)

VALUES = ["app/a", "app/b", "b", "app/a"]


def make_column() -> CompressedColumn:
    return CompressedColumn("urls", VALUES, tiered=True)


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    """A manually-advanced clock; the shard adds fault skew on top."""

    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


class TestSlowHandlers:
    def test_slow_batch_only_delays_it_does_not_corrupt(self):
        faults = FaultInjector().script(FaultPlan(yield_turns=40))

        async def main():
            shard = IndexShard("s", make_column(), faults=faults)
            answers = await asyncio.gather(
                *[
                    shard.submit(Request(op="access", id=i, args={"pos": i % 4}))
                    for i in range(8)
                ]
            )
            await shard.drain()
            return answers

        answers = run(main())
        for i, frame in enumerate(answers):
            payload = json.loads(frame)
            assert payload["ok"] and payload["result"] == VALUES[i % 4]
        assert faults.applied["yield_turns"] == 40

    def test_requests_arriving_during_a_slow_batch_form_the_next_tick(self):
        faults = FaultInjector().script(FaultPlan(yield_turns=10))

        async def main():
            shard = IndexShard("s", make_column(), faults=faults)
            first = asyncio.ensure_future(
                shard.submit(Request(op="access", id="a", args={"pos": 0}))
            )
            await asyncio.sleep(0)  # let the pump pin tick 1 and go slow
            late = asyncio.ensure_future(
                shard.submit(Request(op="access", id="b", args={"pos": 1}))
            )
            frames = await asyncio.gather(first, late)
            await shard.drain()
            return frames, shard.metrics.ticks

        frames, ticks = run(main())
        assert all(json.loads(f)["ok"] for f in frames)
        assert ticks >= 2  # the late request ran in its own tick


class TestCrashes:
    def test_a_crashing_tick_fails_its_requests_and_spares_the_next(self):
        faults = FaultInjector().script(FaultPlan(crash=RuntimeError("disk on fire")))

        async def main():
            shard = IndexShard("s", make_column(), faults=faults)
            crashed = await asyncio.gather(
                *[
                    shard.submit(Request(op="access", id=i, args={"pos": 0}))
                    for i in range(3)
                ]
            )
            healthy = await shard.submit(
                Request(op="access", id="ok", args={"pos": 0})
            )
            await shard.drain()
            return crashed, healthy

        crashed, healthy = run(main())
        for frame in crashed:
            payload = json.loads(frame)
            assert not payload["ok"]
            assert payload["error"]["code"] == "internal"
            assert payload["error"]["message"] == "disk on fire"
        assert json.loads(healthy)["ok"]
        assert faults.applied["crashes"] == 1


class TestTimeouts:
    def test_clock_skew_expires_queued_requests_with_a_typed_error(self):
        clock = FakeClock()
        # Tick 1: advance the clock far past the timeout while requests for
        # tick 2 are already queued behind the slow batch.
        faults = FaultInjector().script(
            FaultPlan(yield_turns=6, advance_clock=10.0)
        )

        async def main():
            shard = IndexShard(
                "s",
                make_column(),
                request_timeout=1.0,
                clock=clock,
                faults=faults,
            )
            first = asyncio.ensure_future(
                shard.submit(Request(op="access", id="fast", args={"pos": 0}))
            )
            await asyncio.sleep(0)  # pump pins tick 1, fault starts burning
            late = asyncio.ensure_future(
                shard.submit(Request(op="rank", id="late", args={"value": "b", "pos": 2}))
            )
            frames = await asyncio.gather(first, late)
            await shard.drain()
            return [json.loads(f) for f in frames]

        fast, late = run(main())
        assert fast["ok"]
        assert not late["ok"]
        assert late["error"]["code"] == "timeout"
        assert shard_error_count(late) == 1

    def test_no_timeout_configured_means_no_expiry(self):
        clock = FakeClock()
        faults = FaultInjector().script(FaultPlan(advance_clock=1e6))

        async def main():
            shard = IndexShard("s", make_column(), clock=clock, faults=faults)
            first = await shard.submit(Request(op="access", id=1, args={"pos": 0}))
            second = await shard.submit(Request(op="access", id=2, args={"pos": 1}))
            await shard.drain()
            return [json.loads(f) for f in (first, second)]

        assert all(p["ok"] for p in run(main()))


def shard_error_count(payload) -> int:
    return 1 if not payload["ok"] else 0


class TestBackpressure:
    def test_submissions_beyond_the_bound_are_rejected_immediately(self):
        async def main():
            shard = IndexShard("s", make_column(), max_pending=2)
            # gather starts all submits before the pump gets a turn, so the
            # queue bound is hit deterministically by the 3rd..5th request.
            frames = await asyncio.gather(
                *[
                    shard.submit(Request(op="access", id=i, args={"pos": 0}))
                    for i in range(5)
                ]
            )
            await shard.drain()
            return [json.loads(f) for f in frames], shard.metrics

        payloads, metrics = run(main())
        rejected = [p for p in payloads if not p["ok"]]
        served = [p for p in payloads if p["ok"]]
        assert len(served) == 2 and len(rejected) == 3
        assert {p["error"]["code"] for p in rejected} == {"overloaded"}
        assert metrics.errors["overloaded"] == 3


class TestHostileFrames:
    def test_oversized_frame_gets_a_typed_error_and_the_connection_closes(
        self, tmp_path
    ):
        path = str(tmp_path / "f1.sock")

        async def main():
            server = IndexServer(
                make_column(),
                ServerConfig(unix_path=path, max_frame_bytes=256),
            )
            await server.start()
            client = await NDJSONClient.connect(path)
            # Past max_frame_bytes + the stream slack, so readline() itself
            # overflows and the server cannot resync at a newline.
            huge = json.dumps({"op": "append", "value": "x" * 5000}).encode() + b"\n"
            line = await client.call_raw(huge)
            follow_up_dead = False
            try:
                await client.call(op="ping")
            except ConnectionError:
                follow_up_dead = True
            await client.close()
            # A fresh connection still works: the fault was per-connection.
            fresh = await NDJSONClient.connect(path)
            pong = await fresh.call(op="ping")
            await fresh.close()
            await server.stop()
            return json.loads(line), follow_up_dead, pong

        payload, closed, pong = run(main())
        assert not payload["ok"]
        assert payload["error"]["code"] == "oversized"
        assert closed
        assert pong["result"] == "pong"

    def test_oversized_but_parseable_frame_keeps_the_connection(self, tmp_path):
        # Over the protocol limit yet under the stream buffer: the server
        # can resync at the newline, so only the one frame is rejected.
        path = str(tmp_path / "f2.sock")

        async def main():
            config = ServerConfig(unix_path=path)
            config.max_frame_bytes = 128
            server = IndexServer(make_column(), config)
            server.config.max_frame_bytes = 128
            await server.start()
            client = await NDJSONClient.connect(path)
            big = json.dumps({"op": "append", "value": "y" * 200, "id": 5}).encode() + b"\n"
            first = json.loads(await client.call_raw(big))
            second = await client.call(op="ping")
            await client.close()
            await server.stop()
            return first, second

        first, second = run(main())
        assert first["error"]["code"] == "oversized"
        assert first["id"] == 5  # id salvaged from the rejected frame
        assert second["result"] == "pong"

    def test_malformed_frames_answer_typed_errors_and_keep_the_stream(
        self, tmp_path
    ):
        path = str(tmp_path / "f3.sock")
        lines = [
            (b"this is not json\n", "malformed"),
            (b"[1,2,3]\n", "malformed"),
            (b'{"op":"frobnicate"}\n', "bad_request"),
            (b'{"op":"access"}\n', "bad_request"),
            (b'{"op":"access","pos":true}\n', "malformed"),
            (b'{"op":"access","pos":0,"shard":"nope"}\n', "unknown_shard"),
        ]

        async def main():
            server = IndexServer(make_column(), ServerConfig(unix_path=path))
            await server.start()
            client = await NDJSONClient.connect(path)
            seen = []
            for line, _ in lines:
                seen.append(json.loads(await client.call_raw(line)))
            healthy = await client.call(op="access", pos=0)
            await client.close()
            await server.stop()
            return seen, healthy, server.metrics

        seen, healthy, metrics = run(main())
        for (line, code), payload in zip(lines, seen):
            assert not payload["ok"]
            assert payload["error"]["code"] == code, line
        assert healthy["ok"] and healthy["result"] == "app/a"
        assert metrics.errors["malformed"] == 3
        assert metrics.errors["bad_request"] == 2
        assert metrics.errors["unknown_shard"] == 1


class TestDisconnects:
    def test_client_vanishing_mid_batch_does_not_poison_the_tick(self, tmp_path):
        """One client sends a request and disconnects before the (slowed)
        tick answers; the surviving clients still get correct frames."""
        path = str(tmp_path / "d1.sock")
        faults = FaultInjector().script(FaultPlan(yield_turns=30))

        async def main():
            server = IndexServer(
                make_column(), ServerConfig(unix_path=path), faults=faults
            )
            await server.start()
            doomed = await NDJSONClient.connect(path)
            survivors = [await NDJSONClient.connect(path) for _ in range(3)]

            async def fire_and_vanish():
                doomed._writer.write(
                    b'{"op":"access","pos":0,"id":"doomed"}\n'
                )
                await doomed._writer.drain()
                await doomed.close()  # gone before the response lands

            async def survivor(client, i):
                return await client.call(op="access", pos=i % 4, id=i)

            results = await asyncio.gather(
                fire_and_vanish(),
                *[survivor(c, i) for i, c in enumerate(survivors)],
            )
            for client in survivors:
                await client.close()
            await server.stop()
            return results[1:]

        for i, payload in enumerate(run(main())):
            assert payload["ok"] and payload["result"] == VALUES[i % 4]


class TestDrain:
    def test_drain_answers_queued_work_then_rejects_new_requests(self):
        async def main():
            shard = IndexShard("s", make_column(), faults=FaultInjector().script(
                FaultPlan(yield_turns=5)
            ))
            queued = [
                asyncio.ensure_future(
                    shard.submit(Request(op="access", id=i, args={"pos": 0}))
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)  # pump picks the batch up
            await shard.drain()
            late = await shard.submit(Request(op="ping", id="late", args={}))
            return [json.loads(await q) for q in queued], json.loads(late)

        queued, late = run(main())
        assert all(p["ok"] for p in queued)
        assert late["error"]["code"] == "shutting_down"

    def test_server_stop_rejects_dispatch_with_shutting_down(self):
        async def main():
            server = IndexServer(make_column(), ServerConfig(unix_path=None))
            server._stopping = True
            frame = await server.dispatch(
                Request(op="access", id=1, args={"pos": 0})
            )
            return json.loads(frame)

        assert run(main())["error"]["code"] == "shutting_down"
