"""Bounded client pipelining: in-flight limits and FIFO correlation.

The :class:`~repro.serving.server.NDJSONClient` may keep up to
``max_inflight`` frames outstanding on one connection.  The protocol has
no response reordering -- the server answers each connection strictly in
request order -- so the client correlates responses to requests purely by
FIFO position.  The regression pinned here: under full pipelining, with
the server coalescing across the pipelined frames, every future resolves
to *its own* request's response (ids echo back in submission order), the
in-flight bound actually holds, and a dying server fails every
outstanding future instead of hanging them.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.db.column import CompressedColumn
from repro.serving.protocol import encode_request
from repro.serving.server import IndexServer, NDJSONClient, ServerConfig


def make_server(tmp_path, **config_kw) -> IndexServer:
    values = ["app/a", "app/b", "blog"] * 30
    config_kw.setdefault("unix_path", str(tmp_path / "srv.sock"))
    return IndexServer(
        {"default": CompressedColumn("default", values, appendable=True)},
        ServerConfig(**config_kw),
    )


class TestClientPipelining:
    def test_pipelined_responses_correlate_in_submission_order(self, tmp_path):
        async def main():
            server = make_server(tmp_path)
            await server.start()
            try:
                client = await NDJSONClient.connect(
                    server.config.unix_path, max_inflight=16
                )
                # Distinct ops with distinct ids, all in flight at once:
                # the coalescer regroups them per op behind the socket, but
                # the response order back to us must match submission order.
                futures = []
                for i in range(64):
                    if i % 3 == 0:
                        frame = encode_request("access", id=f"id-{i}", pos=i)
                    elif i % 3 == 1:
                        frame = encode_request("rank", id=f"id-{i}", value="app/a", pos=i)
                    else:
                        frame = encode_request("ping", id=f"id-{i}")
                    futures.append(await client.submit(frame))
                responses = [json.loads(await future) for future in futures]
                await client.close()
            finally:
                await server.stop()
            assert [r["id"] for r in responses] == [f"id-{i}" for i in range(64)]
            assert all(r["ok"] for r in responses)
            # Spot-check payload/request pairing, not just id echo.
            assert responses[0]["result"] == "app/a"      # access pos 0
            assert responses[1]["result"] == 1            # rank app/a upto 1
            assert responses[2]["result"] == "pong"       # ping

        asyncio.run(main())

    def test_inflight_bound_is_enforced(self, tmp_path):
        async def main():
            server = make_server(tmp_path)
            await server.start()
            try:
                client = await NDJSONClient.connect(
                    server.config.unix_path, max_inflight=4
                )
                peak = 0

                async def one(i):
                    nonlocal peak
                    future = await client.submit(
                        encode_request("access", id=i, pos=i % 10)
                    )
                    outstanding = client.max_inflight - client._slots._value
                    peak = max(peak, outstanding)
                    return json.loads(await future)

                responses = await asyncio.gather(*(one(i) for i in range(40)))
                await client.close()
            finally:
                await server.stop()
            assert all(r["ok"] for r in responses)
            assert peak <= 4  # never more than max_inflight outstanding

        asyncio.run(main())

    def test_default_client_is_sequential(self, tmp_path):
        async def main():
            server = make_server(tmp_path)
            await server.start()
            try:
                client = await NDJSONClient.connect(server.config.unix_path)
                assert client.max_inflight == 1
                first = await client.call_raw(encode_request("access", id=1, pos=0))
                second = await client.call_raw(encode_request("access", id=2, pos=1))
                await client.close()
            finally:
                await server.stop()
            assert json.loads(first)["id"] == 1
            assert json.loads(second)["id"] == 2

        asyncio.run(main())

    def test_server_death_fails_every_outstanding_future(self, tmp_path):
        async def main():
            server = make_server(tmp_path)
            await server.start()
            client = await NDJSONClient.connect(
                server.config.unix_path, max_inflight=8
            )
            # Handshake once so the server has accepted this connection --
            # a connection still in the listen backlog at stop() time is
            # never handled and would keep its futures pending forever.
            await client.call_raw(encode_request("ping", id="warm"))
            futures = [
                await client.submit(encode_request("access", id=i, pos=i))
                for i in range(8)
            ]
            # Drop the server out from under the pipelined futures.  The
            # graceful stop answers what it accepted, then closes; every
            # future must settle -- answered or ConnectionError, never hung.
            await server.stop()
            settled = await asyncio.gather(*futures, return_exceptions=True)
            assert all(
                isinstance(result, (bytes, ConnectionError)) for result in settled
            )
            # Once broken, new submits fail fast instead of queueing.
            if any(isinstance(result, ConnectionError) for result in settled):
                with pytest.raises(ConnectionError):
                    await client.submit(encode_request("ping", id="late"))
            await client.close()

        asyncio.run(main())
