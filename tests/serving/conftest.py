"""Serving-suite fixtures: a hard per-test timeout and an orphan reaper.

The cluster tests in this directory fork real worker processes.  Two
autouse fixtures keep that safe on CI:

* ``hard_test_timeout`` -- a SIGALRM-based wall-clock ceiling per test.  A
  deadlocked supervisor pump or a worker that never sends its ready
  handshake fails the *test* with a traceback pointing at the stuck await,
  instead of hanging the whole suite until the runner's global timeout.
* ``reap_orphan_workers`` -- after every test, SIGKILLs any worker pid
  still registered in :data:`repro.serving.cluster.LIVE_WORKER_PIDS` (the
  supervisor maintains the registry across spawn and reap).  A test that
  fails mid-cluster therefore cannot leak processes into later tests or
  later CI matrix legs.

Both fixtures are deliberately no-ops on the happy path: a passing test
cancels its alarm and leaves the registry empty.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.serving.cluster import LIVE_WORKER_PIDS

# Generous: the whole cluster suite runs in seconds.  This only fires when
# something is genuinely wedged.
HARD_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def hard_test_timeout(request):
    """Fail (don't hang) any serving test that exceeds the hard ceiling."""
    if os.name != "posix":  # pragma: no cover - SIGALRM is posix-only
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the hard "
            f"{HARD_TIMEOUT_SECONDS}s serving-test timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(HARD_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def reap_orphan_workers():
    """SIGKILL any cluster worker a failing test left behind."""
    yield
    leaked = list(LIVE_WORKER_PIDS)
    LIVE_WORKER_PIDS.clear()
    for pid in leaked:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            continue
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:
            pass
    if leaked:
        pytest.fail(f"test leaked cluster worker processes: pids {sorted(leaked)}")
