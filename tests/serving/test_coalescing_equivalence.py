"""Coalescing equivalence: batched responses byte-identical to serial ones.

Two layers of the same property:

* **Tick level** (pure, no event loop): one :func:`run_read_tick` over a
  mixed batch returns exactly the frames that per-request singleton ticks
  return, which in turn match a hand-rolled scalar replay through
  :class:`~repro.db.column.ColumnSnapshot` -- including every typed error.
* **Server level** (real asyncio, real sockets): the same request set fired
  concurrently over many connections against a coalescing server and a
  coalescing-disabled server yields byte-identical response frames, and the
  coalescing server's metrics prove multi-request batches actually formed.

Randomised cases are seeded -- every run replays the same schedules.
"""

import asyncio
import random

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.db.column import CompressedColumn
from repro.serving import (
    IndexServer,
    NDJSONClient,
    Request,
    ServerConfig,
    encode_error,
    encode_result,
    error_code_for_exception,
    error_message,
    run_read_tick,
)

UNIVERSE = ["app/li", "app/lo", "app/le", "apricot", "banana", "b", ""]
PREFIXES = ["app/", "app/l", "ap", "b", "zzz", ""]
MISSING = ["zebra", "app/lix"]


def make_column(rows: int = 120, seed: int = 7) -> CompressedColumn:
    rng = random.Random(seed)
    return CompressedColumn(
        "urls", [rng.choice(UNIVERSE) for _ in range(rows)], tiered=True
    )


def random_requests(count: int, rows: int, seed: int) -> list:
    """A seeded mix of all five read ops, valid and invalid alike."""
    rng = random.Random(seed)
    requests = []
    for i in range(count):
        op = rng.choice(
            ["access", "rank", "select", "rank_prefix", "select_prefix"]
        )
        value = rng.choice(UNIVERSE + MISSING)
        prefix = rng.choice(PREFIXES + MISSING)
        pos = rng.randint(-2, rows + 2)
        idx = rng.randint(-2, rows + 2)
        args = {
            "access": {"pos": pos},
            "rank": {"value": value, "pos": pos},
            "select": {"value": value, "idx": idx},
            "rank_prefix": {"prefix": prefix, "pos": pos},
            "select_prefix": {"prefix": prefix, "idx": idx},
        }[op]
        requests.append(Request(op=op, id=i, args=args))
    return requests


def scalar_frame(snapshot, request: Request) -> bytes:
    """The serial oracle: one scalar ColumnSnapshot call per request."""
    calls = {
        "access": lambda: snapshot.access(request.args["pos"]),
        "rank": lambda: snapshot.rank(request.args["value"], request.args["pos"]),
        "select": lambda: snapshot.select(
            request.args["value"], request.args["idx"]
        ),
        "rank_prefix": lambda: snapshot.rank_prefix(
            request.args["prefix"], request.args["pos"]
        ),
        "select_prefix": lambda: snapshot.select_prefix(
            request.args["prefix"], request.args["idx"]
        ),
    }
    try:
        result = calls[request.op]()
    except Exception as error:
        return encode_error(
            request.id, error_code_for_exception(error), error_message(error)
        )
    return encode_result(request.id, result, snapshot.version)


class TestTickEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_batched_tick_matches_singleton_ticks_and_scalar_replay(self, seed):
        column = make_column(seed=seed)
        snapshot = column.snapshot()
        requests = random_requests(80, len(column), seed)
        batched = run_read_tick(snapshot, requests)
        singletons = [
            run_read_tick(snapshot, [request])[0] for request in requests
        ]
        assert batched == singletons
        assert batched == [scalar_frame(snapshot, r) for r in requests]

    def test_scalar_results_agree_with_the_naive_oracle(self):
        column = make_column()
        naive = NaiveIndexedSequence(column.values())
        snapshot = column.snapshot()
        requests = [r for r in random_requests(120, len(column), 13)]
        frames = run_read_tick(snapshot, requests)
        import json

        for request, frame in zip(requests, frames):
            payload = json.loads(frame)
            if not payload["ok"]:
                continue
            expected = {
                "access": lambda: naive.access(request.args["pos"]),
                "rank": lambda: naive.rank(
                    request.args["value"], request.args["pos"]
                ),
                "select": lambda: naive.select(
                    request.args["value"], request.args["idx"]
                ),
                "rank_prefix": lambda: naive.rank_prefix(
                    request.args["prefix"], request.args["pos"]
                ),
                "select_prefix": lambda: naive.select_prefix(
                    request.args["prefix"], request.args["idx"]
                ),
            }[request.op]()
            assert payload["result"] == expected, request

    def test_empty_tick(self):
        assert run_read_tick(make_column().snapshot(), []) == []

    def test_duplicate_requests_coalesce_to_identical_frames(self):
        column = make_column()
        snapshot = column.snapshot()
        request = Request(op="rank", id=None, args={"value": "banana", "pos": 50})
        frames = run_read_tick(snapshot, [request] * 17)
        assert len(set(frames)) == 1


async def _serve_and_fire(tmp_path, coalesce: bool, requests, connections: int):
    """Fire the request set over ``connections`` concurrent clients."""
    column = make_column()
    path = str(tmp_path / f"eq-{int(coalesce)}.sock")
    server = IndexServer(
        column, ServerConfig(unix_path=path, coalesce=coalesce)
    )
    await server.start()
    try:
        clients = [
            await NDJSONClient.connect(path) for _ in range(connections)
        ]
        lanes = [requests[i::connections] for i in range(connections)]

        async def lane(client, mine):
            return [
                (request.id, await client.call_raw(_wire(request)))
                for request in mine
            ]

        answers = await asyncio.gather(
            *[lane(c, m) for c, m in zip(clients, lanes)]
        )
        for client in clients:
            await client.close()
        frames = dict(pair for chunk in answers for pair in chunk)
        return frames, server.metrics
    finally:
        await server.stop()


def _wire(request: Request) -> bytes:
    import json

    payload = {"op": request.op, "id": request.id, **request.args}
    return json.dumps(payload).encode() + b"\n"


class TestServerEquivalence:
    def test_concurrent_coalesced_responses_match_serial_server_byte_for_byte(
        self, tmp_path
    ):
        requests = random_requests(192, 120, seed=29)

        async def main():
            coalesced, metrics = await _serve_and_fire(
                tmp_path, True, requests, connections=24
            )
            serial, _ = await _serve_and_fire(
                tmp_path, False, requests, connections=24
            )
            return coalesced, serial, metrics

        coalesced, serial, metrics = asyncio.run(main())
        assert set(coalesced) == set(serial) == {r.id for r in requests}
        for request_id in coalesced:
            assert coalesced[request_id] == serial[request_id]
        # The property is only interesting if batches actually formed.
        assert max(metrics.max_batch.values()) > 1

    def test_serial_server_never_forms_multi_request_batches(self, tmp_path):
        requests = random_requests(64, 120, seed=31)

        async def main():
            return await _serve_and_fire(tmp_path, False, requests, 16)

        _, metrics = asyncio.run(main())
        assert max(metrics.max_batch.values()) == 1
