"""Cross-process determinism: the cluster answers byte-for-byte like the
single-process server.

The headline contract of the sharded cluster is that sharding is
*invisible*: for any sequenced request log (reads pipelined freely, writes
ordered), the frames a :class:`~repro.serving.cluster.ClusterSupervisor`
returns are byte-identical to what one
:class:`~repro.serving.server.IndexServer` over the unsharded column
returns -- same results, same versions, same error codes and messages.

These tests fork real worker processes: data reaches the workers through
RWT2 shard images on disk, subrequests travel over per-worker unix
sockets, and responses scatter-gather back through the supervisor --
everything the production topology does, under deterministic logs.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Dict, List

from repro.db.column import CompressedColumn
from repro.serving.cluster import ClusterConfig, ClusterSupervisor
from repro.serving.protocol import encode_request
from repro.serving.server import IndexServer, NDJSONClient, ServerConfig
from repro.storage.shards import export_shard_images

VALUES = ["app/a", "app/b", "app/cart", "blog/x", "blog", "b", "zzz"]


def make_values(n: int = 240, seed: int = 11) -> List[str]:
    rng = random.Random(seed)
    return [rng.choice(VALUES) for _ in range(n)]


def build_log(n: int, seed: int = 23, writes: bool = True) -> List[bytes]:
    """A deterministic mixed request log over a column of ``n`` rows.

    Tracks the growing length so positions stay interesting (a mix of
    valid, boundary, and out-of-range) as writes land.
    """
    rng = random.Random(seed)
    keys = VALUES + ["app/", "missing", ""]
    ops = ["access", "rank", "select", "rank_prefix", "select_prefix", "ping"]
    if writes:
        ops += ["extend", "append"]
    log: List[bytes] = []
    for i in range(180):
        op = rng.choice(ops)
        if op == "access":
            log.append(encode_request("access", id=i, pos=rng.randrange(-2, n + 40)))
        elif op == "rank":
            log.append(
                encode_request(
                    "rank", id=i, value=rng.choice(keys), pos=rng.randrange(0, n + 40)
                )
            )
        elif op == "select":
            log.append(
                encode_request(
                    "select", id=i, value=rng.choice(keys), idx=rng.randrange(-1, n)
                )
            )
        elif op == "rank_prefix":
            log.append(
                encode_request(
                    "rank_prefix",
                    id=i,
                    prefix=rng.choice(keys),
                    pos=rng.randrange(0, n + 40),
                )
            )
        elif op == "select_prefix":
            log.append(
                encode_request(
                    "select_prefix",
                    id=i,
                    prefix=rng.choice(keys),
                    idx=rng.randrange(0, n),
                )
            )
        elif op == "extend":
            values = [rng.choice(VALUES) for _ in range(rng.randrange(1, 4))]
            log.append(encode_request("extend", id=i, values=values))
            n += len(values)
        elif op == "append":
            log.append(encode_request("append", id=i, value=rng.choice(VALUES)))
            n += 1
        else:
            log.append(encode_request("ping", id=i))
    return log


async def replay(client: NDJSONClient, log: List[bytes]) -> List[bytes]:
    """Sequenced replay: reads pipeline, each write is an order barrier."""
    out: List[bytes] = []
    pending: List["asyncio.Future[bytes]"] = []
    for frame in log:
        if json.loads(frame)["op"] in ("extend", "append"):
            for future in pending:
                out.append(await future)
            pending = []
            out.append(await client.call_raw(frame))
        else:
            pending.append(await client.submit(frame))
    for future in pending:
        out.append(await future)
    return out


async def compare_cluster_to_single(
    tmp_path,
    columns: Dict[str, List[str]],
    log: List[bytes],
    num_workers: int,
) -> None:
    image_dir = tmp_path / f"images-{num_workers}"
    export_shard_images(
        {
            name: CompressedColumn(name, list(values), appendable=True)
            for name, values in columns.items()
        },
        image_dir,
        num_workers,
    )
    cluster = ClusterSupervisor(
        ServerConfig(unix_path=str(tmp_path / f"cluster-{num_workers}.sock")),
        ClusterConfig(image_dir=str(image_dir), restart_backoff=0.0),
    )
    single = IndexServer(
        {
            name: CompressedColumn(name, list(values), appendable=True)
            for name, values in columns.items()
        },
        ServerConfig(unix_path=str(tmp_path / f"single-{num_workers}.sock")),
    )
    await cluster.start()
    await single.start()
    try:
        clustered_client = await NDJSONClient.connect(
            cluster.config.unix_path, max_inflight=32
        )
        single_client = await NDJSONClient.connect(
            single.config.unix_path, max_inflight=32
        )
        clustered = await replay(clustered_client, log)
        unsharded = await replay(single_client, log)
        await clustered_client.close()
        await single_client.close()
    finally:
        await cluster.stop()
        await single.stop()
    assert len(clustered) == len(unsharded) == len(log)
    mismatched = [
        (got, want) for got, want in zip(clustered, unsharded) if got != want
    ]
    assert not mismatched, f"{len(mismatched)} frames differ: {mismatched[:3]}"


class TestClusterDeterminism:
    def test_mixed_log_byte_identical_across_worker_counts(self, tmp_path):
        values = make_values()
        log = build_log(len(values))
        for num_workers in (1, 3, 4):
            asyncio.run(
                compare_cluster_to_single(
                    tmp_path, {"default": values}, log, num_workers
                )
            )

    def test_read_only_log_byte_identical(self, tmp_path):
        values = make_values(150, seed=41)
        log = build_log(len(values), seed=42, writes=False)
        asyncio.run(
            compare_cluster_to_single(tmp_path, {"default": values}, log, 3)
        )

    def test_multi_column_store_routes_per_column(self, tmp_path):
        urls = make_values(120, seed=5)
        tags = [v.split("/")[0] for v in make_values(120, seed=6)]
        rng = random.Random(77)
        log: List[bytes] = []
        for i in range(120):
            name = rng.choice(["urls", "tags"])
            kind = rng.choice(["access", "rank", "extend"])
            if kind == "access":
                log.append(
                    encode_request("access", shard=name, id=i, pos=rng.randrange(0, 140))
                )
            elif kind == "rank":
                log.append(
                    encode_request(
                        "rank",
                        shard=name,
                        id=i,
                        value=rng.choice(VALUES),
                        pos=rng.randrange(0, 140),
                    )
                )
            else:
                log.append(
                    encode_request(
                        "extend", shard=name, id=i, values=[rng.choice(VALUES)]
                    )
                )
        # Frames naming no shard the cluster serves error identically too.
        log.append(encode_request("access", shard="nope", id="x", pos=0))
        asyncio.run(
            compare_cluster_to_single(
                tmp_path, {"urls": urls, "tags": tags}, log, 3
            )
        )

    def test_empty_column_grows_from_nothing(self, tmp_path):
        # All frozen slices empty: every row the cluster serves arrived
        # through the tail worker's write path.
        log = [
            encode_request("access", id="miss", pos=0),
            encode_request("extend", id="w", values=["a", "b", "a"]),
            encode_request("rank", id="r", value="a", pos=3),
            encode_request("select", id="s", value="b", idx=0),
            encode_request("access", id="hit", pos=2),
        ]
        asyncio.run(compare_cluster_to_single(tmp_path, {"default": []}, log, 3))

    def test_merged_stats_count_every_request(self, tmp_path):
        values = make_values(90, seed=9)
        image_dir = tmp_path / "images"
        export_shard_images(
            {"default": CompressedColumn("default", values, appendable=True)},
            image_dir,
            3,
        )

        async def main():
            cluster = ClusterSupervisor(
                ServerConfig(unix_path=str(tmp_path / "sup.sock")),
                ClusterConfig(image_dir=str(image_dir), restart_backoff=0.0),
            )
            await cluster.start()
            try:
                client = await NDJSONClient.connect(
                    cluster.config.unix_path, max_inflight=16
                )
                futures = [
                    await client.submit(encode_request("access", id=i, pos=i))
                    for i in range(20)
                ]
                for future in futures:
                    assert json.loads(await future)["ok"]
                stats = json.loads(
                    await client.call_raw(encode_request("stats", id="s"))
                )["result"]
                await client.close()
            finally:
                await cluster.stop()
            # The supervisor counted each logical request once; the merged
            # view adds the workers' subrequest counts on top.
            assert stats["supervisor_metrics"]["requests"]["access"] == 20
            assert stats["metrics"]["requests"]["access"] >= 20
            merged_access = stats["metrics"]["requests"]["access"]
            summed = stats["supervisor_metrics"]["requests"]["access"] + sum(
                worker["requests"].get("access", 0)
                for worker in stats["worker_metrics"].values()
            )
            assert merged_access == summed
            assert stats["cluster"]["total_restarts"] == 0

        asyncio.run(main())
