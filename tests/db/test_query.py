"""Tests for the declarative query layer over ColumnStore."""

import random

import pytest

from repro.db import ColumnStore, Predicate, Query
from repro.exceptions import InvalidOperationError


@pytest.fixture(scope="module")
def store():
    """A deterministic three-column access-log table."""
    rng = random.Random(1234)
    hosts = ["api.example.com", "api.example.org", "www.example.com", "cdn.other.net"]
    paths = ["/users", "/users/new", "/orders", "/orders/42", "/health", "/admin"]
    statuses = ["200", "200", "200", "404", "500"]
    table = ColumnStore(["host", "path", "status"])
    for _ in range(500):
        table.append_row(
            {
                "host": rng.choice(hosts),
                "path": rng.choice(paths),
                "status": rng.choice(statuses),
            }
        )
    return table


def oracle_rows(store):
    return [store.row(position) for position in range(len(store))]


class TestPredicates:
    def test_eq_matches(self):
        predicate = Predicate.eq("status", "404")
        assert predicate.matches("404")
        assert not predicate.matches("200")

    def test_prefix_matches(self):
        predicate = Predicate.prefix("path", "/users")
        assert predicate.matches("/users/new")
        assert not predicate.matches("/orders")

    def test_in_matches(self):
        predicate = Predicate.is_in("status", ["404", "500"])
        assert predicate.matches("500")
        assert not predicate.matches("200")

    def test_selectivity_is_exact(self, store):
        rows = oracle_rows(store)
        predicate = Predicate.eq("status", "404")
        assert predicate.selectivity(store, 0, len(store)) == sum(
            1 for row in rows if row["status"] == "404"
        )
        prefix = Predicate.prefix("host", "api.")
        assert prefix.selectivity(store, 100, 400) == sum(
            1 for row in rows[100:400] if row["host"].startswith("api.")
        )

    def test_describe(self):
        assert Predicate.eq("a", "x").describe() == "a = 'x'"
        assert "LIKE" in Predicate.prefix("a", "x").describe()
        assert "IN" in Predicate.is_in("a", ["x", "y"]).describe()


class TestQueryExecution:
    def test_no_predicates_returns_everything(self, store):
        assert Query(store).count() == len(store)
        assert Query(store).positions() == list(range(len(store)))

    def test_single_eq(self, store):
        rows = oracle_rows(store)
        expected = [i for i, row in enumerate(rows) if row["status"] == "500"]
        assert Query(store).where_eq("status", "500").positions() == expected

    def test_single_prefix(self, store):
        rows = oracle_rows(store)
        expected = [i for i, row in enumerate(rows) if row["path"].startswith("/orders")]
        assert Query(store).where_prefix("path", "/orders").positions() == expected

    def test_conjunction(self, store):
        rows = oracle_rows(store)
        expected = [
            i
            for i, row in enumerate(rows)
            if row["status"] == "404" and row["host"].startswith("api.")
        ]
        query = Query(store).where_eq("status", "404").where_prefix("host", "api.")
        assert query.positions() == expected
        assert query.count() == len(expected)

    def test_three_way_conjunction(self, store):
        rows = oracle_rows(store)
        expected = [
            i
            for i, row in enumerate(rows)
            if row["status"] == "200"
            and row["host"] == "cdn.other.net"
            and row["path"].startswith("/users")
        ]
        query = (
            Query(store)
            .where_eq("status", "200")
            .where_eq("host", "cdn.other.net")
            .where_prefix("path", "/users")
        )
        assert query.positions() == expected

    def test_in_predicate(self, store):
        rows = oracle_rows(store)
        expected = [i for i, row in enumerate(rows) if row["status"] in ("404", "500")]
        assert Query(store).where_in("status", ["404", "500"]).positions() == expected

    def test_in_predicate_positions_are_sorted_unique(self, store):
        positions = Query(store).where_in("path", ["/users", "/users"]).positions()
        assert positions == sorted(set(positions))

    def test_row_range_restriction(self, store):
        rows = oracle_rows(store)
        expected = [
            i for i, row in enumerate(rows) if 100 <= i < 300 and row["status"] == "200"
        ]
        assert (
            Query(store).where_eq("status", "200").in_rows(100, 300).positions()
            == expected
        )

    def test_row_range_beyond_end_is_clamped(self, store):
        query = Query(store).in_rows(490, 10_000)
        assert query.count() == 10

    def test_limit(self, store):
        rows = oracle_rows(store)
        expected = [i for i, row in enumerate(rows) if row["status"] == "200"][:7]
        query = Query(store).where_eq("status", "200").limit(7)
        assert query.positions() == expected
        assert query.count() == 7

    def test_limit_zero(self, store):
        assert Query(store).where_eq("status", "200").limit(0).positions() == []

    def test_rows_and_projection(self, store):
        result = (
            Query(store)
            .where_eq("status", "500")
            .select("host", "status")
            .limit(3)
            .rows()
        )
        assert len(result) == 3
        assert all(set(row) == {"host", "status"} for row in result)
        assert all(row["status"] == "500" for row in result)

    def test_first(self, store):
        rows = oracle_rows(store)
        expected_position = next(
            i for i, row in enumerate(rows) if row["status"] == "404"
        )
        first = Query(store).where_eq("status", "404").first()
        assert first == rows[expected_position]

    def test_first_no_match(self, store):
        assert Query(store).where_eq("status", "999").first() is None

    def test_empty_result(self, store):
        query = Query(store).where_eq("host", "missing.example").where_eq("status", "200")
        assert query.positions() == []
        assert query.count() == 0
        assert query.rows() == []

    def test_group_by_count_without_predicates(self, store):
        rows = oracle_rows(store)
        expected = {}
        for row in rows:
            expected[row["status"]] = expected.get(row["status"], 0) + 1
        grouped = dict(Query(store).group_by_count("status"))
        assert grouped == expected

    def test_group_by_count_with_predicates(self, store):
        rows = oracle_rows(store)
        expected = {}
        for row in rows:
            if row["host"].startswith("api."):
                expected[row["status"]] = expected.get(row["status"], 0) + 1
        grouped = dict(Query(store).where_prefix("host", "api.").group_by_count("status"))
        assert grouped == expected

    def test_group_by_respects_row_range(self, store):
        rows = oracle_rows(store)
        expected = {}
        for row in rows[50:150]:
            expected[row["path"]] = expected.get(row["path"], 0) + 1
        grouped = dict(Query(store).in_rows(50, 150).group_by_count("path"))
        assert grouped == expected


class TestPlanning:
    def test_most_selective_predicate_drives(self, store):
        query = Query(store).where_eq("status", "500").where_prefix("path", "/")
        plan = query.plan()
        # "/" matches every row; the status filter is far more selective.
        assert plan.driver.column == "status"
        assert plan.residual[0].column == "path"

    def test_explain_mentions_driver_and_residual(self, store):
        text = (
            Query(store)
            .where_eq("status", "500")
            .where_prefix("host", "api.")
            .explain()
        )
        assert "drive with" in text
        assert "verify" in text

    def test_explain_full_scan(self, store):
        assert "full scan" in Query(store).explain()

    def test_estimated_rows_matches_count_for_single_predicate(self, store):
        query = Query(store).where_eq("status", "404")
        assert query.plan().estimated_rows == query.count()


class TestValidation:
    def test_unknown_column_rejected_eagerly(self, store):
        with pytest.raises(InvalidOperationError):
            Query(store).where_eq("nope", "x")
        with pytest.raises(InvalidOperationError):
            Query(store).select("nope")

    def test_negative_limit_rejected(self, store):
        with pytest.raises(InvalidOperationError):
            Query(store).limit(-1)

    def test_invalid_row_range_rejected(self, store):
        with pytest.raises(InvalidOperationError):
            Query(store).in_rows(10, 5)
        with pytest.raises(InvalidOperationError):
            Query(store).in_rows(-1)
