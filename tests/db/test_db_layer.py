"""Tests for the column-store / log-analytics application layer."""

import random
from collections import Counter

import pytest

from repro.db import AccessLogStore, ColumnStore, CompressedColumn
from repro.exceptions import InvalidOperationError, OutOfBoundsError


class TestCompressedColumn:
    def test_append_and_reads(self, column_values):
        column = CompressedColumn("location")
        column.extend(column_values[:200])
        assert len(column) == 200
        assert column.value_at(17) == column_values[17]
        value = column_values[0]
        assert column.count_eq(value) == column_values[:200].count(value)
        assert list(column.rows_eq(value, limit=3)) == [
            i for i, v in enumerate(column_values[:200]) if v == value
        ][:3]
        assert column.count_prefix("emea/") == sum(
            1 for v in column_values[:200] if v.startswith("emea/")
        )
        assert dict(column.distinct()) == dict(Counter(column_values[:200]))

    def test_static_column_rejects_append(self, column_values):
        column = CompressedColumn("loc", column_values[:50], appendable=False)
        with pytest.raises(InvalidOperationError):
            column.append("x")
        assert column.value_at(0) == column_values[0]

    def test_group_by_and_top_values(self, column_values):
        column = CompressedColumn("loc", column_values[:300])
        groups = dict(column.group_by_count(50, 250))
        assert groups == dict(Counter(column_values[50:250]))
        top = column.top_values(3)
        counts = Counter(column_values[:300])
        assert top[0][1] == counts.most_common(1)[0][1]

    def test_values_scan(self, column_values):
        column = CompressedColumn("loc", column_values[:80])
        assert list(column.values(10, 60)) == column_values[10:60]

    def test_tiered_column_matches_appendable_reads(self, column_values):
        """A tiered column supports the full read surface with the same
        answers as the append-only one, while absorbing sustained writes
        through its compacting index."""
        from repro.core.tiers import TieredWaveletTrie

        values = column_values[:300]
        tiered = CompressedColumn("loc", tiered=True)
        tiered._index.active_capacity = 64  # several tiers for this test
        reference = CompressedColumn("loc")
        tiered.extend(values)
        reference.extend(values)
        assert type(tiered.index) is TieredWaveletTrie
        assert tiered.appendable
        assert tiered.index.tier_count > 1
        assert len(tiered) == len(reference)
        assert [tiered.value_at(i) for i in range(0, 300, 17)] == [
            reference.value_at(i) for i in range(0, 300, 17)
        ]
        probe = values[0]
        assert tiered.count_eq(probe) == reference.count_eq(probe)
        assert list(tiered.rows_eq(probe)) == list(reference.rows_eq(probe))
        assert tiered.count_prefix("emea/") == reference.count_prefix("emea/")
        assert list(tiered.rows_prefix("emea/", limit=5)) == list(
            reference.rows_prefix("emea/", limit=5)
        )
        assert dict(tiered.distinct()) == dict(reference.distinct())
        assert dict(tiered.group_by_count(50, 250)) == dict(
            reference.group_by_count(50, 250)
        )
        assert tiered.top_values(3)[0][1] == reference.top_values(3)[0][1]
        assert list(tiered.values(10, 200)) == values[10:200]
        tiered.append("amer/new-city/site-99")
        assert tiered.value_at(300) == "amer/new-city/site-99"


class TestColumnStore:
    def build(self, rows=150):
        rng = random.Random(1)
        table = ColumnStore(["city", "status", "service"])
        data = []
        for index in range(rows):
            row = {
                "city": rng.choice(["emea/rome", "emea/pisa", "amer/austin"]),
                "status": rng.choice(["ok", "ok", "err"]),
                "service": rng.choice(["web", "api"]),
            }
            data.append(row)
            assert table.append_row(row) == index
        return table, data

    def test_row_roundtrip(self):
        table, data = self.build()
        assert len(table) == len(data)
        for index in (0, 17, len(data) - 1):
            assert table.row(index) == data[index]
        with pytest.raises(OutOfBoundsError):
            table.row(len(data))

    def test_filters(self):
        table, data = self.build()
        expected = [i for i, row in enumerate(data) if row["status"] == "err"]
        assert table.filter_eq("status", "err") == expected
        expected_prefix = [i for i, row in enumerate(data) if row["city"].startswith("emea/")]
        assert table.filter_prefix("city", "emea/") == expected_prefix
        combined = table.filter({"status": "err", "service": "web"}, {"city": "emea/"})
        expected_combined = [
            i for i, row in enumerate(data)
            if row["status"] == "err" and row["service"] == "web"
            and row["city"].startswith("emea/")
        ]
        assert combined == expected_combined
        assert table.count_where({"status": "err"}) == len(expected)
        assert table.count_where({}, {"city": "emea/"}) == len(expected_prefix)
        assert table.count_where({}) == len(data)

    def test_projection_and_groupby(self):
        table, data = self.build()
        rows = table.project([0, 5], ["city"])
        assert rows == [{"city": data[0]["city"]}, {"city": data[5]["city"]}]
        groups = dict(table.group_by_count("service"))
        assert groups == dict(Counter(row["service"] for row in data))

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            ColumnStore([])
        with pytest.raises(ValueError):
            ColumnStore(["a", "a"])
        table = ColumnStore(["a", "b"])
        with pytest.raises(InvalidOperationError):
            table.append_row({"a": "x"})
        with pytest.raises(InvalidOperationError):
            table.column("missing")

    def test_size_reporting(self):
        table, _ = self.build(60)
        assert table.size_in_bits() > 0


class TestAccessLogStore:
    def build(self, url_log):
        store = AccessLogStore()
        for tick, url in enumerate(url_log[:300]):
            store.append(url, timestamp=tick * 5)
        return store

    def test_window_translation(self, url_log):
        store = self.build(url_log)
        assert store.window(0, 5 * 300) == (0, 300)
        assert store.window(50, 100) == (10, 20)
        assert store.window(10_000, 20_000) == (300, 300)

    def test_timestamps_must_be_monotone(self):
        store = AccessLogStore()
        store.append("/a", 10)
        with pytest.raises(ValueError):
            store.append("/b", 5)

    def test_default_timestamps(self):
        store = AccessLogStore()
        store.append("/a")
        store.append("/b")
        assert store.entry(1) == (1, "/b")

    def test_windowed_analytics_match_reference(self, url_log):
        store = self.build(url_log)
        values = url_log[:300]
        start_time, end_time = 250, 1000
        low, high = store.window(start_time, end_time)
        window_values = values[low:high]
        domain = values[0].split("/")[2]
        prefix = f"http://{domain}/"
        assert store.count_prefix(prefix, start_time, end_time) == sum(
            1 for v in window_values if v.startswith(prefix)
        )
        assert store.count_url(values[0], start_time, end_time) == window_values.count(values[0])
        counter = Counter(window_values)
        top = store.top_urls(3, start_time, end_time)
        assert top[0][1] == counter.most_common(1)[0][1]
        distinct = dict(store.distinct_urls(start_time, end_time))
        assert distinct == dict(counter)
        majority = store.majority_url(start_time, end_time)
        best, best_count = counter.most_common(1)[0]
        assert majority == ((best, best_count) if best_count > len(window_values) / 2 else None)
        accesses = store.accesses_under(prefix, start_time, end_time, limit=5)
        expected_positions = [i for i in range(low, high) if values[i].startswith(prefix)][:5]
        assert [url for _, url in accesses] == [values[i] for i in expected_positions]
        assert [ts for ts, _ in accesses] == [i * 5 for i in expected_positions]

    def test_empty_windows(self, url_log):
        store = self.build(url_log)
        assert store.top_urls(3, 5000, 5000) == []
        assert store.distinct_urls(9999, 10000) == []
        assert store.majority_url(9999, 10000) is None
