"""Tests for the temporal graph store (the paper's social-network scenario)."""

import random

import pytest

from repro.db.graph_store import TemporalGraphStore
from repro.exceptions import InvalidOperationError
from repro.workloads import EdgeStreamGenerator


class TestBasics:
    def test_empty(self):
        graph = TemporalGraphStore()
        assert len(graph) == 0
        assert graph.neighbors_at("alice", 100) == []
        assert graph.degree_at("alice", 100) == 0
        assert not graph.has_edge("alice", "bob", 100)
        assert graph.top_edges(3, 0, 100) == []
        assert graph.active_vertices(0, 100) == []

    def test_add_and_query(self):
        graph = TemporalGraphStore()
        graph.add_edge("alice", "bob", timestamp=1)
        graph.add_edge("alice", "carol", timestamp=2)
        graph.add_edge("bob", "carol", timestamp=3)
        assert graph.addition_count == 3
        assert graph.removal_count == 0
        assert graph.neighbors_at("alice", 10) == ["bob", "carol"]
        assert graph.neighbors_at("bob", 10) == ["carol"]
        assert graph.degree_at("alice", 10) == 2
        assert graph.has_edge("alice", "bob", 10)
        assert not graph.has_edge("carol", "alice", 10)

    def test_snapshot_respects_time(self):
        graph = TemporalGraphStore()
        graph.add_edge("alice", "bob", timestamp=5)
        graph.add_edge("alice", "carol", timestamp=10)
        # Snapshots are "strictly before": at time 5 nothing is visible yet.
        assert graph.neighbors_at("alice", 5) == []
        assert graph.neighbors_at("alice", 6) == ["bob"]
        assert graph.neighbors_at("alice", 11) == ["bob", "carol"]

    def test_remove_edge(self):
        graph = TemporalGraphStore()
        graph.add_edge("alice", "bob", timestamp=1)
        graph.add_edge("alice", "carol", timestamp=2)
        graph.remove_edge("alice", "bob", timestamp=7)
        assert graph.neighbors_at("alice", 5) == ["bob", "carol"]
        assert graph.neighbors_at("alice", 8) == ["carol"]
        assert not graph.has_edge("alice", "bob", 8)
        assert graph.removal_count == 1

    def test_readd_after_removal(self):
        graph = TemporalGraphStore()
        graph.add_edge("a", "b", timestamp=1)
        graph.remove_edge("a", "b", timestamp=2)
        graph.add_edge("a", "b", timestamp=3)
        assert graph.has_edge("a", "b", 4)
        assert graph.edge_multiplicity("a", "b", 4) == 1

    def test_remove_missing_edge_raises(self):
        graph = TemporalGraphStore()
        graph.add_edge("alice", "bob", timestamp=1)
        with pytest.raises(InvalidOperationError):
            graph.remove_edge("alice", "carol", timestamp=2)

    def test_remove_missing_edge_allowed_when_unchecked(self):
        graph = TemporalGraphStore(check_consistency=False)
        graph.remove_edge("alice", "carol", timestamp=2)
        assert graph.removal_count == 1
        assert graph.edge_multiplicity("alice", "carol", 10) == -1

    def test_timestamps_must_not_decrease(self):
        graph = TemporalGraphStore()
        graph.add_edge("a", "b", timestamp=10)
        with pytest.raises(ValueError):
            graph.add_edge("a", "c", timestamp=5)

    def test_default_timestamps_are_ticks(self):
        graph = TemporalGraphStore()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        graph.add_edge("a", "d")
        assert graph.neighbors_at("a", 1) == ["b"]
        assert graph.neighbors_at("a", 3) == ["b", "c", "d"]

    def test_edge_key_roundtrip(self):
        key = TemporalGraphStore.edge_key("http://sn/u/1", "http://sn/u/2")
        assert TemporalGraphStore.split_edge_key(key) == ("http://sn/u/1", "http://sn/u/2")


class TestWindows:
    @pytest.fixture()
    def graph(self):
        graph = TemporalGraphStore()
        graph.add_edge("alice", "bob", timestamp=1)
        graph.add_edge("alice", "carol", timestamp=3)
        graph.add_edge("dave", "alice", timestamp=4)
        graph.remove_edge("alice", "bob", timestamp=6)
        graph.add_edge("alice", "erin", timestamp=8)
        graph.add_edge("alice", "erin", timestamp=9)
        return graph

    def test_adjacency_changes(self, graph):
        # Window [2, 7): carol was added, bob removed.
        assert graph.adjacency_changes("alice", 2, 7) == {"carol": 1, "bob": -1}

    def test_adjacency_changes_cancel_out(self):
        graph = TemporalGraphStore()
        graph.add_edge("a", "b", timestamp=1)
        graph.remove_edge("a", "b", timestamp=2)
        assert graph.adjacency_changes("a", 0, 10) == {}

    def test_activity(self, graph):
        assert graph.activity("alice", 0, 10) == 5  # 4 additions + 1 removal
        assert graph.activity("dave", 0, 10) == 1
        assert graph.activity("alice", 7, 10) == 2

    def test_top_edges(self, graph):
        top = graph.top_edges(1, 0, 20)
        assert top == [(TemporalGraphStore.edge_key("alice", "erin"), 2)]
        restricted = graph.top_edges(2, 0, 20, source="dave")
        assert restricted == [(TemporalGraphStore.edge_key("dave", "alice"), 1)]

    def test_active_vertices(self, graph):
        ranking = graph.active_vertices(0, 20)
        assert ranking[0] == ("alice", 4)
        assert ("dave", 1) in ranking

    def test_empty_window(self, graph):
        assert graph.adjacency_changes("alice", 100, 200) == {}
        assert graph.top_edges(5, 100, 200) == []
        assert graph.activity("alice", 100, 200) == 0


class TestAgainstOracle:
    """Replay a synthetic edge stream and compare against dict-based bookkeeping."""

    def test_random_add_remove_stream(self):
        rng = random.Random(4242)
        generator = EdgeStreamGenerator(initial_vertices=5, seed=77)
        graph = TemporalGraphStore()
        oracle = {}  # (src, dst) -> multiplicity
        history = []  # snapshots to verify: (time, src, expected neighbor set)
        time = 0
        for _ in range(400):
            time += rng.randrange(1, 3)
            live_edges = [edge for edge, count in oracle.items() if count > 0]
            if live_edges and rng.random() < 0.3:
                src, dst = rng.choice(live_edges)
                graph.remove_edge(src, dst, timestamp=time)
                oracle[(src, dst)] -= 1
            else:
                src, dst = generator.generate_edge()
                graph.add_edge(src, dst, timestamp=time)
                oracle[(src, dst)] = oracle.get((src, dst), 0) + 1
            if rng.random() < 0.1:
                vertex = src
                expected = sorted(
                    {d for (s, d), count in oracle.items() if s == vertex and count > 0}
                )
                history.append((time + 1, vertex, expected))

        assert len(graph) == 400
        for as_of, vertex, expected in history[-25:]:
            assert graph.neighbors_at(vertex, as_of) == expected, (as_of, vertex)
        # Final snapshot for a handful of vertices.
        final_time = time + 1
        vertices = {src for (src, _dst) in oracle}
        for vertex in sorted(vertices)[:10]:
            expected = sorted(
                {d for (s, d), count in oracle.items() if s == vertex and count > 0}
            )
            assert graph.neighbors_at(vertex, final_time) == expected
            assert graph.degree_at(vertex, final_time) == len(expected)

    def test_size_is_compressed(self):
        generator = EdgeStreamGenerator(initial_vertices=6, seed=13)
        graph = TemporalGraphStore()
        raw_bits = 0
        for _ in range(800):
            src, dst = generator.generate_edge()
            graph.add_edge(src, dst)
            raw_bits += 8 * (len(src) + len(dst) + 4)
        # Total (including the O(|Sset| w) pointer term) stays below the raw
        # encoding; the compressed payload (labels + node bitvectors) is well
        # under half of it thanks to the shared URI namespace.
        assert graph.size_in_bits() < raw_bits
        payload = (
            graph._additions.label_bits()
            + graph._additions.bitvector_bits()
            + graph._removals.label_bits()
            + graph._removals.bitvector_bits()
        )
        assert payload < raw_bits / 2
