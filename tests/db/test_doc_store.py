"""Differential tests for the FM-index-backed document store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import DocumentStore
from repro.exceptions import OutOfBoundsError
from repro.storage.serializers import read_object, write_object


def naive_locate(documents, pattern):
    matches = []
    for doc, document in enumerate(documents):
        start = 0
        while True:
            found = document.find(pattern, start)
            if found < 0:
                break
            matches.append((doc, found))
            start = found + 1
    return matches


DOCS = st.lists(st.text(alphabet="abc ", max_size=12), max_size=8)


class TestDocumentStore:
    def test_document_roundtrip(self):
        documents = ["alpha", "", "beta gamma", "alpha"]
        store = DocumentStore(documents, sa_sample=4)
        assert len(store) == 4
        assert [store.document(i) for i in range(4)] == documents
        with pytest.raises(OutOfBoundsError):
            store.document(4)
        with pytest.raises(OutOfBoundsError):
            store.document(-1)

    def test_count_and_locate_against_oracle(self):
        documents = ["the quick fox", "lazy dog", "", "foxtrot the fox"]
        store = DocumentStore(documents, sa_sample=4)
        for pattern in ["the", "fox", "o", "zebra", "lazy dog", " "]:
            expected = naive_locate(documents, pattern)
            assert store.count(pattern) == len(expected)
            assert store.locate(pattern) == expected
        assert store.count_many(["the", "fox", "zebra"]) == [2, 3, 0]
        assert store.count_in_document(3, "fox") == 2
        assert store.locate_in_document(3, "fox") == [0, 12]
        with pytest.raises(OutOfBoundsError):
            store.count_in_document(9, "fox")

    @given(documents=DOCS, pattern=st.text(alphabet="abc ", min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_oracle(self, documents, pattern):
        store = DocumentStore(documents, sa_sample=3)
        expected = naive_locate(documents, pattern)
        assert store.count(pattern) == len(expected)
        assert store.locate(pattern) == expected
        for doc, document in enumerate(documents):
            assert store.document(doc) == document

    def test_matches_never_cross_document_boundaries(self):
        # "endstart" spans the join of the two documents; the separator
        # keeps it from matching.
        store = DocumentStore(["the end", "start here"], sa_sample=4)
        assert store.count("endstart") == 0
        assert store.count("end") == 1 and store.count("start") == 1

    def test_pattern_validation(self):
        store = DocumentStore(["abc"])
        with pytest.raises(ValueError):
            store.count("")
        with pytest.raises(ValueError):
            store.locate("a\x00b")
        with pytest.raises(TypeError):
            store.count(7)

    def test_nul_documents_rejected(self):
        with pytest.raises(ValueError):
            DocumentStore(["fine", "bad\x00doc"])

    def test_empty_store(self):
        store = DocumentStore([])
        assert len(store) == 0
        assert store.count("x") == 0 and store.locate("x") == []
        assert store.size_in_bits() >= 0

    @pytest.mark.parametrize("kind", ["plain", "rrr"])
    def test_serialization_roundtrip(self, kind):
        documents = ["alpha beta", "", "beta gamma", "gamma alpha"]
        store = DocumentStore(documents, sa_sample=8, bitvector=kind)
        tag, payload = write_object(store)
        assert tag == 9
        loaded = read_object(tag, payload)
        assert len(loaded) == len(store)
        assert [loaded.document(i) for i in range(4)] == documents
        for pattern in ["beta", "gamma", "zz", " "]:
            assert loaded.locate(pattern) == store.locate(pattern)
        assert loaded.fm_index.bitvector_kind == kind
        assert loaded.fm_index.sa_sample == 8
