"""Tests for the gap-encoded dynamic bitvector (the Remark 4.2 comparison point)."""

import pytest

from repro.bitvector import DynamicBitVector, GapEncodedBitVector
from repro.exceptions import OutOfBoundsError

from tests.conftest import reference_rank, reference_select


class TestGapEncodedBitVector:
    def test_matches_oracle(self, random_bits):
        bits = random_bits[:800]
        vector = GapEncodedBitVector(bits)
        assert vector.to_list() == bits
        for pos in (0, 17, 400, 800):
            assert vector.rank(1, pos) == reference_rank(bits, 1, pos)
            assert vector.rank(0, pos) == reference_rank(bits, 0, pos)
        assert vector.select(1, 10) == reference_select(bits, 1, 10)
        assert vector.select(0, 10) == reference_select(bits, 0, 10)

    def test_insert_delete(self):
        vector = GapEncodedBitVector([0, 1, 0])
        vector.insert(1, 1)
        assert vector.to_list() == [0, 1, 1, 0]
        assert vector.delete(0) == 0
        assert vector.to_list() == [1, 1, 0]
        with pytest.raises(OutOfBoundsError):
            vector.delete(3)
        with pytest.raises(OutOfBoundsError):
            vector.insert(5, 1)

    def test_gaps(self):
        vector = GapEncodedBitVector([0, 0, 1, 0, 1, 1, 0])
        assert list(vector.gaps()) == [2, 1, 0]

    def test_gaps_single_runs_pass_matches_select_walks(self, bursty_bits):
        """The O(r + m) runs-based gaps() must equal the definitional
        per-1-bit select computation it replaced."""
        bits = bursty_bits[:600]
        vector = GapEncodedBitVector(bits)
        expected = []
        previous = -1
        for idx in range(vector.ones):
            position = vector.select(1, idx)
            expected.append(position - previous - 1)
            previous = position
        assert list(vector.gaps()) == expected
        assert len(expected) == sum(bits)

    def test_size_in_bits_matches_per_gap_sum(self, bursty_bits):
        from repro.bits.codes import delta_code_length

        vector = GapEncodedBitVector(bursty_bits[:600])
        expected = 64 + sum(delta_code_length(gap + 1) for gap in vector.gaps())
        assert vector.size_in_bits() == expected

    def test_gaps_empty_and_all_ones(self):
        assert list(GapEncodedBitVector().gaps()) == []
        assert list(GapEncodedBitVector([0, 0, 0]).gaps()) == []
        assert list(GapEncodedBitVector([1, 1, 1]).gaps()) == [0, 0, 0]

    def test_extend_matches_per_bit_append(self):
        bulk = GapEncodedBitVector([1, 0])
        bulk.extend([0, 1, 1, 0])
        reference = GapEncodedBitVector()
        for bit in [1, 0, 0, 1, 1, 0]:
            reference.append(bit)
        assert bulk.to_list() == reference.to_list()
        assert len(bulk) == 6
        assert bulk.size_in_bits() == reference.size_in_bits()

    def test_space_depends_on_ones_not_length(self):
        sparse = GapEncodedBitVector([0] * 5000 + [1])
        dense_runs = DynamicBitVector([0] * 5000 + [1])
        # Gap encoding is tiny for sparse data...
        assert sparse.size_in_bits() < 128
        assert dense_runs.size_in_bits() < 128

    def test_init_run_asymmetry(self):
        """Init(0, n) is cheap, Init(1, n) degrades -- exactly Remark 4.2."""
        zeros = GapEncodedBitVector.init_run(0, 100_000)
        assert len(zeros) == 100_000
        assert zeros.rank(1, 100_000) == 0
        ones = GapEncodedBitVector.init_run(1, 500)
        assert len(ones) == 500
        assert ones.rank(1, 500) == 500
        # The RLE-based bitvector of Section 4.2 does not pay per-one space.
        rle = DynamicBitVector.init_run(1, 100_000)
        assert rle.size_in_bits() < 128
        assert ones.size_in_bits() > 500  # one delta code per 1 bit
