"""De-amortised freeze regression: no append pays the stop-the-world cost.

The seed implementation froze the whole tail into an RRR block the moment it
filled -- one O(block_size) combinatorial pass on a single unlucky ``append``.
The staged two-buffer handoff must instead bound the encoding work of *every*
append by the configured budget, while staying exactly correct mid-flight.
"""

import random

from repro.bitvector.append_only import AppendOnlyBitVector
from repro.bitvector.rrr import IncrementalRRRBuilder, RRRBitVector


class TestBoundedPerAppendWork:
    def test_freeze_work_never_exceeds_budget(self):
        """With budget b, every append encodes at most b RRR blocks -- never
        the ~block_size/63 blocks of a stop-the-world freeze."""
        for budget in (1, 2, 5):
            vector = AppendOnlyBitVector(
                block_size=1024, freeze_blocks_per_append=budget
            )
            worst = 0
            for i in range(5000):
                vector.append(i % 3 == 0)
                worst = max(worst, vector.last_freeze_blocks)
            assert worst <= budget
            assert vector.block_count >= 4  # freezes actually happened

    def test_bulk_refill_cannot_force_a_synchronous_freeze(self):
        """A bulk extend may refill the tail while a stage is still in
        flight; subsequent appends must keep draining at the budget (the
        tail transiently overshoots block_size by a bounded amount) rather
        than ever finishing the stage synchronously."""
        block = 1024
        vector = AppendOnlyBitVector(block_size=block, freeze_blocks_per_append=1)
        reference = []

        def push(bit):
            vector.append(bit)
            reference.append(bit)

        for i in range(block + 1):  # fills the tail, stage starts draining
            push(i & 1)
        assert vector.pending_freeze_bits > 0
        filler = [1, 0] * ((block - 2) // 2)  # refill the tail in bulk
        vector.extend(filler)
        reference.extend(filler)
        assert vector.pending_freeze_bits > 0  # bulk did not touch the stage
        worst = 0
        max_tail = 0
        stage_blocks = (block + 62) // 63
        for i in range(3 * block):
            push(i % 5 == 0)
            worst = max(worst, vector.last_freeze_blocks)
            max_tail = max(max_tail, len(vector._tail))
        assert worst <= 1  # never the ~stage_blocks stop-the-world pass
        assert max_tail <= block + stage_blocks + 1  # bounded overshoot
        assert vector.to_list() == reference

    def test_stage_drains_before_tail_refills(self):
        """Budget 1 is already enough: ceil(block_size / 63) encode steps
        always finish long before block_size further appends arrive, so a
        handoff never meets an unfinished stage on the bounded path."""
        vector = AppendOnlyBitVector(block_size=64, freeze_blocks_per_append=1)
        for i in range(64):
            vector.append(i & 1)
        assert vector.pending_freeze_bits > 0  # stage just handed off
        vector.append(1)
        vector.append(0)
        assert vector.pending_freeze_bits == 0  # drained within 2 appends
        assert vector.block_count == 1

    def test_zero_budget_restores_stop_the_world(self):
        vector = AppendOnlyBitVector(block_size=128, freeze_blocks_per_append=0)
        for i in range(128):
            vector.append(i & 1)
        # The freeze happened synchronously inside the filling append, and
        # last_freeze_blocks reports the full stop-the-world cost honestly.
        assert vector.pending_freeze_bits == 0
        assert vector.block_count == 1
        assert vector.last_freeze_blocks == (128 + 62) // 63

    def test_queries_exact_while_stage_in_flight(self):
        rng = random.Random(31)
        vector = AppendOnlyBitVector(block_size=256, freeze_blocks_per_append=1)
        reference = []
        for step in range(1200):
            bit = rng.randint(0, 1)
            vector.append(bit)
            reference.append(bit)
            if step % 83 == 0:
                pos = rng.randint(0, len(reference))
                assert vector.rank(1, pos) == sum(reference[:pos])
                assert vector.access(len(reference) - 1) == reference[-1]
        assert vector.to_list() == reference
        assert vector.ones == sum(reference)

    def test_incremental_builder_matches_direct_construction(self):
        rng = random.Random(9)
        bits = [rng.randint(0, 1) for _ in range(1000)]
        direct = RRRBitVector(bits)
        from repro.bits.bitstring import Bits
        from repro.bits import kernel

        payload = Bits.from_iterable(bits)
        builder = IncrementalRRRBuilder(
            kernel.pack_value(payload.value, len(payload)),
            len(payload),
            payload.popcount(),
        )
        steps = 0
        while not builder.done:
            assert builder.encode_blocks(1) == 1
            steps += 1
        block = builder.finish()
        assert steps == (1000 + 62) // 63
        assert block.to_list() == direct.to_list()
        assert block.size_in_bits() == direct.size_in_bits()
        for pos in range(0, 1001, 37):
            assert block.rank(1, pos) == direct.rank(1, pos)
