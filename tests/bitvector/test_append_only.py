"""Tests for the append-only compressed bitvector (paper Theorem 4.5)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitvector.append_only import AppendOnlyBitVector
from repro.exceptions import OutOfBoundsError

from tests.conftest import reference_rank, reference_select


class TestAppendOnlyBitVector:
    def test_append_and_query(self, random_bits):
        vector = AppendOnlyBitVector(block_size=256)
        for bit in random_bits:
            vector.append(bit)
        assert len(vector) == len(random_bits)
        assert vector.ones == sum(random_bits)
        assert vector.to_list() == random_bits
        for pos in (0, 255, 256, 257, 1000, len(random_bits)):
            assert vector.rank(1, pos) == reference_rank(random_bits, 1, pos)
            assert vector.rank(0, pos) == reference_rank(random_bits, 0, pos)
        for idx in (0, 100, sum(random_bits) - 1):
            assert vector.select(1, idx) == reference_select(random_bits, 1, idx)
        zeros = len(random_bits) - sum(random_bits)
        assert vector.select(0, zeros - 1) == reference_select(random_bits, 0, zeros - 1)

    def test_interleaved_append_and_query(self, random_bits):
        """Queries stay correct while the structure is still growing."""
        vector = AppendOnlyBitVector(block_size=128)
        for position, bit in enumerate(random_bits[:900]):
            vector.append(bit)
            if position % 97 == 0:
                assert len(vector) == position + 1
                assert vector.rank(1, position + 1) == reference_rank(
                    random_bits, 1, position + 1
                )
                assert vector.access(position) == bit

    def test_constructor_initial_bits(self, bursty_bits):
        vector = AppendOnlyBitVector(bursty_bits, block_size=64)
        assert vector.to_list() == bursty_bits
        assert vector.block_count == len(bursty_bits) // 64

    def test_extend(self):
        vector = AppendOnlyBitVector(block_size=64)
        vector.extend([1, 0, 1])
        assert vector.to_list() == [1, 0, 1]

    def test_bulk_extend_matches_per_bit(self, random_bits):
        """Word-level append_bits (blocks frozen from packed slices) must be
        indistinguishable from the seed's one append per bit."""
        from repro.bits.bitstring import Bits

        bits = random_bits[:700]
        bulk = AppendOnlyBitVector(block_size=128)
        bulk.append_bits(Bits.from_iterable(bits))
        reference = AppendOnlyBitVector(block_size=128)
        for bit in bits:
            reference.append(bit)
        assert bulk.to_list() == reference.to_list()
        assert bulk.block_count == reference.block_count == len(bits) // 128
        for pos in (0, 127, 128, 129, 700):
            assert bulk.rank(1, pos) == reference.rank(1, pos)
        # Bulk appends across an existing partial tail still freeze on the
        # same block boundaries.
        bulk.extend(iter(bits[:200]))
        for bit in bits[:200]:
            reference.append(bit)
        assert bulk.to_list() == reference.to_list()
        assert bulk.block_count == reference.block_count

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            AppendOnlyBitVector(block_size=32)

    def test_bounds(self):
        vector = AppendOnlyBitVector([1, 0, 1], block_size=64)
        with pytest.raises(OutOfBoundsError):
            vector.access(3)
        with pytest.raises(OutOfBoundsError):
            vector.rank(1, 4)
        with pytest.raises(OutOfBoundsError):
            vector.select(1, 2)

    def test_iter_range_spans_blocks_and_tail(self, random_bits):
        vector = AppendOnlyBitVector(random_bits[:700], block_size=128)
        assert list(vector.iter_range(100, 650)) == random_bits[100:650]


class TestInit:
    """``Init(b, n)`` as a left offset (used by the append-only Wavelet Trie)."""

    def test_init_run_behaves_as_constant_prefix(self):
        vector = AppendOnlyBitVector.init_run(1, 500, block_size=128)
        assert len(vector) == 500
        assert vector.ones == 500
        assert vector.offset_length == 500
        assert vector.rank(1, 321) == 321
        assert vector.select(1, 77) == 77
        assert vector.access(499) == 1

    def test_init_then_append(self):
        vector = AppendOnlyBitVector.init_run(0, 100, block_size=64)
        appended = [1, 1, 0, 1] * 50
        for bit in appended:
            vector.append(bit)
        combined = [0] * 100 + appended
        assert len(vector) == len(combined)
        assert vector.to_list() == combined
        for pos in (0, 50, 100, 101, 250, len(combined)):
            assert vector.rank(1, pos) == reference_rank(combined, 1, pos)
        assert vector.select(1, 0) == 100
        assert vector.select(0, 99) == 99
        assert vector.select(0, 100) == 102

    def test_init_zero_length(self):
        vector = AppendOnlyBitVector.init_run(1, 0)
        assert len(vector) == 0
        vector.append(0)
        assert vector.to_list() == [0]

    def test_init_is_constant_time_in_representation(self):
        """The Remark 4.2 property: a huge Init must not allocate O(n) memory."""
        vector = AppendOnlyBitVector.init_run(1, 10**9)
        assert len(vector) == 10**9
        assert vector.rank(1, 10**9) == 10**9
        # Encoded size must stay tiny (a few words), not O(n).
        assert vector.size_in_bits() < 10_000


class TestSpace:
    def test_compressed_space_tracks_entropy(self):
        rng = random.Random(11)
        n = 20_000
        for p, budget_factor in ((0.05, 0.55), (0.5, 1.25)):
            bits = [1 if rng.random() < p else 0 for _ in range(n)]
            vector = AppendOnlyBitVector(bits, block_size=1024)
            from repro.analysis.entropy import binary_entropy

            entropy_bits = n * binary_entropy(sum(bits) / n)
            assert vector.payload_bits() <= budget_factor * n
            # Payload should be in the same ballpark as nH0 (generous factor:
            # 63-bit blocks pay ~6 bits of class per block).
            assert vector.payload_bits() <= 3.0 * entropy_bits + 2048

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=400))
    def test_property_matches_reference(self, bits):
        vector = AppendOnlyBitVector(block_size=64)
        for bit in bits:
            vector.append(bit)
        assert vector.to_list() == bits
        for pos in range(0, len(bits) + 1, 37):
            assert vector.rank(1, pos) == sum(bits[:pos])
