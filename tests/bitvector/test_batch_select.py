"""Property tests for the select-side batch paths (``select_many``).

Every encoding's ``select_many`` must agree with its scalar ``select`` --
in *input order*, for unsorted and duplicated indexes -- and with a plain
list oracle, including mid-churn on the dynamic structures.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitvector.append_only import AppendOnlyBitVector
from repro.bitvector.dynamic import DynamicBitVector
from repro.bitvector.gap import GapEncodedBitVector
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.exceptions import OutOfBoundsError

ENCODINGS = [
    PlainBitVector,
    RRRBitVector,
    RLEBitVector,
    GapEncodedBitVector,
    DynamicBitVector,
    AppendOnlyBitVector,
]


def oracle_positions(bits, bit):
    return [pos for pos, value in enumerate(bits) if value == bit]


@st.composite
def bits_and_queries(draw):
    bits = draw(st.lists(st.integers(0, 1), min_size=1, max_size=400))
    bit = draw(st.integers(0, 1))
    total = bits.count(bit)
    if total == 0:
        bits.append(bit)
        total = 1
    indexes = draw(
        st.lists(st.integers(0, total - 1), min_size=0, max_size=60)
    )
    return bits, bit, indexes


class TestSelectManyMatchesScalar:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @given(data=bits_and_queries())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_and_oracle(self, encoding, data):
        bits, bit, indexes = data
        vector = encoding(bits)
        positions = oracle_positions(bits, bit)
        expected = [positions[idx] for idx in indexes]
        assert vector.select_many(bit, indexes) == expected
        assert [vector.select(bit, idx) for idx in indexes] == expected

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_unsorted_and_duplicate_indexes_keep_input_order(self, encoding):
        bits = [1, 0, 0, 1, 1, 0, 1, 0, 1, 1] * 13
        vector = encoding(bits)
        indexes = [5, 0, 5, 2, 7, 0]
        positions = oracle_positions(bits, 1)
        assert vector.select_many(1, indexes) == [positions[i] for i in indexes]

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_empty_batch(self, encoding):
        vector = encoding([1, 0, 1])
        assert vector.select_many(1, []) == []

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_out_of_range_raises(self, encoding):
        vector = encoding([1, 0, 1])
        with pytest.raises(OutOfBoundsError):
            vector.select_many(1, [0, 2])
        with pytest.raises(OutOfBoundsError):
            vector.select_many(0, [-1])

    def test_small_batches_use_scalar_fallback(self):
        """DynamicBitVector falls back to tree walks for tiny batches; both
        paths must agree."""
        bits = [i % 2 for i in range(500)]  # run-heavy in the other direction
        vector = DynamicBitVector(bits)
        assert vector._batch_prefers_scalar(2)
        assert vector.select_many(1, [3, 1]) == [7, 3]


class TestSelectManyUnderChurn:
    def test_dynamic_select_many_tracks_updates(self):
        rng = random.Random(1234)
        reference = []
        vector = DynamicBitVector()
        for _ in range(40):
            action = rng.random()
            if action < 0.5 or not reference:
                chunk = [rng.randint(0, 1) for _ in range(rng.randint(1, 40))]
                position = rng.randint(0, len(reference))
                vector.insert_many(position, chunk)
                reference[position:position] = chunk
            elif action < 0.75:
                position = rng.randrange(len(reference))
                assert vector.delete(position) == reference.pop(position)
            else:
                bit = rng.randint(0, 1)
                positions = oracle_positions(reference, bit)
                if positions:
                    indexes = [
                        rng.randrange(len(positions))
                        for _ in range(rng.randint(1, 25))
                    ]
                    assert vector.select_many(bit, indexes) == [
                        positions[idx] for idx in indexes
                    ]
        assert vector.to_list() == reference

    def test_append_only_select_many_with_stage_in_flight(self):
        """Queries must be exact while a staged freeze is mid-encode."""
        vector = AppendOnlyBitVector(block_size=256, freeze_blocks_per_append=1)
        rng = random.Random(77)
        reference = []
        for _ in range(600):
            bit = rng.randint(0, 1)
            vector.append(bit)
            reference.append(bit)
            if len(reference) % 97 == 0:
                for probe in (0, 1):
                    positions = oracle_positions(reference, probe)
                    if positions:
                        indexes = list(range(0, len(positions), 7))
                        assert vector.select_many(probe, indexes) == [
                            positions[idx] for idx in indexes
                        ]
