"""Property-style cross-checks of every kernel-backed structure.

Random bit patterns at **all** lengths 0..257 (every word/superblock/byte
alignment) plus a large instance are pushed through every bitvector class and
the Wavelet Tree, and ``rank``/``select``/``iter_range``/``access_many``/
``rank_many`` are compared against a naive list oracle.  A scaling regression
guards the linear-time constructors against the quadratic accumulation the
kernel replaced.
"""

import random
import time

import pytest

from repro.bits.bitstring import Bits
from repro.bitvector import (
    PlainBitVector,
    RLEBitVector,
    RRRBitVector,
    SparseBitVector,
)
from repro.exceptions import OutOfBoundsError
from repro.wavelet.wavelet_tree import WaveletTree

FACTORIES = {
    "plain": PlainBitVector,
    "rrr": RRRBitVector,
    "rle": RLEBitVector,
    "sparse": SparseBitVector.from_bits,
}


def naive_rank(bits, bit, pos):
    return sum(1 for value in bits[:pos] if value == bit)


def naive_select(bits, bit, idx):
    seen = -1
    for position, value in enumerate(bits):
        if value == bit:
            seen += 1
            if seen == idx:
                return position
    raise IndexError


def check_vector(vector, bits, rng):
    n = len(bits)
    assert len(vector) == n
    assert vector.ones == sum(bits)
    positions = sorted(set([0, n] + [rng.randint(0, n) for _ in range(6)]))
    access_positions = [p for p in positions if p < n]
    # access / access_many
    assert vector.access_many(access_positions) == [
        bits[p] for p in access_positions
    ]
    for bit in (0, 1):
        # rank / rank_many
        assert vector.rank_many(bit, positions) == [
            naive_rank(bits, bit, p) for p in positions
        ]
        for pos in positions:
            assert vector.rank(bit, pos) == naive_rank(bits, bit, pos)
        # select at the extremes and a few interior indices
        total = sum(1 for value in bits if value == bit)
        indices = sorted(
            set(
                i
                for i in [0, 1, total // 2, total - 2, total - 1]
                if 0 <= i < total
            )
        )
        for idx in indices:
            assert vector.select(bit, idx) == naive_select(bits, bit, idx)
        with pytest.raises(OutOfBoundsError):
            vector.select(bit, total)
    with pytest.raises(ValueError):
        vector.select(2, 0)
    # iter_range over the full payload and a random window
    assert list(vector.iter_range(0, n)) == bits
    if n:
        start, stop = sorted((rng.randint(0, n), rng.randint(0, n)))
        assert list(vector.iter_range(start, stop)) == bits[start:stop]


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_all_lengths_0_to_257(name):
    factory = FACTORIES[name]
    rng = random.Random(1234)
    for length in range(258):
        density = rng.choice([0.05, 0.3, 0.5, 0.9])
        bits = [1 if rng.random() < density else 0 for _ in range(length)]
        check_vector(factory(bits), bits, rng)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_large_random(name):
    factory = FACTORIES[name]
    rng = random.Random(99)
    bits = [1 if rng.random() < 0.37 else 0 for _ in range(20_000)]
    vector = factory(Bits.from_iterable(bits))
    check_vector(vector, bits, rng)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_degenerate_patterns(name):
    factory = FACTORIES[name]
    rng = random.Random(7)
    for bits in ([0] * 300, [1] * 300, [0, 1] * 150, [1] + [0] * 511 + [1]):
        check_vector(factory(list(bits)), list(bits), rng)


class TestWaveletTreeBatch:
    @pytest.mark.parametrize("kind", ["plain", "rrr", "rle"])
    def test_access_many_and_rank_many(self, kind):
        rng = random.Random(31)
        data = [rng.randint(0, 40) for _ in range(600)]
        tree = WaveletTree(data, bitvector=kind)
        positions = [rng.randint(0, len(data) - 1) for _ in range(50)]
        assert tree.access_many(positions) == [data[p] for p in positions]
        rank_positions = [rng.randint(0, len(data)) for _ in range(50)]
        for symbol in (0, 7, 40, 13):
            assert tree.rank_many(symbol, rank_positions) == [
                sum(1 for v in data[:p] if v == symbol) for p in rank_positions
            ]

    def test_batch_apis_match_scalar(self):
        rng = random.Random(32)
        data = [rng.randint(0, 9) for _ in range(257)]
        tree = WaveletTree(data)
        positions = list(range(len(data)))
        assert tree.access_many(positions) == [tree.access(p) for p in positions]
        assert tree.rank_many(3, positions) == [
            tree.rank(3, p) for p in positions
        ]

    def test_empty_batches(self):
        tree = WaveletTree([5, 1, 3])
        assert tree.access_many([]) == []
        assert tree.rank_many(1, []) == []

    def test_absent_symbol(self):
        tree = WaveletTree([0, 2, 0, 2], alphabet_size=4)
        assert tree.rank_many(1, [0, 2, 4]) == [0, 0, 0]

    def test_batch_bounds_checked(self):
        tree = WaveletTree([1, 2, 3])
        with pytest.raises(OutOfBoundsError):
            tree.access_many([0, 3])
        with pytest.raises(OutOfBoundsError):
            tree.rank_many(1, [4])


class TestLinearScaling:
    """10x the input must cost ~10x the time, not ~100x (quadratic guard).

    Timings compare the same code at two sizes, so the assertions are
    machine-independent; the bound is generous to absorb CI noise while still
    failing hard if construction regresses to O(n^2).
    """

    @staticmethod
    def _best_time(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    def test_bits_from_iterable_scales_linearly(self):
        small = [i & 1 for i in range(30_000)]
        large = small * 10
        small_time = self._best_time(lambda: Bits.from_iterable(small))
        large_time = self._best_time(lambda: Bits.from_iterable(large))
        assert large_time <= 20 * max(small_time, 1e-6)

    def test_plain_construction_scales_linearly(self):
        rng = random.Random(3)
        small = [rng.randint(0, 1) for _ in range(30_000)]
        large = small * 10
        small_time = self._best_time(lambda: PlainBitVector(small))
        large_time = self._best_time(lambda: PlainBitVector(large))
        assert large_time <= 20 * max(small_time, 1e-6)

    def test_plain_construction_from_bits_scales_linearly(self):
        rng = random.Random(4)
        small_bits = Bits.from_iterable(
            rng.randint(0, 1) for _ in range(30_000)
        )
        large_bits = Bits.from_iterable(
            rng.randint(0, 1) for _ in range(300_000)
        )
        small_time = self._best_time(lambda: PlainBitVector(small_bits))
        large_time = self._best_time(lambda: PlainBitVector(large_bits))
        assert large_time <= 20 * max(small_time, 1e-6)
