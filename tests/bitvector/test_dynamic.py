"""Tests for the fully dynamic RLE+gamma bitvector (paper Theorem 4.9)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.bitstring import Bits
from repro.bitvector.dynamic import DynamicBitVector
from repro.exceptions import OutOfBoundsError

from tests.conftest import reference_rank, reference_select


class TestStaticBehaviour:
    """When used append-only it must agree with the oracle like any bitvector."""

    def test_append_and_query(self, random_bits):
        vector = DynamicBitVector(random_bits)
        assert len(vector) == len(random_bits)
        assert vector.to_list() == random_bits
        for pos in (0, 1, 64, 1000, len(random_bits)):
            assert vector.rank(1, pos) == reference_rank(random_bits, 1, pos)
        for idx in (0, 57, sum(random_bits) - 1):
            assert vector.select(1, idx) == reference_select(random_bits, 1, idx)
        zeros = len(random_bits) - sum(random_bits)
        assert vector.select(0, zeros - 1) == reference_select(random_bits, 0, zeros - 1)

    def test_runs_are_maximal_after_appends(self, bursty_bits):
        vector = DynamicBitVector(bursty_bits)
        runs = list(vector.runs())
        for (bit_a, _), (bit_b, _) in zip(runs, runs[1:]):
            assert bit_a != bit_b
        assert sum(length for _, length in runs) == len(bursty_bits)

    def test_append_run(self):
        vector = DynamicBitVector()
        vector.append_run(0, 10)
        vector.append_run(0, 5)
        vector.append_run(1, 3)
        assert vector.to_list() == [0] * 15 + [1] * 3
        assert vector.run_count == 2

    def test_bounds(self):
        vector = DynamicBitVector([1, 0])
        with pytest.raises(OutOfBoundsError):
            vector.access(2)
        with pytest.raises(OutOfBoundsError):
            vector.insert(3, 1)
        with pytest.raises(OutOfBoundsError):
            vector.delete(2)
        with pytest.raises(ValueError):
            vector.insert(0, 2)


class TestInit:
    def test_init_run(self):
        vector = DynamicBitVector.init_run(1, 10**8)
        assert len(vector) == 10**8
        assert vector.ones == 10**8
        assert vector.rank(1, 12345678) == 12345678
        assert vector.run_count == 1
        # Remark 4.2: the representation must be O(1), not O(n).
        assert vector.size_in_bits() < 1000

    def test_init_then_mutate(self):
        vector = DynamicBitVector.init_run(0, 1000)
        vector.insert(500, 1)
        assert len(vector) == 1001
        assert vector.rank(1, 1001) == 1
        assert vector.select(1, 0) == 500
        assert vector.delete(500) == 1
        assert vector.rank(1, 1000) == 0
        assert vector.run_count == 1  # the two zero runs re-coalesce


class TestInsertDelete:
    def test_insert_positions(self):
        vector = DynamicBitVector()
        reference = []
        for position, bit in [(0, 1), (0, 0), (1, 1), (3, 0), (2, 1)]:
            vector.insert(position, bit)
            reference.insert(position, bit)
        assert vector.to_list() == reference

    def test_delete_returns_bit(self):
        vector = DynamicBitVector([1, 0, 1, 1])
        assert vector.delete(1) == 0
        assert vector.delete(0) == 1
        assert vector.to_list() == [1, 1]
        assert vector.run_count == 1

    def test_insert_run(self):
        vector = DynamicBitVector([1, 1, 1, 1])
        vector.insert_run(2, 0, 5)
        assert vector.to_list() == [1, 1, 0, 0, 0, 0, 0, 1, 1]
        vector.insert_run(2, 1, 2)  # extends the surrounding 1-run context
        assert vector.to_list() == [1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 1]

    def test_randomised_against_list(self):
        rng = random.Random(77)
        vector = DynamicBitVector(seed=3)
        reference = []
        for step in range(1500):
            action = rng.random()
            if action < 0.55 or not reference:
                position = rng.randint(0, len(reference))
                bit = rng.randint(0, 1)
                vector.insert(position, bit)
                reference.insert(position, bit)
            elif action < 0.85:
                position = rng.randrange(len(reference))
                assert vector.delete(position) == reference.pop(position)
            else:
                position = rng.randint(0, len(reference))
                assert vector.rank(1, position) == sum(reference[:position])
            if step % 250 == 0:
                assert vector.to_list() == reference
        assert vector.to_list() == reference
        # Runs stay maximal throughout, so the count matches the oracle's.
        expected_runs = sum(
            1 for i in range(len(reference)) if i == 0 or reference[i] != reference[i - 1]
        )
        assert vector.run_count == expected_runs

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=60,
        )
    )
    def test_property_random_operations(self, operations):
        vector = DynamicBitVector(seed=9)
        reference = []
        for kind, bit, raw_position in operations:
            if kind == 0 or not reference:
                position = raw_position % (len(reference) + 1)
                vector.insert(position, bit)
                reference.insert(position, bit)
            elif kind == 1:
                position = raw_position % len(reference)
                assert vector.delete(position) == reference.pop(position)
            elif kind == 2:
                vector.append(bit)
                reference.append(bit)
            else:
                position = raw_position % (len(reference) + 1)
                assert vector.rank(bit, position) == sum(
                    1 for value in reference[:position] if value == bit
                )
        assert vector.to_list() == reference


def _assert_heap_invariant(node):
    """Every treap node's priority must dominate its children's (max-heap)."""
    if node is None:
        return
    for child in (node.left, node.right):
        if child is not None:
            assert child.priority <= node.priority, (
                "treap heap invariant violated: child priority exceeds parent"
            )
            _assert_heap_invariant(child)


class TestTreapBalance:
    """Regression tests for the _split priority bug: the cut run's right half
    must inherit the split node's priority, or the max-heap invariant (and
    with it the O(log r) expected bounds) silently erodes under churn."""

    def test_heap_invariant_after_mid_run_insert(self):
        vector = DynamicBitVector.init_run(0, 1000, seed=5)
        vector.insert(500, 1)  # cuts the single run: the sharp regression case
        _assert_heap_invariant(vector._root)

    def test_heap_invariant_and_depth_after_churn(self):
        """Many mixed insert/delete cycles (repeatedly cutting and
        re-coalescing runs) must keep the treap heap-ordered and its depth
        O(log r)."""
        rng = random.Random(99)
        vector = DynamicBitVector(seed=13)
        reference = []
        for step in range(6000):
            if rng.random() < 0.55 or not reference:
                position = rng.randint(0, len(reference))
                bit = rng.randint(0, 1)
                vector.insert(position, bit)
                reference.insert(position, bit)
            else:
                position = rng.randrange(len(reference))
                assert vector.delete(position) == reference.pop(position)
            if step % 1500 == 0:
                _assert_heap_invariant(vector._root)
        _assert_heap_invariant(vector._root)
        assert vector.to_list() == reference
        runs = vector.run_count
        assert runs > 100  # the workload really does keep many runs alive
        # Expected treap depth is ~3 ln r; 5 log2(r) is a generous, seed-fixed
        # bound that the pre-fix implementation's drift would not respect.
        assert vector.tree_depth() <= 5 * math.log2(runs + 2)


class TestBulkConstruction:
    def test_from_bits_matches_per_bit(self, bursty_bits):
        payload = Bits.from_iterable(bursty_bits)
        bulk = DynamicBitVector(payload)
        reference = DynamicBitVector()
        for bit in bursty_bits:
            reference.append(bit)
        assert bulk.to_list() == bursty_bits
        assert list(bulk.runs()) == list(reference.runs())
        _assert_heap_invariant(bulk._root)

    def test_from_runs_normalises(self):
        vector = DynamicBitVector.from_runs([(1, 2), (1, 3), (0, 0), (0, 4)])
        assert vector.to_list() == [1] * 5 + [0] * 4
        assert vector.run_count == 2
        with pytest.raises(ValueError):
            DynamicBitVector.from_runs([(1, -1)])
        with pytest.raises(ValueError):
            DynamicBitVector.from_runs([(2, 5)])  # strict, like append_run

    def test_extend_onto_existing_coalesces(self):
        vector = DynamicBitVector([1, 1, 0])
        vector.extend([0, 0, 1])
        assert vector.to_list() == [1, 1, 0, 0, 0, 1]
        assert vector.run_count == 3
        vector.append_bits(Bits.from_string("1100"))
        assert vector.to_list() == [1, 1, 0, 0, 0, 1, 1, 1, 0, 0]
        assert vector.run_count == 4

    def test_extend_truthy_iterable(self):
        vector = DynamicBitVector()
        vector.extend(iter([0, 2, "x", 0.0, None, 1]))
        assert vector.to_list() == [0, 1, 1, 0, 0, 1]


class TestIterRuns:
    def test_iter_runs_covers_exact_range(self, bursty_bits):
        vector = DynamicBitVector(bursty_bits)
        rng = random.Random(7)
        for _ in range(100):
            start = rng.randint(0, len(bursty_bits))
            stop = rng.randint(start, len(bursty_bits))
            pieces = list(vector.iter_runs(start, stop))
            assert sum(length for _, length in pieces) == stop - start
            rebuilt = [bit for bit, length in pieces for _ in range(length)]
            assert rebuilt == bursty_bits[start:stop]
            # Interior pieces are maximal: adjacent pieces alternate bits.
            for (bit_a, _), (bit_b, _) in zip(pieces, pieces[1:]):
                assert bit_a != bit_b

    def test_iter_range_matches_slice(self, bursty_bits):
        vector = DynamicBitVector(bursty_bits)
        n = len(bursty_bits)
        assert list(vector.iter_range(n - 1, n)) == bursty_bits[n - 1:]
        assert list(vector.iter_range(0, 0)) == []
        assert list(vector.iter_range(13, 200)) == bursty_bits[13:200]
        with pytest.raises(OutOfBoundsError):
            list(vector.iter_range(0, n + 1))


class TestBatchQueries:
    def test_access_many_and_rank_many_match_scalar(self, bursty_bits):
        vector = DynamicBitVector(bursty_bits)
        rng = random.Random(21)
        positions = [rng.randrange(len(bursty_bits)) for _ in range(200)]
        assert vector.access_many(positions) == [
            vector.access(pos) for pos in positions
        ]
        rank_positions = [rng.randint(0, len(bursty_bits)) for _ in range(200)]
        for bit in (0, 1):
            assert vector.rank_many(bit, rank_positions) == [
                vector.rank(bit, pos) for pos in rank_positions
            ]

    def test_batch_bounds(self):
        vector = DynamicBitVector([1, 0, 1])
        assert vector.access_many([]) == []
        assert vector.rank_many(1, iter([3, 0])) == [2, 0]
        with pytest.raises(OutOfBoundsError):
            vector.access_many([0, 3])
        with pytest.raises(OutOfBoundsError):
            vector.rank_many(0, [4])


class TestSpace:
    def test_space_tracks_runs_not_length(self):
        # A long bitvector with few runs must stay tiny (RLE+gamma property).
        vector = DynamicBitVector.init_run(0, 1_000_000)
        vector.append_run(1, 1_000_000)
        vector.append_run(0, 5)
        assert vector.size_in_bits() < 300
        assert vector.overhead_bits() < 3 * 6 * 64 + 1

    def test_entropy_ballpark_for_random_bits(self, random_bits):
        vector = DynamicBitVector(random_bits)
        from repro.analysis.entropy import binary_entropy

        n = len(random_bits)
        entropy = n * binary_entropy(sum(random_bits) / n)
        # RLE+gamma has a constant-factor redundancy (Theorem 4.9: O(nH0)).
        assert vector.size_in_bits() <= 4 * entropy + 512
