"""Tests for the fully dynamic RLE+gamma bitvector (paper Theorem 4.9)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitvector.dynamic import DynamicBitVector
from repro.exceptions import OutOfBoundsError

from tests.conftest import reference_rank, reference_select


class TestStaticBehaviour:
    """When used append-only it must agree with the oracle like any bitvector."""

    def test_append_and_query(self, random_bits):
        vector = DynamicBitVector(random_bits)
        assert len(vector) == len(random_bits)
        assert vector.to_list() == random_bits
        for pos in (0, 1, 64, 1000, len(random_bits)):
            assert vector.rank(1, pos) == reference_rank(random_bits, 1, pos)
        for idx in (0, 57, sum(random_bits) - 1):
            assert vector.select(1, idx) == reference_select(random_bits, 1, idx)
        zeros = len(random_bits) - sum(random_bits)
        assert vector.select(0, zeros - 1) == reference_select(random_bits, 0, zeros - 1)

    def test_runs_are_maximal_after_appends(self, bursty_bits):
        vector = DynamicBitVector(bursty_bits)
        runs = list(vector.runs())
        for (bit_a, _), (bit_b, _) in zip(runs, runs[1:]):
            assert bit_a != bit_b
        assert sum(length for _, length in runs) == len(bursty_bits)

    def test_append_run(self):
        vector = DynamicBitVector()
        vector.append_run(0, 10)
        vector.append_run(0, 5)
        vector.append_run(1, 3)
        assert vector.to_list() == [0] * 15 + [1] * 3
        assert vector.run_count == 2

    def test_bounds(self):
        vector = DynamicBitVector([1, 0])
        with pytest.raises(OutOfBoundsError):
            vector.access(2)
        with pytest.raises(OutOfBoundsError):
            vector.insert(3, 1)
        with pytest.raises(OutOfBoundsError):
            vector.delete(2)
        with pytest.raises(ValueError):
            vector.insert(0, 2)


class TestInit:
    def test_init_run(self):
        vector = DynamicBitVector.init_run(1, 10**8)
        assert len(vector) == 10**8
        assert vector.ones == 10**8
        assert vector.rank(1, 12345678) == 12345678
        assert vector.run_count == 1
        # Remark 4.2: the representation must be O(1), not O(n).
        assert vector.size_in_bits() < 1000

    def test_init_then_mutate(self):
        vector = DynamicBitVector.init_run(0, 1000)
        vector.insert(500, 1)
        assert len(vector) == 1001
        assert vector.rank(1, 1001) == 1
        assert vector.select(1, 0) == 500
        assert vector.delete(500) == 1
        assert vector.rank(1, 1000) == 0
        assert vector.run_count == 1  # the two zero runs re-coalesce


class TestInsertDelete:
    def test_insert_positions(self):
        vector = DynamicBitVector()
        reference = []
        for position, bit in [(0, 1), (0, 0), (1, 1), (3, 0), (2, 1)]:
            vector.insert(position, bit)
            reference.insert(position, bit)
        assert vector.to_list() == reference

    def test_delete_returns_bit(self):
        vector = DynamicBitVector([1, 0, 1, 1])
        assert vector.delete(1) == 0
        assert vector.delete(0) == 1
        assert vector.to_list() == [1, 1]
        assert vector.run_count == 1

    def test_insert_run(self):
        vector = DynamicBitVector([1, 1, 1, 1])
        vector.insert_run(2, 0, 5)
        assert vector.to_list() == [1, 1, 0, 0, 0, 0, 0, 1, 1]
        vector.insert_run(2, 1, 2)  # extends the surrounding 1-run context
        assert vector.to_list() == [1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 1]

    def test_randomised_against_list(self):
        rng = random.Random(77)
        vector = DynamicBitVector(seed=3)
        reference = []
        for step in range(1500):
            action = rng.random()
            if action < 0.55 or not reference:
                position = rng.randint(0, len(reference))
                bit = rng.randint(0, 1)
                vector.insert(position, bit)
                reference.insert(position, bit)
            elif action < 0.85:
                position = rng.randrange(len(reference))
                assert vector.delete(position) == reference.pop(position)
            else:
                position = rng.randint(0, len(reference))
                assert vector.rank(1, position) == sum(reference[:position])
            if step % 250 == 0:
                assert vector.to_list() == reference
        assert vector.to_list() == reference
        # Runs stay maximal throughout, so the count matches the oracle's.
        expected_runs = sum(
            1 for i in range(len(reference)) if i == 0 or reference[i] != reference[i - 1]
        )
        assert vector.run_count == expected_runs

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=10**6),
            ),
            max_size=60,
        )
    )
    def test_property_random_operations(self, operations):
        vector = DynamicBitVector(seed=9)
        reference = []
        for kind, bit, raw_position in operations:
            if kind == 0 or not reference:
                position = raw_position % (len(reference) + 1)
                vector.insert(position, bit)
                reference.insert(position, bit)
            elif kind == 1:
                position = raw_position % len(reference)
                assert vector.delete(position) == reference.pop(position)
            elif kind == 2:
                vector.append(bit)
                reference.append(bit)
            else:
                position = raw_position % (len(reference) + 1)
                assert vector.rank(bit, position) == sum(
                    1 for value in reference[:position] if value == bit
                )
        assert vector.to_list() == reference


class TestSpace:
    def test_space_tracks_runs_not_length(self):
        # A long bitvector with few runs must stay tiny (RLE+gamma property).
        vector = DynamicBitVector.init_run(0, 1_000_000)
        vector.append_run(1, 1_000_000)
        vector.append_run(0, 5)
        assert vector.size_in_bits() < 300
        assert vector.overhead_bits() < 3 * 6 * 64 + 1

    def test_entropy_ballpark_for_random_bits(self, random_bits):
        vector = DynamicBitVector(random_bits)
        from repro.analysis.entropy import binary_entropy

        n = len(random_bits)
        entropy = n * binary_entropy(sum(random_bits) / n)
        # RLE+gamma has a constant-factor redundancy (Theorem 4.9: O(nH0)).
        assert vector.size_in_bits() <= 4 * entropy + 512
