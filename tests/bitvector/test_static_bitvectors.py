"""Tests for the static bitvectors: plain, RRR, RLE, sparse/Elias-Fano.

All implementations are checked against the same Python-list oracle on random,
bursty and degenerate inputs, plus encoding-specific checks (RRR compression
against B(m, n), RLE run recovery, Elias-Fano monotone access).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.entropy import binomial_lower_bound
from repro.bits.bitstring import Bits
from repro.bitvector import (
    EliasFanoSequence,
    PlainBitVector,
    RLEBitVector,
    RRRBitVector,
    SparseBitVector,
)
from repro.bitvector.rle import runs_of
from repro.exceptions import OutOfBoundsError

from tests.conftest import reference_rank, reference_select

STATIC_CLASSES = [PlainBitVector, RRRBitVector, RLEBitVector, SparseBitVector.from_bits]
STATIC_IDS = ["plain", "rrr", "rle", "sparse"]


def build(factory, bits):
    return factory(bits)


@pytest.fixture(params=list(zip(STATIC_CLASSES, STATIC_IDS)), ids=STATIC_IDS)
def factory(request):
    return request.param[0]


class TestAgainstOracle:
    def test_random_bits(self, factory, random_bits):
        vector = build(factory, random_bits)
        assert len(vector) == len(random_bits)
        assert vector.ones == sum(random_bits)
        positions = [0, 1, 62, 63, 64, 65, 127, 500, 1234, len(random_bits) - 1]
        for pos in positions:
            assert vector.access(pos) == random_bits[pos]
        for pos in positions + [len(random_bits)]:
            assert vector.rank(1, pos) == reference_rank(random_bits, 1, pos)
            assert vector.rank(0, pos) == reference_rank(random_bits, 0, pos)
        ones_total = sum(random_bits)
        for idx in [0, 1, ones_total // 2, ones_total - 1]:
            assert vector.select(1, idx) == reference_select(random_bits, 1, idx)
        zeros_total = len(random_bits) - ones_total
        for idx in [0, zeros_total // 3, zeros_total - 1]:
            assert vector.select(0, idx) == reference_select(random_bits, 0, idx)

    def test_bursty_bits(self, factory, bursty_bits):
        vector = build(factory, bursty_bits)
        for pos in range(0, len(bursty_bits) + 1, 173):
            assert vector.rank(1, pos) == reference_rank(bursty_bits, 1, pos)
        assert vector.to_list() == bursty_bits

    def test_all_zeros(self, factory):
        vector = build(factory, [0] * 300)
        assert vector.ones == 0
        assert vector.rank(0, 300) == 300
        assert vector.select(0, 299) == 299
        with pytest.raises(OutOfBoundsError):
            vector.select(1, 0)

    def test_all_ones(self, factory):
        vector = build(factory, [1] * 300)
        assert vector.ones == 300
        assert vector.rank(1, 123) == 123
        assert vector.select(1, 0) == 0
        with pytest.raises(OutOfBoundsError):
            vector.select(0, 0)

    def test_single_bit(self, factory):
        vector = build(factory, [1])
        assert len(vector) == 1
        assert vector.access(0) == 1
        assert vector.rank(1, 1) == 1

    def test_empty(self, factory):
        vector = build(factory, [])
        assert len(vector) == 0
        assert vector.rank(1, 0) == 0
        with pytest.raises(OutOfBoundsError):
            vector.access(0)

    def test_bounds_checking(self, factory, random_bits):
        vector = build(factory, random_bits[:100])
        with pytest.raises(OutOfBoundsError):
            vector.access(100)
        with pytest.raises(OutOfBoundsError):
            vector.rank(1, 101)
        with pytest.raises(OutOfBoundsError):
            vector.select(1, 10**6)
        with pytest.raises(ValueError):
            vector.rank(2, 10)

    def test_iter_range(self, factory, random_bits):
        vector = build(factory, random_bits[:700])
        assert list(vector.iter_range(13, 660)) == random_bits[13:660]
        assert list(vector.iter_range(5, 5)) == []

    def test_rank_range(self, factory, random_bits):
        vector = build(factory, random_bits[:500])
        assert vector.rank_range(1, 100, 400) == sum(random_bits[100:400])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=300))
    def test_property_rank_select_consistency(self, bits):
        for factory in (PlainBitVector, RRRBitVector, RLEBitVector):
            vector = factory(bits)
            assert vector.to_list() == bits
            for idx in range(sum(bits)):
                position = vector.select(1, idx)
                assert bits[position] == 1
                assert vector.rank(1, position) == idx


class TestRRRSpecifics:
    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            RRRBitVector([1, 0], block_size=0)
        with pytest.raises(ValueError):
            RRRBitVector([1, 0], block_size=64)
        with pytest.raises(ValueError):
            RRRBitVector([1, 0], sample_rate=0)

    def test_compression_of_sparse_input(self):
        n = 4096
        bits = [0] * n
        for position in range(0, n, 97):
            bits[position] = 1
        vector = RRRBitVector(bits)
        lower = binomial_lower_bound(sum(bits), n)
        # The offset payload must be within a small factor of B(m, n) and far
        # below the raw n bits.
        assert vector.compressed_payload_bits() <= 4 * lower + 64
        assert vector.payload_bits() < n

    def test_incompressible_input_stays_close_to_raw(self):
        rng = random.Random(1)
        bits = [rng.randint(0, 1) for _ in range(4096)]
        vector = RRRBitVector(bits)
        assert vector.payload_bits() <= 1.6 * len(bits)

    def test_different_block_sizes_agree(self, random_bits):
        reference = RRRBitVector(random_bits, block_size=63)
        for block_size in (15, 31, 48):
            other = RRRBitVector(random_bits, block_size=block_size)
            for pos in range(0, len(random_bits), 311):
                assert other.rank(1, pos) == reference.rank(1, pos)


class TestRLESpecifics:
    def test_runs_of(self):
        assert runs_of([1, 1, 0, 0, 0, 1]) == [(1, 2), (0, 3), (1, 1)]
        assert runs_of([]) == []
        assert runs_of(Bits.from_string("0001")) == [(0, 3), (1, 1)]

    def test_run_count_and_runs_roundtrip(self, bursty_bits):
        vector = RLEBitVector(bursty_bits)
        expected = runs_of(bursty_bits)
        assert vector.run_count == len(expected)
        assert list(vector.runs()) == expected

    def test_from_runs(self):
        vector = RLEBitVector.from_runs([(0, 5), (1, 3), (0, 2)])
        assert vector.to_list() == [0] * 5 + [1] * 3 + [0] * 2

    def test_rle_compresses_runs(self, bursty_bits):
        rle = RLEBitVector(bursty_bits)
        plain = PlainBitVector(bursty_bits)
        assert rle.payload_bits() < plain.payload_bits()


class TestEliasFano:
    def test_select_and_rank(self):
        values = [3, 4, 7, 7, 20, 50, 51]
        sequence = EliasFanoSequence(values)
        assert sequence.to_list() == values
        assert sequence.rank(7) == 2      # values strictly below 7
        assert sequence.rank(8) == 4
        assert sequence.rank(1000) == 7
        assert sequence.predecessor(21) == 4
        with pytest.raises(OutOfBoundsError):
            sequence.predecessor(2)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            EliasFanoSequence([5, 3])

    def test_empty(self):
        sequence = EliasFanoSequence([])
        assert len(sequence) == 0
        assert sequence.rank(10) == 0

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_random_monotone_sequences(self, raw):
        values = sorted(raw)
        sequence = EliasFanoSequence(values)
        assert sequence.to_list() == values
        if values:
            probe = values[len(values) // 2]
            assert sequence.rank(probe) == sum(1 for v in values if v < probe)

    def test_space_close_to_theory(self):
        rng = random.Random(3)
        values = sorted(rng.sample(range(1_000_000), 2000))
        sequence = EliasFanoSequence(values, universe=1_000_000)
        per_element = sequence.size_in_bits() / len(values)
        # Theory: 2 + log2(u/n) ~ 11 bits/element; allow generous slack for
        # the plain-bitvector directory overhead of the high part.
        assert per_element < 2 * (2 + math.log2(1_000_000 / 2000)) + 4


class TestSparseBitVector:
    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            SparseBitVector(10, [3, 3])

    def test_position_out_of_range(self):
        with pytest.raises(OutOfBoundsError):
            SparseBitVector(10, [10])

    def test_select0(self, random_bits):
        bits = random_bits[:800]
        vector = SparseBitVector.from_bits(bits)
        zeros = [i for i, b in enumerate(bits) if b == 0]
        for idx in (0, 10, len(zeros) - 1):
            assert vector.select(0, idx) == zeros[idx]
