"""Tests for the synthetic workload generators (determinism, shape, skew)."""

from collections import Counter

import pytest

from repro.workloads import (
    ColumnGenerator,
    EdgeStreamGenerator,
    IntegerSequenceGenerator,
    QueryLogGenerator,
    UrlLogGenerator,
    ZipfSampler,
)


class TestZipfSampler:
    def test_determinism(self):
        a = ZipfSampler(list(range(20)), exponent=1.2, seed=1).sample_many(200)
        b = ZipfSampler(list(range(20)), exponent=1.2, seed=1).sample_many(200)
        assert a == b

    def test_skew(self):
        samples = ZipfSampler(list(range(50)), exponent=1.3, seed=2).sample_many(3000)
        counts = Counter(samples)
        # The most popular item must dominate the tail.
        assert counts[0] > counts.get(25, 0) * 3
        assert counts[0] > len(samples) * 0.1

    def test_exponent_zero_is_uniformish(self):
        samples = ZipfSampler(list(range(10)), exponent=0.0, seed=3).sample_many(5000)
        counts = Counter(samples)
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler([])
        with pytest.raises(ValueError):
            ZipfSampler([1], exponent=-1)


class TestUrlLogGenerator:
    def test_determinism_and_shape(self):
        a = UrlLogGenerator(domains=5, seed=7).generate(100)
        b = UrlLogGenerator(domains=5, seed=7).generate(100)
        assert a == b
        assert all(url.startswith("http://www.") for url in a)
        assert all("/" in url[7:] for url in a)

    def test_distinct_domains_bounded(self):
        generator = UrlLogGenerator(domains=5, seed=8)
        urls = generator.generate(500)
        hosts = {url.split("/")[2] for url in urls}
        assert hosts <= set(generator.domains())
        assert len(hosts) <= 5

    def test_prefix_sharing(self):
        """URLs must share long prefixes (the property the trie exploits)."""
        urls = UrlLogGenerator(domains=3, depth=4, branching=2, seed=9).generate(300)
        counts = Counter(url.split("/")[2] for url in urls)
        top_domain, top_count = counts.most_common(1)[0]
        assert top_count > 100  # the Zipf head dominates

    def test_validation(self):
        with pytest.raises(ValueError):
            UrlLogGenerator(domains=0)


class TestOtherGenerators:
    def test_query_log(self):
        queries = QueryLogGenerator(seed=3).generate(200)
        assert len(queries) == 200
        assert all(1 <= len(q.split(" ")) <= 4 for q in queries)
        assert QueryLogGenerator(seed=3).generate(200) == queries

    def test_column_generator(self):
        generator = ColumnGenerator(cardinality=16, seed=4)
        values = generator.generate(300)
        assert set(values) <= set(generator.distinct_values())
        assert all(value.count("/") == 2 for value in values)
        flat = ColumnGenerator(cardinality=16, hierarchical=False, seed=4).generate(50)
        assert all(value.startswith("value-") for value in flat)

    def test_integer_generator(self):
        generator = IntegerSequenceGenerator(universe=2 ** 32, alphabet_size=32, seed=5)
        values = generator.generate(400)
        assert set(values) <= set(generator.alphabet)
        assert len(set(values)) <= 32
        assert all(0 <= value < 2 ** 32 for value in values)
        clustered = IntegerSequenceGenerator(
            universe=10 ** 6, alphabet_size=64, clustered=True, seed=6
        )
        alphabet = clustered.alphabet
        assert max(alphabet) - min(alphabet) == 63

    def test_integer_generator_validation(self):
        with pytest.raises(ValueError):
            IntegerSequenceGenerator(universe=10, alphabet_size=11)

    def test_edge_stream(self):
        generator = EdgeStreamGenerator(seed=7)
        edges = generator.generate(200)
        assert len(edges) == 200
        assert all(" -> " in edge for edge in edges)
        sources = {edge.split(" -> ")[0] for edge in edges}
        assert all(source.startswith("http://sn.example/user/") for source in sources)
        assert EdgeStreamGenerator(seed=7).generate(200) == edges

    def test_edge_stream_validation(self):
        with pytest.raises(ValueError):
            EdgeStreamGenerator(initial_vertices=1)
