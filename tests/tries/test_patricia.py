"""Tests for the dynamic Patricia trie (paper Appendix B)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.bitstring import Bits
from repro.exceptions import ValueNotFoundError
from repro.tries.binarize import Utf8Codec
from repro.tries.patricia import PatriciaTrie


def encode(values):
    codec = Utf8Codec()
    return [codec.to_bits(value) for value in values]


class TestBasicOperations:
    def test_insert_and_contains(self):
        keys = encode(["a", "ab", "b", "ba", "banana"])
        trie = PatriciaTrie()
        for key in keys:
            assert trie.insert(key) is True
        assert len(trie) == 5
        for key in keys:
            assert key in trie
        assert Utf8Codec().to_bits("c") not in trie
        assert Utf8Codec().to_bits("ban") not in trie

    def test_duplicate_insert(self):
        key = Utf8Codec().to_bits("x")
        trie = PatriciaTrie([key])
        assert trie.insert(key) is False
        assert len(trie) == 1

    def test_keys_enumeration(self):
        keys = encode(["rome", "pisa", "paris", "park"])
        trie = PatriciaTrie(keys)
        assert sorted(k.to01() for k in trie.keys()) == sorted(k.to01() for k in keys)

    def test_delete(self):
        keys = encode(["rome", "pisa", "paris", "park"])
        trie = PatriciaTrie(keys)
        trie.delete(keys[1])
        assert len(trie) == 3
        assert keys[1] not in trie
        assert all(k in trie for k in keys if k != keys[1])
        with pytest.raises(ValueNotFoundError):
            trie.delete(keys[1])

    def test_delete_down_to_empty(self):
        keys = encode(["a", "b"])
        trie = PatriciaTrie(keys)
        trie.delete(keys[0])
        trie.delete(keys[1])
        assert len(trie) == 0
        assert not trie
        # Reinsertion after emptying works.
        trie.insert(keys[0])
        assert keys[0] in trie

    def test_single_key_trie(self):
        key = Utf8Codec().to_bits("solo")
        trie = PatriciaTrie([key])
        assert key in trie
        assert trie.node_count() == 1
        assert trie.edge_count() == 0
        assert trie.height_of(key) == 0

    def test_prefix_free_violation_rejected(self):
        trie = PatriciaTrie([Bits.from_string("0101")])
        with pytest.raises(ValueError):
            trie.insert(Bits.from_string("01"))
        with pytest.raises(ValueError):
            trie.insert(Bits.from_string("010111"))


class TestStructure:
    def test_node_and_edge_counts(self):
        keys = encode(["a", "b", "c", "d"])
        trie = PatriciaTrie(keys)
        # A binary Patricia trie over k keys has k leaves and k-1 internal nodes.
        assert trie.node_count() == 2 * len(keys) - 1
        assert trie.internal_count() == len(keys) - 1
        assert trie.edge_count() == 2 * (len(keys) - 1)

    def test_internal_nodes_have_two_children(self):
        keys = encode(["alpha", "beta", "gamma", "delta", "alphabet"])
        trie = PatriciaTrie(keys)
        for node in trie.nodes():
            children = sum(1 for child in node.children if child is not None)
            assert children in (0, 2)

    def test_label_bits_consistency(self):
        keys = encode(["aa", "ab"])
        trie = PatriciaTrie(keys)
        # Total key bits = labels + one branching bit per internal node on
        # each root-to-leaf path; check via reconstruction.
        reconstructed = sorted(k.to01() for k in trie.keys())
        assert reconstructed == sorted(k.to01() for k in keys)

    def test_height_of(self):
        keys = encode(["aa", "ab", "b"])
        trie = PatriciaTrie(keys)
        heights = {trie.height_of(k) for k in keys}
        assert max(heights) <= 2
        with pytest.raises(ValueNotFoundError):
            trie.height_of(Utf8Codec().to_bits("zz"))

    def test_find_prefix(self):
        codec = Utf8Codec()
        keys = encode(["rome", "romeo", "paris"])
        trie = PatriciaTrie(keys)
        assert trie.find_prefix(codec.prefix_to_bits("rom")) is not None
        assert trie.find_prefix(codec.prefix_to_bits("par")) is not None
        assert trie.find_prefix(codec.prefix_to_bits("x")) is None
        assert trie.find_prefix(Bits.empty()) is not None

    def test_space_accounting(self):
        keys = encode(["aaa", "aab", "abc"])
        trie = PatriciaTrie(keys)
        assert trie.label_bits() > 0
        assert trie.pointer_bits() == trie.node_count() * 4 * 64
        assert trie.size_in_bits() == trie.pointer_bits() + trie.label_bits()
        assert trie.longest_key_bits() == max(len(k) for k in keys)


class TestRandomised:
    def test_random_insert_delete_against_set(self):
        rng = random.Random(5)
        codec = Utf8Codec()
        population = [
            "/".join(rng.choice("abcd") for _ in range(rng.randint(1, 4)))
            for _ in range(60)
        ]
        trie = PatriciaTrie()
        reference = set()
        for step in range(400):
            value = rng.choice(population)
            key = codec.to_bits(value)
            if value in reference and rng.random() < 0.5:
                trie.delete(key)
                reference.discard(value)
            elif value not in reference:
                trie.insert(key)
                reference.add(value)
            if step % 50 == 0:
                stored = {codec.from_bits(k) for k in trie.keys()}
                assert stored == reference
        stored = {codec.from_bits(k) for k in trie.keys()}
        assert stored == reference
        assert len(trie) == len(reference)

    @given(st.sets(st.text(alphabet="abc/", min_size=1, max_size=8), max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_property_membership(self, values):
        codec = Utf8Codec()
        keys = [codec.to_bits(value) for value in values]
        trie = PatriciaTrie(keys)
        assert len(trie) == len(values)
        for key in keys:
            assert key in trie
        assert {codec.from_bits(k) for k in trie.keys()} == set(values)
