"""Tests for the binarisation codecs (prefix-freeness is the key invariant)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.bitstring import Bits
from repro.exceptions import BinarizationError
from repro.tries.binarize import (
    BytesCodec,
    FixedWidthIntCodec,
    Utf8Codec,
    default_codec,
)

text_values = st.text(
    alphabet=st.characters(blacklist_characters="\x00", blacklist_categories=("Cs",)),
    max_size=30,
)


class TestUtf8Codec:
    def test_roundtrip(self):
        codec = Utf8Codec()
        for value in ["", "a", "hello", "héllo wörld", "日本語", "/path/to/x"]:
            assert codec.from_bits(codec.to_bits(value)) == value

    def test_terminator_makes_prefix_free(self):
        codec = Utf8Codec()
        a = codec.to_bits("ab")
        b = codec.to_bits("abc")
        assert not b.startswith(a)
        assert not a.startswith(b)

    def test_prefix_encoding_is_prefix_of_completions(self):
        codec = Utf8Codec()
        prefix = codec.prefix_to_bits("ab")
        assert codec.to_bits("ab").startswith(prefix)
        assert codec.to_bits("abc").startswith(prefix)
        assert not codec.to_bits("ba").startswith(prefix)

    def test_rejects_nul(self):
        codec = Utf8Codec()
        with pytest.raises(BinarizationError):
            codec.to_bits("a\x00b")
        with pytest.raises(BinarizationError):
            codec.prefix_to_bits("\x00")

    def test_rejects_non_string(self):
        codec = Utf8Codec()
        with pytest.raises(BinarizationError):
            codec.to_bits(42)

    def test_from_bits_validation(self):
        codec = Utf8Codec()
        with pytest.raises(BinarizationError):
            codec.from_bits(Bits.from_string("101"))
        with pytest.raises(BinarizationError):
            codec.from_bits(Bits.from_bytes(b"ab"))  # missing terminator

    @given(text_values)
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, value):
        codec = Utf8Codec()
        assert codec.from_bits(codec.to_bits(value)) == value

    @given(text_values, text_values)
    @settings(max_examples=80, deadline=None)
    def test_property_prefix_freeness(self, a, b):
        codec = Utf8Codec()
        bits_a, bits_b = codec.to_bits(a), codec.to_bits(b)
        if a != b:
            assert not bits_a.startswith(bits_b)
            assert not bits_b.startswith(bits_a)

    def test_default_codec(self):
        assert isinstance(default_codec(), Utf8Codec)


class TestBytesCodec:
    def test_roundtrip_with_nul_bytes(self):
        codec = BytesCodec()
        for value in [b"", b"\x00", b"ab\x00cd", bytes(range(256))]:
            assert codec.from_bits(codec.to_bits(value)) == value

    def test_prefix_freeness(self):
        codec = BytesCodec()
        a, b = codec.to_bits(b"ab"), codec.to_bits(b"abc")
        assert not b.startswith(a) and not a.startswith(b)

    def test_prefix_to_bits(self):
        codec = BytesCodec()
        assert codec.to_bits(b"abc").startswith(codec.prefix_to_bits(b"ab"))

    def test_type_checks(self):
        codec = BytesCodec()
        with pytest.raises(BinarizationError):
            codec.to_bits("not bytes")

    @given(st.binary(max_size=20), st.binary(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_property_prefix_freeness(self, a, b):
        codec = BytesCodec()
        bits_a, bits_b = codec.to_bits(a), codec.to_bits(b)
        if a != b:
            assert not bits_a.startswith(bits_b)
            assert not bits_b.startswith(bits_a)


class TestFixedWidthIntCodec:
    def test_roundtrip(self):
        codec = FixedWidthIntCodec(16)
        for value in [0, 1, 255, 65535]:
            assert codec.from_bits(codec.to_bits(value)) == value

    def test_lsb_first(self):
        codec = FixedWidthIntCodec(4, lsb_first=True)
        assert codec.to_bits(1).to01() == "1000"
        assert codec.to_bits(8).to01() == "0001"
        assert codec.from_bits(Bits.from_string("1000")) == 1

    def test_out_of_range(self):
        codec = FixedWidthIntCodec(8)
        with pytest.raises(BinarizationError):
            codec.to_bits(256)
        with pytest.raises(BinarizationError):
            codec.to_bits(-1)
        with pytest.raises(BinarizationError):
            codec.to_bits(True)

    def test_wrong_length_decoding(self):
        codec = FixedWidthIntCodec(8)
        with pytest.raises(BinarizationError):
            codec.from_bits(Bits.from_string("0101"))

    def test_invalid_width(self):
        with pytest.raises(BinarizationError):
            FixedWidthIntCodec(0)

    @given(st.integers(min_value=1, max_value=64), st.data())
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_both_orders(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        for lsb_first in (False, True):
            codec = FixedWidthIntCodec(width, lsb_first=lsb_first)
            bits = codec.to_bits(value)
            assert len(bits) == width
            assert codec.from_bits(bits) == value
