"""Tests for the succinct static Patricia trie (paper Theorem 3.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits.bitstring import Bits
from repro.exceptions import ValueNotFoundError
from repro.tries.binarize import Utf8Codec
from repro.tries.patricia import PatriciaTrie
from repro.tries.static_patricia import SuccinctPatriciaTrie


def build(values):
    codec = Utf8Codec()
    keys = [codec.to_bits(value) for value in set(values)]
    return SuccinctPatriciaTrie.from_keys(keys), codec


class TestSuccinctPatriciaTrie:
    def test_keys_roundtrip(self):
        values = ["rome", "romeo", "paris", "park", "pisa"]
        trie, codec = build(values)
        assert trie.key_count == len(values)
        stored = {codec.from_bits(key) for key in trie.keys()}
        assert stored == set(values)

    def test_search(self):
        values = ["rome", "romeo", "paris"]
        trie, codec = build(values)
        for value in values:
            leaf, height = trie.search(codec.to_bits(value))
            assert trie.is_leaf(leaf)
            assert 0 <= height <= len(values) - 1
        with pytest.raises(ValueNotFoundError):
            trie.search(codec.to_bits("romulus"))

    def test_find_prefix(self):
        values = ["rome", "romeo", "paris"]
        trie, codec = build(values)
        assert trie.find_prefix(codec.prefix_to_bits("rom")) is not None
        assert trie.find_prefix(codec.prefix_to_bits("z")) is None
        node, _ = trie.find_prefix(codec.prefix_to_bits("par"))
        assert trie.is_leaf(node)

    def test_matches_dynamic_trie_structure(self):
        values = ["aaa", "aab", "abc", "b"]
        codec = Utf8Codec()
        keys = [codec.to_bits(v) for v in values]
        dynamic = PatriciaTrie(keys)
        succinct = SuccinctPatriciaTrie(dynamic)
        assert succinct.node_count == dynamic.node_count()
        assert succinct.label_bits() == dynamic.label_bits()
        assert succinct.edge_count() == dynamic.edge_count()

    def test_single_key(self):
        trie, codec = build(["only"])
        assert trie.node_count == 1
        assert trie.key_count == 1
        leaf, height = trie.search(codec.to_bits("only"))
        assert leaf == 0 and height == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SuccinctPatriciaTrie(PatriciaTrie())

    def test_space_breakdown_and_lt(self):
        values = [f"section/{i}/item" for i in range(40)]
        trie, _ = build(values)
        breakdown = trie.space_breakdown()
        assert breakdown["labels"] >= trie.label_bits() - 64
        assert breakdown["lt_lower_bound"] <= trie.size_in_bits()
        # The succinct encoding should be well below a pointer representation
        # of the same trie (4 words per node).
        pointer_cost = trie.node_count * 4 * 64 + trie.label_bits()
        assert trie.size_in_bits() < pointer_cost

    @given(st.sets(st.text(alphabet="ab/", min_size=1, max_size=6), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_search_every_key(self, values):
        codec = Utf8Codec()
        keys = [codec.to_bits(value) for value in values]
        trie = SuccinctPatriciaTrie.from_keys(keys)
        for key in keys:
            leaf, _ = trie.search(key)
            assert trie.is_leaf(leaf)
        assert {codec.from_bits(k) for k in trie.keys()} == set(values)
