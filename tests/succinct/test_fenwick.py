"""Tests for Fenwick trees and partial-sum structures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import OutOfBoundsError
from repro.succinct import FenwickTree, PartialSums, StaticPartialSums


class TestFenwickTree:
    def test_prefix_sums(self):
        values = [3, 0, 7, 1, 4]
        tree = FenwickTree(values)
        for count in range(len(values) + 1):
            assert tree.prefix_sum(count) == sum(values[:count])
        assert tree.total == 15

    def test_add_and_value_at(self):
        tree = FenwickTree([1, 1, 1, 1])
        tree.add(2, 5)
        assert tree.value_at(2) == 6
        assert tree.prefix_sum(4) == 9
        tree.add(2, -6)
        assert tree.value_at(2) == 0

    def test_range_sum(self):
        tree = FenwickTree([2, 4, 6, 8])
        assert tree.range_sum(1, 3) == 10
        with pytest.raises(OutOfBoundsError):
            tree.range_sum(3, 1)

    def test_search(self):
        values = [3, 0, 7, 1, 4]
        tree = FenwickTree(values)
        # Cumulative: 3, 3, 10, 11, 15
        assert tree.search(0) == 0
        assert tree.search(2) == 0
        assert tree.search(3) == 2
        assert tree.search(9) == 2
        assert tree.search(10) == 3
        assert tree.search(14) == 4
        with pytest.raises(OutOfBoundsError):
            tree.search(15)

    def test_bounds(self):
        tree = FenwickTree([1, 2])
        with pytest.raises(OutOfBoundsError):
            tree.add(2, 1)
        with pytest.raises(OutOfBoundsError):
            tree.prefix_sum(3)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=80), st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_updates_match_reference(self, values, data):
        tree = FenwickTree(values)
        reference = list(values)
        for _ in range(10):
            if not reference:
                break
            index = data.draw(st.integers(min_value=0, max_value=len(reference) - 1))
            delta = data.draw(st.integers(min_value=-5, max_value=20))
            if reference[index] + delta < 0:
                delta = -reference[index]
            tree.add(index, delta)
            reference[index] += delta
        assert tree.to_list() == reference
        for count in range(len(reference) + 1):
            assert tree.prefix_sum(count) == sum(reference[:count])


class TestStaticPartialSums:
    def test_start_length_find(self):
        sums = StaticPartialSums([5, 0, 3, 7])
        assert len(sums) == 4
        assert sums.total == 15
        assert [sums.start(i) for i in range(5)] == [0, 5, 5, 8, 15]
        assert sums.length(2) == 3
        assert sums.find(0) == 0
        assert sums.find(4) == 0
        assert sums.find(5) == 2  # the zero-length piece 1 cannot own offsets
        assert sums.find(7) == 2
        assert sums.find(8) == 3
        assert sums.find(14) == 3
        with pytest.raises(OutOfBoundsError):
            sums.find(15)

    def test_empty(self):
        sums = StaticPartialSums([])
        assert len(sums) == 0
        assert sums.total == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StaticPartialSums([3, -1])


class TestDynamicPartialSums:
    def test_append_and_query(self):
        sums = PartialSums([4, 2])
        sums.append(9)
        assert len(sums) == 3
        assert sums.total == 15
        assert sums.start(2) == 6
        assert sums.find(6) == 2
        assert sums.to_list() == [4, 2, 9]

    def test_add(self):
        sums = PartialSums([4, 2, 9])
        sums.add(1, 3)
        assert sums.length(1) == 5
        assert sums.start(2) == 9

    def test_growth_beyond_initial_capacity(self):
        sums = PartialSums()
        for value in range(1, 40):
            sums.append(value)
        assert sums.total == sum(range(1, 40))
        assert sums.find(sums.total - 1) == 38

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_find_matches_linear_scan(self, lengths):
        sums = PartialSums(lengths)
        total = sum(lengths)
        if total == 0:
            return
        probes = {0, total - 1, total // 2, total // 3}
        for offset in probes:
            expected = None
            running = 0
            for index, length in enumerate(lengths):
                if running <= offset < running + length:
                    expected = index
                    break
                running += length
            assert sums.find(offset) == expected
