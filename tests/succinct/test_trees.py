"""Tests for balanced parentheses, DFUDS and LOUDS succinct trees.

All navigation operations are cross-checked against an explicit pointer-based
tree generated pseudo-randomly.
"""

import random
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import OutOfBoundsError
from repro.succinct import BalancedParentheses, DFUDSTree, LOUDSTree


class Node:
    """Explicit ordinal-tree node used as the oracle."""

    def __init__(self):
        self.children: List["Node"] = []
        self.parent: Optional["Node"] = None

    def add(self, child: "Node") -> "Node":
        child.parent = self
        self.children.append(child)
        return child


def random_tree(seed: int, max_nodes: int = 40) -> Node:
    rng = random.Random(seed)
    root = Node()
    nodes = [root]
    while len(nodes) < max_nodes:
        parent = rng.choice(nodes)
        child = parent.add(Node())
        nodes.append(child)
    return root


def preorder(root: Node) -> List[Node]:
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in reversed(node.children):
            stack.append(child)
    return out


def level_order(root: Node) -> List[Node]:
    from collections import deque

    out = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        out.append(node)
        queue.extend(node.children)
    return out


class TestBalancedParentheses:
    def test_simple_sequence(self):
        bp = BalancedParentheses("(()(()))")
        assert len(bp) == 8
        assert bp.is_open(0) and not bp.is_open(2)
        assert bp.excess(8) == 0
        assert bp.find_close(0) == 7
        assert bp.find_close(1) == 2
        assert bp.find_close(3) == 6
        assert bp.find_close(4) == 5
        assert bp.find_open(7) == 0
        assert bp.find_open(5) == 4
        assert bp.enclose(1) == 0
        assert bp.enclose(4) == 3

    def test_long_sequence_block_skipping(self):
        # Deep nesting followed by a long flat section exercises the
        # block-skip path of find_close.
        text = "(" * 200 + "()" * 200 + ")" * 200
        bp = BalancedParentheses(text)
        assert bp.find_close(0) == len(text) - 1
        assert bp.find_close(199) == len(text) - 200
        assert bp.find_close(200) == 201

    def test_errors(self):
        bp = BalancedParentheses("()")
        with pytest.raises(ValueError):
            bp.find_close(1)
        with pytest.raises(ValueError):
            bp.find_open(0)
        with pytest.raises(OutOfBoundsError):
            bp.enclose(0)

    def test_rank_select(self):
        bp = BalancedParentheses("(()())")
        assert bp.rank_open(3) == 2
        assert bp.rank_close(3) == 1
        assert bp.select_open(2) == 3
        assert bp.select_close(0) == 2

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_find_close_open_are_inverses(self, seed):
        root = random_tree(seed, max_nodes=30)
        # Build a BP string by DFS.
        text = []

        def walk(node):
            text.append("(")
            for child in node.children:
                walk(child)
            text.append(")")

        walk(root)
        bp = BalancedParentheses("".join(text))
        for pos in range(len(text)):
            if bp.is_open(pos):
                close = bp.find_close(pos)
                assert bp.find_open(close) == pos


class TestDFUDS:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
    def test_navigation_matches_pointer_tree(self, seed):
        root = random_tree(seed, max_nodes=35)
        order = preorder(root)
        index = {id(node): i for i, node in enumerate(order)}
        tree = DFUDSTree.from_tree(root, lambda node: node.children)
        assert tree.node_count == len(order)
        for i, node in enumerate(order):
            assert tree.degree(i) == len(node.children)
            assert tree.is_leaf(i) == (not node.children)
            for k, child in enumerate(node.children):
                assert tree.child(i, k) == index[id(child)]
            if node.parent is not None:
                assert tree.parent(i) == index[id(node.parent)]
                assert tree.child_rank(i) == node.parent.children.index(node)
        assert tree.leaf_count() == sum(1 for node in order if not node.children)

    def test_single_node(self):
        tree = DFUDSTree.from_degrees([0])
        assert tree.node_count == 1
        assert tree.is_leaf(0)
        with pytest.raises(OutOfBoundsError):
            tree.parent(0)
        with pytest.raises(OutOfBoundsError):
            tree.child(0, 0)

    def test_from_degrees_binary_tree(self):
        # A binary Patricia-like shape: root with two leaves.
        tree = DFUDSTree.from_degrees([2, 0, 0])
        assert tree.degree(0) == 2
        assert tree.child(0, 0) == 1
        assert tree.child(0, 1) == 2
        assert tree.parent(1) == 0 and tree.parent(2) == 0
        assert tree.parentheses() == "((()))"

    def test_size_is_linear_in_nodes(self):
        tree = DFUDSTree.from_degrees([2] + [2, 0, 0] * 100 + [0, 0])
        # about 2 bits per node plus directories
        assert tree.size_in_bits() < 64 * tree.node_count


class TestLOUDS:
    @pytest.mark.parametrize("seed", [0, 1, 5, 9])
    def test_navigation_matches_pointer_tree(self, seed):
        root = random_tree(seed, max_nodes=35)
        order = level_order(root)
        index = {id(node): i for i, node in enumerate(order)}
        tree = LOUDSTree.from_tree(root, lambda node: node.children)
        assert tree.node_count == len(order)
        for i, node in enumerate(order):
            assert tree.degree(i) == len(node.children)
            assert tree.is_leaf(i) == (not node.children)
            for k, child in enumerate(node.children):
                assert tree.child(i, k) == index[id(child)]
            if node.parent is not None:
                assert tree.parent(i) == index[id(node.parent)]
                assert tree.child_rank(i) == node.parent.children.index(node)

    def test_single_node(self):
        tree = LOUDSTree.from_tree("root", lambda _: [])
        assert tree.node_count == 1
        assert tree.is_leaf(0)
        with pytest.raises(OutOfBoundsError):
            tree.parent(0)

    def test_dfuds_and_louds_agree_on_degrees(self):
        root = random_tree(13, max_nodes=30)
        dfuds = DFUDSTree.from_tree(root, lambda node: node.children)
        louds = LOUDSTree.from_tree(root, lambda node: node.children)
        # Same multiset of degrees even though node numberings differ.
        dfuds_degrees = sorted(dfuds.degree(i) for i in range(dfuds.node_count))
        louds_degrees = sorted(louds.degree(i) for i in range(louds.node_count))
        assert dfuds_degrees == louds_degrees
