"""Tests for the related-work baselines (naive oracle, alphabet mapping,
B-tree index, text collection) and their documented limitations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BTreeSequenceIndex,
    DictWaveletSequence,
    NaiveIndexedSequence,
    TextCollectionSequence,
)
from repro.baselines.btree_index import BTree
from repro.core.static import WaveletTrie
from repro.exceptions import InvalidOperationError, OutOfBoundsError, ValueNotFoundError


class TestNaiveOracle:
    """The oracle itself deserves tests: everything else is compared to it."""

    def test_basic_operations(self):
        values = ["a", "b", "a", "c", "a"]
        naive = NaiveIndexedSequence(values)
        assert len(naive) == 5
        assert naive.access(2) == "a"
        assert naive.rank("a", 4) == 2
        assert naive.select("a", 2) == 4
        assert naive.rank_prefix("a", 5) == 3
        assert naive.select_prefix("a", 1) == 2
        assert naive.count("c") == 1
        with pytest.raises(OutOfBoundsError):
            naive.select("a", 3)
        with pytest.raises(OutOfBoundsError):
            naive.access(5)

    def test_updates(self):
        naive = NaiveIndexedSequence(["x"])
        naive.append("y")
        naive.insert("z", 1)
        assert naive.to_list() == ["x", "z", "y"]
        assert naive.delete(0) == "x"
        assert naive.to_list() == ["z", "y"]

    def test_range_helpers(self):
        values = ["a", "b", "a", "b", "b"]
        naive = NaiveIndexedSequence(values)
        assert naive.range_majority(0, 5) == ("b", 3)
        assert naive.range_majority(0, 4) is None
        assert dict(naive.distinct_in_range(1, 4)) == {"a": 1, "b": 2}
        assert naive.top_k_in_range(0, 5, 1) == [("b", 3)]
        assert naive.frequent_in_range(0, 5, 2) == [("a", 2), ("b", 3)]


class TestDictWaveletSequence:
    def test_matches_wavelet_trie_on_supported_ops(self, column_values):
        values = column_values[:200]
        baseline = DictWaveletSequence(values)
        trie = WaveletTrie(values)
        for pos in range(0, 200, 23):
            assert baseline.access(pos) == trie.access(pos)
        for value in set(values):
            assert baseline.count(value) == trie.count(value)
            assert baseline.select(value, 0) == trie.select(value, 0)
        for prefix in ["emea/", "amer/rome", "nope"]:
            assert baseline.rank_prefix(prefix, 150) == trie.rank_prefix(prefix, 150)

    def test_limitations(self, column_values):
        baseline = DictWaveletSequence(column_values[:50])
        # Limitation 1 (the paper's issue (a)): the alphabet cannot grow.
        with pytest.raises(InvalidOperationError):
            baseline.append("brand-new-value")

    def test_select_prefix_via_rank_binary_search(self, column_values):
        """Limitation 2 (no direct SelectPrefix) is worked around by a
        binary search over RankPrefix; answers must match the oracle and
        out-of-range indexes must raise the canonical error."""
        values = column_values[:80]
        baseline = DictWaveletSequence(values)
        naive = NaiveIndexedSequence(values)
        for prefix in ["emea/", "amer/rome", values[0], "nope"]:
            total = naive.rank_prefix(prefix, len(values))
            for idx in range(0, total, max(1, total // 4)):
                assert baseline.select_prefix(prefix, idx) == naive.select_prefix(
                    prefix, idx
                )
            with pytest.raises(OutOfBoundsError) as caught:
                baseline.select_prefix(prefix, total)
            with pytest.raises(OutOfBoundsError) as expected:
                naive.select_prefix(prefix, total)
            assert str(caught.value) == str(expected.value)

    def test_absent_values(self, column_values):
        baseline = DictWaveletSequence(column_values[:50])
        assert baseline.rank("missing", 50) == 0
        with pytest.raises(ValueNotFoundError):
            baseline.select("missing", 0)
        assert baseline.rank_prefix("zzz", 50) == 0

    def test_empty(self):
        baseline = DictWaveletSequence([])
        assert len(baseline) == 0
        assert baseline.rank("x", 0) == 0


class TestBTree:
    def test_insert_and_ordered_iteration(self):
        tree = BTree(min_degree=2)
        keys = [(f"k{i:03d}", i) for i in range(200)]
        import random

        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key)
        assert len(tree) == 200
        assert tree.height > 1
        ordered = list(tree.iterate_from(("k", -1)))
        assert ordered == sorted(keys)
        assert ("k050", 50) in tree
        assert ("nope", 0) not in tree
        # Range scan from the middle.
        from_mid = list(tree.iterate_from(("k100", -1)))
        assert from_mid == sorted(keys)[100:]

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)


class TestBTreeSequenceIndex:
    def test_matches_oracle(self, url_log):
        values = url_log[:150]
        baseline = BTreeSequenceIndex(values, min_degree=4)
        naive = NaiveIndexedSequence(values)
        for pos in range(0, 150, 17):
            assert baseline.access(pos) == naive.access(pos)
        for value in set(values[:30]):
            assert baseline.rank(value, 100) == naive.rank(value, 100)
            assert baseline.select(value, 0) == naive.select(value, 0)
        for prefix in ["http://www.", values[0][:25], "none"]:
            assert baseline.rank_prefix(prefix, 120) == naive.rank_prefix(prefix, 120)
            total = naive.rank_prefix(prefix, 150)
            if total:
                assert baseline.select_prefix(prefix, total - 1) == naive.select_prefix(prefix, total - 1)

    def test_append_and_errors(self):
        baseline = BTreeSequenceIndex(["a", "b"])
        baseline.append("a")
        assert baseline.rank("a", 3) == 2
        with pytest.raises(OutOfBoundsError):
            baseline.select("a", 2)
        with pytest.raises(OutOfBoundsError):
            baseline.access(3)

    def test_space_is_larger_than_wavelet_trie(self, url_log):
        values = url_log[:200]
        baseline = BTreeSequenceIndex(values)
        trie = WaveletTrie(values)
        assert baseline.size_in_bits() > trie.size_in_bits()


class TestTextCollectionSequence:
    def test_matches_oracle(self, query_log):
        values = query_log[:60]
        baseline = TextCollectionSequence(values)
        naive = NaiveIndexedSequence(values)
        for pos in range(0, 60, 7):
            assert baseline.access(pos) == naive.access(pos)
        value = values[3]
        assert baseline.rank(value, 40) == naive.rank(value, 40)
        assert baseline.select(value, 0) == naive.select(value, 0)
        assert baseline.rank_prefix("weather", 50) == naive.rank_prefix("weather", 50)
        total = naive.rank_prefix("p", 60)
        if total:
            assert baseline.select_prefix("p", total - 1) == naive.select_prefix("p", total - 1)

    def test_rejects_nul(self):
        with pytest.raises(ValueError):
            TextCollectionSequence(["bad\x00value"])

    def test_empty(self):
        baseline = TextCollectionSequence([])
        assert len(baseline) == 0

    def test_string_level_compression_is_worse_than_wavelet_trie(self, url_log):
        """The paper's point about approach (2): character-level entropy only."""
        values = url_log[:300]
        baseline = TextCollectionSequence(values)
        trie = WaveletTrie(values)
        assert trie.bitvector_bits() < baseline.size_in_bits()


class TestCrossImplementationAgreement:
    @given(st.lists(st.sampled_from(["a", "ab", "b", "ba", "abc"]), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_all_implementations_agree(self, values):
        implementations = [
            WaveletTrie(values),
            DictWaveletSequence(values),
            BTreeSequenceIndex(values),
            TextCollectionSequence(values),
        ]
        naive = NaiveIndexedSequence(values)
        for implementation in implementations:
            assert len(implementation) == len(values)
            for pos in range(len(values)):
                assert implementation.access(pos) == naive.access(pos)
            for value in set(values):
                assert implementation.rank(value, len(values)) == naive.count(value)
