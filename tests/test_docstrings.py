"""Documentation gate: every public class in ``src/repro`` must be documented.

Run directly (``pytest tests/test_docstrings.py``) or via ``make docs-check``.
The walk imports every module under :mod:`repro`, so an import-time error in
any module also fails this gate.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_repro_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {sorted(missing)}"


def test_every_public_class_has_a_docstring():
    missing = set()
    for module in iter_repro_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if (obj.__module__ or "").split(".")[0] != "repro":
                continue  # re-exported stdlib/third-party names
            if not (obj.__doc__ or "").strip():
                missing.add(f"{obj.__module__}.{obj.__qualname__}")
    assert not missing, f"public classes without docstrings: {sorted(missing)}"


BATCH_API_METHODS = {"access_many", "rank_many", "select_many", "insert_many"}


def test_every_batch_api_method_states_its_cost():
    """The batch-API convention (docs/API.md): every implementation of the
    batch query/update interface must say how its cost amortises (or state
    that it is an unamortised loop)."""
    offenders = set()
    for module in iter_repro_modules():
        for cls_name, obj in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(obj):
                continue
            if (obj.__module__ or "") != module.__name__:
                continue
            for method_name, method in vars(obj).items():
                if method_name not in BATCH_API_METHODS or not callable(method):
                    continue
                doc = (inspect.getdoc(method) or "").lower()
                if "amortis" not in doc and "amortiz" not in doc:
                    offenders.add(f"{obj.__module__}.{obj.__qualname__}.{method_name}")
    assert not offenders, (
        f"batch-API methods whose docstrings do not state their amortised "
        f"cost: {sorted(offenders)}"
    )
