"""Documentation gate: every public class in ``src/repro`` must be documented.

Run directly (``pytest tests/test_docstrings.py``) or via ``make docs-check``.
The walk imports every module under :mod:`repro`, so an import-time error in
any module also fails this gate.  Also enforces the kernel backend contract:
every public kernel function must exist in *both* backend modules and appear
in the contract table of docs/ARCHITECTURE.md.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import repro


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_repro_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {sorted(missing)}"


def test_every_public_class_has_a_docstring():
    missing = set()
    for module in iter_repro_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if (obj.__module__ or "").split(".")[0] != "repro":
                continue  # re-exported stdlib/third-party names
            if not (obj.__doc__ or "").strip():
                missing.add(f"{obj.__module__}.{obj.__qualname__}")
    assert not missing, f"public classes without docstrings: {sorted(missing)}"


BATCH_API_METHODS = {
    "access_many",
    "rank_many",
    "select_many",
    "insert_many",
    "delete_many",
    "rank_prefix_many",
    "select_prefix_many",
}


def test_every_batch_api_method_states_its_cost():
    """The batch-API convention (docs/API.md): every implementation of the
    batch query/update interface must say how its cost amortises (or state
    that it is an unamortised loop)."""
    offenders = set()
    for module in iter_repro_modules():
        for cls_name, obj in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(obj):
                continue
            if (obj.__module__ or "") != module.__name__:
                continue
            for method_name, method in vars(obj).items():
                if method_name not in BATCH_API_METHODS or not callable(method):
                    continue
                doc = (inspect.getdoc(method) or "").lower()
                if "amortis" not in doc and "amortiz" not in doc:
                    offenders.add(f"{obj.__module__}.{obj.__qualname__}.{method_name}")
    assert not offenders, (
        f"batch-API methods whose docstrings do not state their amortised "
        f"cost: {sorted(offenders)}"
    )


# ----------------------------------------------------------------------
# Kernel backend contract (docs/ARCHITECTURE.md, "Kernel backends")
# ----------------------------------------------------------------------
ARCHITECTURE_MD = Path(__file__).resolve().parent.parent / "docs" / "ARCHITECTURE.md"


def test_kernel_backends_export_the_same_contract():
    """A public kernel function existing in one backend but not the other is
    a contract violation: new primitives must land in both backends."""
    from repro.bits import kernel
    from repro.bits.kernel import npkernel, pykernel

    contract = set(kernel.KERNEL_CONTRACT)
    assert set(pykernel.__all__) == contract, (
        "pykernel.__all__ drifted from KERNEL_CONTRACT: "
        f"{set(pykernel.__all__) ^ contract}"
    )
    assert set(npkernel.__all__) == contract, (
        "npkernel.__all__ drifted from KERNEL_CONTRACT: "
        f"{set(npkernel.__all__) ^ contract}"
    )
    missing = {
        f"{module.__name__}.{name}"
        for module in (pykernel, npkernel)
        for name in contract
        if not hasattr(module, name)
    }
    assert not missing, f"contract names not implemented: {sorted(missing)}"
    # The façade itself must expose every contract name too.
    facade_missing = [name for name in contract if not hasattr(kernel, name)]
    assert not facade_missing, f"façade misses: {facade_missing}"


def test_tier_lifecycle_section_matches_the_code():
    """The ARCHITECTURE.md "Tier lifecycle" section must exist and name every
    trie flavour that satisfies the ``Tier`` protocol, plus the lifecycle
    vocabulary (the freezer, the one-shot form, and the tiered knobs) -- so
    adding a flavour or renaming a transition forces the doc to follow."""
    from repro.core import tiers
    from repro.core.append_only import AppendOnlyWaveletTrie
    from repro.core.dynamic import DynamicWaveletTrie
    from repro.core.static import WaveletTrie

    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    assert "### Tier lifecycle" in text, "Tier lifecycle section missing"
    section = text.split("### Tier lifecycle", 1)[1].split("\n### ", 1)[0]
    flavours = [
        WaveletTrie,
        AppendOnlyWaveletTrie,
        DynamicWaveletTrie,
        tiers.TieredWaveletTrie,
    ]
    for cls in flavours:
        assert isinstance(cls([]), tiers.Tier), (
            f"{cls.__name__} no longer satisfies the Tier protocol"
        )
        assert cls.__name__ in section, (
            f"{cls.__name__} satisfies Tier but is absent from the "
            "Tier lifecycle section"
        )
    assert "SuccinctWaveletTrie" in section
    for name in (
        "TrieFreezer",
        "freeze_trie",
        "freeze_step",
        "to_succinct",
        "active_capacity",
        "compact_budget",
        "mutable_start",
    ):
        assert name in section, (
            f"lifecycle term '{name}' missing from the Tier lifecycle section"
        )


def test_kernel_contract_table_matches_architecture_doc():
    """The ARCHITECTURE.md contract table and ``kernel.KERNEL_CONTRACT`` must
    list exactly the same names (the table is the documented contract)."""
    from repro.bits import kernel

    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    assert "## Kernel backends" in text, "Kernel backends section missing"
    section = text.split("### The backend contract", 1)[1].split("\n## ", 1)[0]
    documented = set()
    for line in section.splitlines():
        if not line.startswith("|"):
            continue
        first_cell = line.split("|")[1]
        documented.update(re.findall(r"`([A-Za-z_][A-Za-z_0-9]*)`", first_cell))
    contract = set(kernel.KERNEL_CONTRACT)
    undocumented = contract - documented
    stale = documented - contract
    assert not undocumented, (
        f"contract functions missing from the ARCHITECTURE.md table: "
        f"{sorted(undocumented)}"
    )
    assert not stale, (
        f"ARCHITECTURE.md table rows without a contract function: "
        f"{sorted(stale)}"
    )


def test_serving_section_matches_the_code():
    """The ARCHITECTURE.md "Serving" section must exist and name the serving
    layer's moving parts (server, shard, tick function, snapshot, fault seam,
    metrics) plus *every* wire error code -- so adding a code or renaming a
    component forces the doc to follow."""
    from repro.serving import protocol

    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    assert "## Serving" in text, "Serving section missing"
    section = text.split("## Serving", 1)[1].split("\n## ", 1)[0]
    for name in (
        "IndexServer",
        "IndexShard",
        "run_read_tick",
        "ColumnSnapshot",
        "FaultInjector.before_batch",
        "ServingMetrics",
        "max_pending",
        "coalesce_window",
        "version",
        # The multi-process cluster's moving parts and guarantees.
        "ClusterSupervisor",
        "ClusterRouter",
        "PartitionMap",
        "export_shard_images",
        "merge_snapshots",
        "manifest.json",
        "repro.serving.worker",
        "max_restarts",
        "restart_backoff",
        "pipeline_depth",
        "byte-identical",
    ):
        assert name in section, (
            f"serving term '{name}' missing from the Serving section"
        )
    for code in protocol.ERROR_CODES:
        assert f"`{code}`" in section, (
            f"error code '{code}' missing from the Serving section"
        )


def test_full_text_search_section_matches_the_code():
    """The ARCHITECTURE.md "Full-text search" section must exist and name the
    text layer's moving parts (index, store, construction, the backward-search
    recurrence, the sampling knob, the batched paths and their measured
    baseline) -- so renaming a component or dropping the knob forces the doc
    to follow."""
    text = ARCHITECTURE_MD.read_text(encoding="utf-8")
    assert "## Full-text search" in text, "Full-text search section missing"
    section = text.split("## Full-text search", 1)[1].split("\n## ", 1)[0]
    for name in (
        "FMIndex",
        "DocumentStore",
        "suffix_array",
        "HuffmanWaveletTree",
        "sa_sample",
        "rank_many",
        "count_many",
        "_interval_scalar",
        "locate",
        "extract",
        "LF mapping",
        "Burrows",
        "backward search",
        "BENCH_search.json",
        "search build",
        "SparseBitVector",
        "terminator",
    ):
        assert name in section, (
            f"full-text-search term '{name}' missing from the section"
        )
    # The knob really is the constructor's; a rename must update the doc.
    from repro.text import FMIndex
    import inspect

    assert "sa_sample" in inspect.signature(FMIndex).parameters
