"""Shared fixtures for the test suite.

The fixtures provide deterministic workloads (small enough to keep the suite
fast, varied enough to exercise skew, shared prefixes and dynamic alphabets)
and reference helpers used to cross-check the succinct structures against
plain-Python oracles.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.workloads import ColumnGenerator, QueryLogGenerator, UrlLogGenerator


@pytest.fixture(scope="session")
def url_log() -> List[str]:
    """A deterministic URL access log with skewed domains and shared prefixes."""
    return UrlLogGenerator(domains=12, depth=3, branching=4, seed=101).generate(400)


@pytest.fixture(scope="session")
def query_log() -> List[str]:
    """A deterministic query log (short strings, fewer shared prefixes)."""
    return QueryLogGenerator(seed=202).generate(300)


@pytest.fixture(scope="session")
def column_values() -> List[str]:
    """A deterministic hierarchical column (region/city/site)."""
    return ColumnGenerator(cardinality=24, zipf_exponent=1.2, seed=303).generate(350)


@pytest.fixture(scope="session")
def random_bits() -> List[int]:
    """A deterministic pseudo-random bit sequence (30% ones)."""
    rng = random.Random(404)
    return [1 if rng.random() < 0.3 else 0 for _ in range(2500)]


@pytest.fixture(scope="session")
def bursty_bits() -> List[int]:
    """A deterministic run-heavy bit sequence (favourable to RLE)."""
    rng = random.Random(505)
    bits: List[int] = []
    bit = 0
    while len(bits) < 2500:
        run = rng.randint(1, 40)
        bits.extend([bit] * run)
        bit ^= 1
    return bits[:2500]


def reference_rank(bits: List[int], bit: int, pos: int) -> int:
    """Oracle rank for bitvector tests."""
    return sum(1 for value in bits[:pos] if value == bit)


def reference_select(bits: List[int], bit: int, idx: int) -> int:
    """Oracle select for bitvector tests."""
    seen = -1
    for position, value in enumerate(bits):
        if value == bit:
            seen += 1
            if seen == idx:
                return position
    raise IndexError("not enough occurrences")
