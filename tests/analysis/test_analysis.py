"""Tests for entropy measures, Table 1 bounds and space reports."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    SequenceBounds,
    binary_entropy,
    binomial_lower_bound,
    compute_bounds,
    empirical_entropy,
    empirical_entropy_bits,
    wavelet_trie_space_report,
)
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie


class TestEntropy:
    def test_uniform_two_symbols(self):
        assert empirical_entropy(["a", "b"]) == pytest.approx(1.0)
        assert empirical_entropy(["a", "a", "b", "b"]) == pytest.approx(1.0)

    def test_constant_sequence(self):
        assert empirical_entropy(["x"] * 10) == 0.0
        assert empirical_entropy([]) == 0.0

    def test_skewed_sequence(self):
        entropy = empirical_entropy(["a"] * 9 + ["b"])
        assert entropy == pytest.approx(binary_entropy(0.1))

    def test_total_entropy(self):
        assert empirical_entropy_bits(["a", "b", "a", "b"]) == pytest.approx(4.0)

    def test_binary_entropy(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.25) == pytest.approx(0.811278, abs=1e-5)
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, sequence):
        entropy = empirical_entropy(sequence)
        distinct = len(set(sequence))
        assert 0.0 <= entropy <= math.log2(distinct) + 1e-9

    def test_binomial_lower_bound(self):
        assert binomial_lower_bound(0, 10) == 0
        assert binomial_lower_bound(10, 10) == 0
        assert binomial_lower_bound(1, 2) == 1
        assert binomial_lower_bound(2, 4) == math.ceil(math.log2(6))
        with pytest.raises(ValueError):
            binomial_lower_bound(5, 4)

    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_binomial_bound_vs_entropy_formula(self, m, n):
        if m > n or n == 0:
            return
        bound = binomial_lower_bound(m, n)
        # B(m, n) <= n H(m/n) + O(1)  (the inequality used throughout the paper)
        assert bound <= n * binary_entropy(m / n) + 1.5


class TestSequenceBounds:
    def test_known_small_sequence(self):
        values = ["a", "b", "a", "a"]
        bounds = compute_bounds(values)
        assert bounds.length == 4
        assert bounds.distinct == 2
        assert bounds.entropy_per_symbol == pytest.approx(binary_entropy(0.25))
        assert bounds.entropy_bits == pytest.approx(4 * binary_entropy(0.25))
        assert bounds.lb_bits == pytest.approx(bounds.lt_bits + bounds.entropy_bits)
        # 'a\0' and 'b\0' are 16 bits each: total input 64 bits.
        assert bounds.total_input_bits == 64
        assert bounds.edges == 2
        assert bounds.average_height == 1.0

    def test_empty_sequence(self):
        bounds = compute_bounds([])
        assert bounds.length == 0
        assert bounds.lb_bits == 0
        assert bounds.average_height == 0.0

    def test_average_height_matches_trie(self, url_log):
        values = url_log[:150]
        bounds = compute_bounds(values)
        trie = WaveletTrie(values)
        assert bounds.average_height == pytest.approx(trie.average_height())
        assert bounds.label_bits == trie.label_bits()

    def test_lemma_3_5_bounds(self, url_log, query_log, column_values):
        """H0(S) <= h~ <= average input length (Lemma 3.5)."""
        for values in (url_log[:200], query_log[:200], column_values[:200]):
            bounds = compute_bounds(values)
            average_length = bounds.total_input_bits / bounds.length
            assert bounds.entropy_per_symbol <= bounds.average_height + 1e-9
            assert bounds.average_height <= average_length + 1e-9

    def test_as_dict(self):
        bounds = compute_bounds(["x", "y"])
        flat = bounds.as_dict()
        assert flat["n"] == 2 and "LB_bits" in flat


class TestSpaceReport:
    def test_report_components(self, column_values):
        values = column_values[:150]
        for trie in (WaveletTrie(values), AppendOnlyWaveletTrie(values), DynamicWaveletTrie(values)):
            report = wavelet_trie_space_report(trie)
            assert report.total_bits > 0
            assert report.components["node_labels"] == trie.label_bits()
            assert report.components["node_bitvectors"] == trie.bitvector_bits()
            assert report.bits_per_element(len(values)) == pytest.approx(
                report.total_bits / len(values)
            )
            assert "total_bits" in report.as_dict()

    def test_static_uses_succinct_topology(self, column_values):
        trie = WaveletTrie(column_values[:100])
        report = wavelet_trie_space_report(trie)
        assert "topology" in report.components
        assert "topology_pointers" not in report.components

    def test_measured_space_vs_bounds(self, column_values):
        """The headline Table 1 claim, in miniature: measured bitvector space
        stays within a small factor of nH0 while the raw data is much larger.

        The claim is about the regime the paper targets (n >> |Sset|); the
        column workload has 24 distinct values over 350 rows.
        """
        bounds = compute_bounds(column_values)
        trie = WaveletTrie(column_values)
        assert trie.bitvector_bits() <= 3.0 * bounds.entropy_bits + 4096
        assert trie.bitvector_bits() < bounds.total_input_bits
