"""Tests for the space-vs-bounds report generator."""

import math

import pytest

from repro.analysis.report import (
    format_table,
    space_vs_bounds,
    space_vs_bounds_table,
    variant_space_sweep,
)


class TestFormatTable:
    def test_markdown_shape(self):
        text = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert "22" in lines[3]

    def test_plain_text(self):
        text = format_table(["name", "bits"], [["static", 1234]], markdown=False)
        assert "|" not in text
        assert "1,234" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.567]])
        assert "1,234.6" in text

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text and "headers" in text


class TestSpaceVsBounds:
    @pytest.fixture(scope="class")
    def workload(self, url_log):
        return url_log[:300]

    def test_reports_for_all_variants(self, workload):
        bounds, reports = space_vs_bounds(workload)
        assert set(reports) == {"static", "append-only", "dynamic"}
        assert bounds.length == len(workload)
        for report in reports.values():
            assert report.total_bits > 0

    def test_measured_exceeds_entropy(self, workload):
        """No lossless structure can beat nH0 + LT on this alphabet."""
        bounds, reports = space_vs_bounds(workload, variants=("static",))
        assert reports["static"].total_bits >= bounds.entropy_bits

    def test_static_is_smallest(self, workload):
        _, reports = space_vs_bounds(workload)
        assert reports["static"].total_bits <= reports["append-only"].total_bits
        assert reports["static"].total_bits <= reports["dynamic"].total_bits

    def test_unknown_variant(self, workload):
        with pytest.raises(ValueError):
            space_vs_bounds(workload, variants=("huffman",))

    def test_table_contains_summary_and_ratio(self, workload):
        text = space_vs_bounds_table(workload, variants=("static",))
        assert "|Sset|" in text
        assert "measured / LB" in text
        assert "x" in text.splitlines()[-1]

    def test_sweep_has_one_block_per_workload(self, workload, query_log):
        text = variant_space_sweep(
            {"urls": workload[:100], "queries": query_log[:100]},
            markdown=True,
        )
        assert text.count("### ") == 2
        assert "urls" in text and "queries" in text

    def test_empty_sequence(self):
        bounds, reports = space_vs_bounds([], variants=("static",))
        assert bounds.length == 0
        assert reports["static"].total_bits == 0
        text = space_vs_bounds_table([], variants=("static",))
        assert "n = 0" in text
        assert not math.isnan(bounds.lt_bits)
