"""The tier lifecycle: the ``Tier`` protocol, ``TrieFreezer``, ``freeze_trie``.

Every trie flavour must satisfy the structural :class:`~repro.core.tiers.Tier`
protocol, and the budgeted freeze must be *exactly* equivalent to the one-shot
static RRR build: same content, same topology, same measured bits (classes and
offsets are deterministic functions of the payload).  The de-amortisation
contract (Lemma 4.7 applied to a whole trie) is checked by driving the freeze
with a unit budget and asserting bounded per-step progress.
"""

import pytest

from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.core.tiers import Tier, TieredWaveletTrie, TrieFreezer, freeze_trie
from repro.exceptions import InvalidOperationError

ALL_FLAVOURS = [
    WaveletTrie,
    SuccinctWaveletTrie,
    AppendOnlyWaveletTrie,
    DynamicWaveletTrie,
    TieredWaveletTrie,
]


class TestTierProtocol:
    @pytest.mark.parametrize("flavour", ALL_FLAVOURS)
    def test_every_flavour_satisfies_the_protocol(self, flavour, url_log):
        trie = flavour(url_log[:40])
        assert isinstance(trie, Tier)

    @pytest.mark.parametrize(
        "flavour,state",
        [
            (WaveletTrie, "frozen"),
            (SuccinctWaveletTrie, "frozen"),
            (AppendOnlyWaveletTrie, "mutable"),
            (DynamicWaveletTrie, "mutable"),
            (TieredWaveletTrie, "mutable"),
        ],
    )
    def test_tier_state(self, flavour, state, url_log):
        assert flavour(url_log[:30]).tier_state == state

    @pytest.mark.parametrize("flavour", [WaveletTrie, SuccinctWaveletTrie])
    def test_frozen_tiers_report_done_immediately(self, flavour, url_log):
        trie = flavour(url_log[:30])
        assert trie.freeze_step() is True
        assert trie.freeze_step(1) is True

    @pytest.mark.parametrize("flavour", ALL_FLAVOURS)
    def test_to_succinct_preserves_content(self, flavour, url_log):
        values = url_log[:60]
        succinct = flavour(values).to_succinct()
        assert isinstance(succinct, SuccinctWaveletTrie)
        assert succinct.to_list() == values
        assert succinct.tier_state == "frozen"

    def test_succinct_to_succinct_is_identity(self, url_log):
        trie = SuccinctWaveletTrie(url_log[:30])
        assert trie.to_succinct() is trie

    @pytest.mark.parametrize(
        "flavour", [AppendOnlyWaveletTrie, DynamicWaveletTrie]
    )
    def test_growable_freeze_step_is_resumable(self, flavour, url_log):
        """freeze_step drives a cached TrieFreezer to completion across
        calls; finish_freeze returns the static trie and resets the state."""
        values = url_log[:120]
        trie = flavour(values)
        steps = 0
        while not trie.freeze_step(2):
            steps += 1
            assert steps < 10_000, "freeze_step never completed"
        assert steps > 1, "a unit budget should take several steps"
        frozen = trie.finish_freeze()
        assert isinstance(frozen, WaveletTrie)
        assert frozen.to_list() == values
        # The source is untouched and can freeze again from scratch.
        assert trie.to_list() == values
        again = trie.finish_freeze()
        assert again.to_list() == values

    def test_protocol_rejects_non_tiers(self):
        assert not isinstance(object(), Tier)
        assert not isinstance([], Tier)


class TestTrieFreezer:
    @pytest.mark.parametrize(
        "flavour", [DynamicWaveletTrie, AppendOnlyWaveletTrie]
    )
    def test_budgeted_freeze_equals_one_shot_build(self, flavour, url_log):
        """Step-by-step freezing under a tiny budget produces a static RRR
        trie structurally identical to the direct bulk build."""
        values = url_log[:150]
        freezer = TrieFreezer(flavour(values))
        while not freezer.done:
            freezer.step(3)
        frozen = freezer.finish()
        reference = WaveletTrie(values, bitvector="rrr")
        assert frozen.to_list() == values
        assert frozen.node_count() == reference.node_count()
        assert frozen.size_in_bits() == reference.size_in_bits()

    def test_step_does_bounded_work(self, url_log):
        """A unit-budget step is bounded by one extraction chunk's worth of
        block units (extraction is chunk-atomic), never a whole-trie pass."""
        from repro.core.tiers import _EXTRACT_CHUNK_BITS

        freezer = TrieFreezer(DynamicWaveletTrie(url_log[:200]))
        ceiling = _EXTRACT_CHUNK_BITS // freezer._block_size + 1
        while not freezer.done:
            assert freezer.step(1) <= ceiling
        assert freezer.step(5) == 0  # done: no more work units

    def test_pending_bits_decreases_to_zero(self, url_log):
        trie = DynamicWaveletTrie(url_log[:80])
        freezer = TrieFreezer(trie)
        gauge = freezer.pending_bits
        assert gauge > 0
        while not freezer.done:
            freezer.step(8)
            assert freezer.pending_bits <= gauge
            gauge = freezer.pending_bits
        assert freezer.pending_bits == 0

    def test_mutation_mid_freeze_is_detected(self, url_log):
        trie = DynamicWaveletTrie(url_log[:50])
        freezer = TrieFreezer(trie)
        freezer.step(1)
        trie.append("http://late.example/write")
        with pytest.raises(InvalidOperationError, match="mutated while a freeze"):
            freezer.step(1)

    def test_budget_must_be_positive(self, url_log):
        freezer = TrieFreezer(DynamicWaveletTrie(url_log[:10]))
        with pytest.raises(ValueError, match="positive block count"):
            freezer.step(0)

    def test_empty_trie_freezes_instantly(self):
        freezer = TrieFreezer(DynamicWaveletTrie())
        assert freezer.done
        assert freezer.pending_bits == 0
        frozen = freezer.finish()
        assert len(frozen) == 0 and frozen.to_list() == []


class TestFreezeTrie:
    def test_static_and_succinct_pass_through(self, url_log):
        static = WaveletTrie(url_log[:20])
        succinct = SuccinctWaveletTrie(url_log[:20])
        assert freeze_trie(static) is static
        assert freeze_trie(succinct) is succinct

    @pytest.mark.parametrize(
        "flavour", [DynamicWaveletTrie, AppendOnlyWaveletTrie]
    )
    def test_growable_freezes_to_static(self, flavour, url_log):
        values = url_log[:70]
        frozen = freeze_trie(flavour(values))
        assert isinstance(frozen, WaveletTrie)
        assert frozen.to_list() == values

    def test_tiered_freezes_to_frozen_snapshot(self, url_log):
        tiered = TieredWaveletTrie(url_log[:90], active_capacity=32)
        snapshot = freeze_trie(tiered)
        assert isinstance(snapshot, TieredWaveletTrie)
        assert snapshot.to_list() == tiered.to_list()
        assert all(row["state"] != "mutable" or row["elements"] == 0
                   for row in snapshot.tier_info())

    def test_non_tier_is_rejected(self):
        with pytest.raises(InvalidOperationError, match="not a Wavelet Trie tier"):
            freeze_trie(["not", "a", "trie"])
