"""Tests for the append-only Wavelet Trie (Theorem 4.3)."""

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.static import WaveletTrie
from repro.exceptions import InvalidOperationError, OutOfBoundsError


class TestAppend:
    def test_incremental_growth_matches_static(self, url_log):
        values = url_log[:200]
        append_only = AppendOnlyWaveletTrie(block_size=128)
        for count, value in enumerate(values, start=1):
            append_only.append(value)
            assert len(append_only) == count
        static = WaveletTrie(values)
        assert append_only.to_list() == values
        assert append_only.node_count() == static.node_count()
        assert append_only.distinct_count() == static.distinct_count()

    def test_queries_during_growth(self, query_log):
        """Rank/select/prefix answers stay correct after every single append."""
        values = query_log[:120]
        naive = NaiveIndexedSequence()
        trie = AppendOnlyWaveletTrie(block_size=64)
        probes = ["weather", values[0], "py", "nonexistent query"]
        for value in values:
            trie.append(value)
            naive.append(value)
            size = len(naive)
            assert trie.access(size - 1) == value
            for probe in probes:
                assert trie.rank(probe, size) == naive.rank(probe, size)
                assert trie.rank_prefix(probe, size) == naive.rank_prefix(probe, size)

    def test_unseen_values_grow_the_alphabet(self):
        trie = AppendOnlyWaveletTrie(["base"])
        assert trie.distinct_count() == 1
        trie.append("base/extended")
        trie.append("another")
        trie.append("base")
        assert trie.distinct_count() == 3
        assert trie.to_list() == ["base", "base/extended", "another", "base"]
        assert trie.rank_prefix("base", 4) == 3

    def test_first_append_on_empty(self):
        trie = AppendOnlyWaveletTrie()
        trie.append("only")
        assert trie.to_list() == ["only"]
        assert trie.count("only") == 1

    def test_extend(self, column_values):
        trie = AppendOnlyWaveletTrie()
        trie.extend(column_values[:40])
        assert trie.to_list() == column_values[:40]

    def test_insert_only_at_end(self):
        trie = AppendOnlyWaveletTrie(["a"])
        trie.insert("b", 1)  # same as append
        assert trie.to_list() == ["a", "b"]
        with pytest.raises(InvalidOperationError):
            trie.insert("c", 0)

    def test_delete_rejected(self):
        trie = AppendOnlyWaveletTrie(["a"])
        with pytest.raises(InvalidOperationError):
            trie.delete(0)

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            AppendOnlyWaveletTrie(block_size=16)


class TestInitOffsets:
    def test_split_installs_constant_prefix(self):
        """Figure 3: splitting a node creates a bitvector whose prefix is constant."""
        trie = AppendOnlyWaveletTrie(block_size=64)
        for _ in range(100):
            trie.append("shared/prefix/alpha")
        trie.append("shared/prefix/beta")  # forces a split of the single leaf
        assert trie.distinct_count() == 2
        assert trie.count("shared/prefix/alpha") == 100
        assert trie.count("shared/prefix/beta") == 1
        assert trie.select("shared/prefix/beta", 0) == 100
        assert trie.rank_prefix("shared/prefix", 101) == 101
        # The new internal node's bitvector must have an Init offset: its
        # first 100 bits are constant.
        deepest = max(
            (node for node in trie.nodes() if not node.is_leaf),
            key=lambda node: len(node.label),
        )
        first_hundred = list(deepest.bitvector.iter_range(0, 100))
        assert len(set(first_hundred)) == 1

    def test_split_near_root_with_large_history(self):
        trie = AppendOnlyWaveletTrie(block_size=64)
        for index in range(300):
            trie.append(f"aaa/{index % 3}")
        trie.append("zzz")  # splits the root: Init over 300 elements
        assert trie.count_prefix("aaa/") == 300
        assert trie.count("zzz") == 1
        assert trie.access(300) == "zzz"
        assert trie.select_prefix("zzz", 0) == 300
        root = trie.root
        assert len(root.bitvector) == 301
        assert root.bitvector.rank(root.bitvector.access(300), 300) in (0, 300)


class TestPrefixQueries:
    def test_prefix_rank_and_select(self, url_log):
        values = url_log[:150]
        trie = AppendOnlyWaveletTrie(values)
        naive = NaiveIndexedSequence(values)
        prefixes = ["http://", "http://www.", values[0][:20], values[3], "ftp://"]
        for prefix in prefixes:
            for pos in (0, 50, 150):
                assert trie.rank_prefix(prefix, pos) == naive.rank_prefix(prefix, pos)
            total = naive.count_prefix(prefix) if hasattr(naive, "count_prefix") else naive.rank_prefix(prefix, len(values))
            for idx in range(0, total, max(1, total // 5)):
                assert trie.select_prefix(prefix, idx) == naive.select_prefix(prefix, idx)
            if total:
                with pytest.raises(OutOfBoundsError):
                    trie.select_prefix(prefix, total)
