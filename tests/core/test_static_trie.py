"""Tests for the static Wavelet Trie (Theorem 3.7)."""

import pytest

from repro.analysis import compute_bounds
from repro.baselines import NaiveIndexedSequence
from repro.core.static import WaveletTrie
from repro.exceptions import (
    ImmutableStructureError,
    OutOfBoundsError,
    ValueNotFoundError,
)
from repro.tries.binarize import BytesCodec


class TestConstruction:
    def test_empty(self):
        trie = WaveletTrie([])
        assert len(trie) == 0
        assert trie.is_empty()
        assert trie.rank("x", 0) == 0
        assert trie.rank_prefix("x", 0) == 0
        with pytest.raises(OutOfBoundsError):
            trie.access(0)
        with pytest.raises(ValueNotFoundError):
            trie.select("x", 0)

    def test_single_value(self):
        trie = WaveletTrie(["hello"])
        assert len(trie) == 1
        assert trie.access(0) == "hello"
        assert trie.rank("hello", 1) == 1
        assert trie.select("hello", 0) == 0
        assert trie.rank("other", 1) == 0
        assert trie.distinct_count() == 1
        assert trie.node_count() == 1  # a single leaf

    def test_constant_sequence(self):
        trie = WaveletTrie(["x"] * 50)
        assert trie.count("x") == 50
        assert trie.select("x", 49) == 49
        assert trie.access(31) == "x"
        assert trie.node_count() == 1

    def test_two_distinct_values(self):
        trie = WaveletTrie(["aa", "ab", "aa"])
        assert trie.node_count() == 3
        assert trie.access(1) == "ab"
        assert trie.rank("aa", 3) == 2

    def test_unknown_bitvector_kind(self):
        with pytest.raises(ValueError):
            WaveletTrie(["a"], bitvector="huffman")

    def test_bytes_codec(self):
        values = [b"\x00\x01", b"\x00", b"\xff\x00\xff", b"\x00\x01"]
        trie = WaveletTrie(values, codec=BytesCodec())
        assert trie.to_list() == values
        assert trie.rank(b"\x00\x01", 4) == 2
        assert trie.select(b"\xff\x00\xff", 0) == 2

    def test_iteration_and_getitem(self, url_log):
        trie = WaveletTrie(url_log[:50])
        assert list(trie) == url_log[:50]
        assert trie[10] == url_log[10]
        assert trie[-1] == url_log[49]
        assert url_log[0] in trie
        assert "http://nope.example/" not in trie


class TestQueriesAgainstOracle:
    @pytest.fixture(scope="class")
    def pair(self, url_log):
        values = url_log[:250]
        return WaveletTrie(values), NaiveIndexedSequence(values), values

    def test_access(self, pair):
        trie, naive, values = pair
        for pos in range(0, len(values), 7):
            assert trie.access(pos) == naive.access(pos)

    def test_rank_select(self, pair):
        trie, naive, values = pair
        for value in set(values):
            total = naive.count(value)
            assert trie.count(value) == total
            for pos in (0, len(values) // 3, len(values)):
                assert trie.rank(value, pos) == naive.rank(value, pos)
            for idx in range(0, total, max(1, total // 4)):
                assert trie.select(value, idx) == naive.select(value, idx)

    def test_select_out_of_range(self, pair):
        trie, naive, values = pair
        value = values[0]
        with pytest.raises(OutOfBoundsError):
            trie.select(value, naive.count(value))
        with pytest.raises(ValueNotFoundError):
            trie.select("http://never-seen.example/x", 0)

    def test_rank_of_absent_value(self, pair):
        trie, _, values = pair
        assert trie.rank("http://never-seen.example/x", len(values)) == 0
        # A value that is a strict prefix of stored values is also absent.
        prefix_like = values[0].rsplit("/", 1)[0]
        if prefix_like not in values:
            assert trie.rank(prefix_like, len(values)) == 0

    def test_positions_iterator(self, pair):
        trie, naive, values = pair
        value = values[1]
        assert list(trie.positions(value)) == [
            i for i, v in enumerate(values) if v == value
        ]

    def test_heights(self, pair):
        trie, _, values = pair
        heights = [trie.height_of(value) for value in set(values)]
        assert all(h >= 1 for h in heights)
        average = trie.average_height()
        assert 0 < average <= max(heights)
        # Definition 3.4: h~ n equals the total bitvector length.
        total_bits = sum(
            len(node.bitvector) for node in trie.nodes() if not node.is_leaf
        )
        assert abs(average * len(values) - total_bits) < 1e-6


class TestImmutability:
    def test_updates_rejected(self):
        trie = WaveletTrie(["a", "b"])
        with pytest.raises(ImmutableStructureError):
            trie.append("c")
        with pytest.raises(ImmutableStructureError):
            trie.insert("c", 0)
        with pytest.raises(ImmutableStructureError):
            trie.delete(0)


class TestSpaceAccounting:
    def test_bitvector_kinds_sizes(self, column_values):
        sizes = {}
        for kind in ("rrr", "plain", "rle"):
            trie = WaveletTrie(column_values, bitvector=kind)
            assert trie.to_list() == column_values
            sizes[kind] = trie.bitvector_bits()
        # For skewed data the RRR node bitvectors win over the plain ones;
        # RLE pays a per-node sampling overhead that matters on the short
        # bitvectors of this small workload, so only a loose factor is
        # asserted there (the ABL-BV benchmark studies the real trade-off).
        assert sizes["rrr"] < sizes["plain"]
        assert sizes["rle"] < 2.0 * sizes["plain"]

    def test_succinct_breakdown_tracks_lower_bound(self, column_values):
        trie = WaveletTrie(column_values)
        bounds = compute_bounds(column_values)
        breakdown = trie.succinct_space_breakdown()
        assert breakdown["total"] > 0
        # The node bitvector payloads should be within a modest factor of nH0
        # (RRR pays ~6 bits of class information per 63-bit block).
        assert breakdown["bitvectors"] <= 3.0 * bounds.entropy_bits + 4096
        # Labels measured on the trie equal |L| from the bounds computation.
        assert breakdown["labels"] == bounds.label_bits
        # And the whole structure fits well below the raw input size.
        assert breakdown["total"] < bounds.total_input_bits * 1.1 + 4096

    def test_empty_breakdown(self):
        assert WaveletTrie([]).succinct_space_breakdown()["total"] == 0
