"""Topology-churn stress tests for the growable Wavelet Tries.

The paper's Section 4 structural updates -- one Patricia node split per newly
seen string (Figure 3, via ``Init``) and one merge when the last occurrence of
a string is deleted (the dagger case of Table 1) -- are exercised here under
*churn*: interleaved insert/delete/append sequences that repeatedly split and
re-merge the same nodes, cross-checked property-style against the naive
oracle on ``access``/``rank``/``select``/``rank_prefix`` and the batched
query paths after every phase.
"""

import random

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.exceptions import ValueNotFoundError

# A small universe whose keys share long prefixes, so splits and merges keep
# hitting the same Patricia nodes: "app/le" splits the "app/l*" branch that
# "app/li" and "app/lo" share, deleting it merges the branch back, etc.
UNIVERSE = [
    "app/li", "app/lo", "app/le", "app/lemon",
    "app/x", "apricot", "banana", "band", "b",
]
PREFIX_PROBES = ["app/", "app/l", "app/le", "ap", "b", "ban", "zzz", ""]


def _cross_check(trie, naive, rng, probes=UNIVERSE):
    size = len(naive)
    assert len(trie) == size
    if size == 0:
        return
    positions = [rng.randrange(size) for _ in range(12)]
    for pos in positions:
        assert trie.access(pos) == naive.access(pos)
    # Batched access agrees with the oracle in one call.
    assert trie.access_many(positions) == [naive.access(p) for p in positions]
    rank_positions = [rng.randint(0, size) for _ in range(8)]
    for value in probes:
        assert trie.rank_many(value, rank_positions) == [
            naive.rank(value, p) for p in rank_positions
        ]
        count = naive.rank(value, size)
        if count:
            idx = rng.randrange(count)
            assert trie.select(value, idx) == naive.select(value, idx)
        else:
            with pytest.raises(ValueNotFoundError):
                trie.select(value, 0)
    for prefix in PREFIX_PROBES:
        for pos in rank_positions[:4]:
            assert trie.rank_prefix(prefix, pos) == naive.rank_prefix(prefix, pos)


class TestDynamicTrieChurn:
    def test_interleaved_insert_delete_append_split_merge(self):
        """Random churn over a prefix-sharing universe: every operation mix
        that can split a node, re-merge it, and split it again."""
        rng = random.Random(20260727)
        trie = DynamicWaveletTrie()
        naive = NaiveIndexedSequence()
        for step in range(900):
            action = rng.random()
            if action < 0.45 or len(naive) == 0:
                value = rng.choice(UNIVERSE)
                position = rng.randint(0, len(naive))
                trie.insert(value, position)
                naive.insert(value, position)
            elif action < 0.75:
                position = rng.randrange(len(naive))
                assert trie.delete(position) == naive.delete(position)
            else:
                value = rng.choice(UNIVERSE)
                trie.append(value)
                naive.append(value)
            if step % 150 == 0:
                _cross_check(trie, naive, rng)
        _cross_check(trie, naive, rng)
        # The trie's shape must equal a fresh static build of the same
        # content: no stale topology survives the churn.
        static = WaveletTrie(naive.iter_range(0, len(naive)))
        assert trie.node_count() == static.node_count()
        assert trie.distinct_count() == static.distinct_count()

    def test_repeated_split_merge_of_same_node(self):
        """Insert-then-delete the same discriminating key many times: the
        split node and its merged-back sibling must stay consistent."""
        rng = random.Random(3)
        base = ["app/li"] * 4 + ["app/lo"] * 3
        trie = DynamicWaveletTrie(base)
        naive = NaiveIndexedSequence(base)
        for cycle in range(40):
            position = rng.randint(0, len(naive))
            trie.insert("app/le", position)  # splits the shared "app/l" node
            naive.insert("app/le", position)
            _cross_check(trie, naive, rng, probes=["app/li", "app/lo", "app/le"])
            where = naive.select("app/le", 0)
            assert trie.delete(where) == naive.delete(where)  # merges it back
            assert trie.count("app/le") == 0
            _cross_check(trie, naive, rng, probes=["app/li", "app/lo", "app/le"])
        assert trie.to_list() == list(naive.iter_range(0, len(naive)))

    def test_bulk_extend_interleaved_with_churn(self):
        """extend() batches (which buffer bits and flush on topology change)
        interleaved with scalar inserts/deletes stay oracle-equal."""
        rng = random.Random(11)
        trie = DynamicWaveletTrie()
        naive = NaiveIndexedSequence()
        for phase in range(6):
            batch = [rng.choice(UNIVERSE) for _ in range(120)]
            # A brand-new key mid-batch forces a flush + split mid-extend.
            batch[60] = f"fresh/{phase}"
            trie.extend(batch)
            for value in batch:
                naive.append(value)
            for _ in range(20):
                if rng.random() < 0.5 and len(naive):
                    position = rng.randrange(len(naive))
                    assert trie.delete(position) == naive.delete(position)
                else:
                    value = rng.choice(UNIVERSE)
                    position = rng.randint(0, len(naive))
                    trie.insert(value, position)
                    naive.insert(value, position)
            _cross_check(trie, naive, rng, probes=UNIVERSE + [f"fresh/{phase}"])


class TestTieredTrieChurn:
    def test_churn_with_compaction_in_flight(self):
        """The dynamic-trie churn mix, replayed on the LSM composition with a
        tiny capacity so seals and budgeted freezes run throughout: inserts
        and deletes land in the mutable tail window, queries stay exact
        against the oracle at every checkpoint (most of them mid-freeze)."""
        rng = random.Random(20260808)
        tiered = TieredWaveletTrie(active_capacity=24, compact_budget=1)
        naive = NaiveIndexedSequence()
        for step in range(900):
            action = rng.random()
            start = tiered.mutable_start
            window = len(naive) - start
            if action < 0.45 or window == 0:
                value = rng.choice(UNIVERSE)
                position = start + rng.randint(0, window)
                tiered.insert(value, position)
                naive.insert(value, position)
            elif action < 0.70:
                position = start + rng.randrange(window)
                assert tiered.delete(position) == naive.delete(position)
            elif action < 0.90:
                value = rng.choice(UNIVERSE)
                tiered.append(value)
                naive.append(value)
            else:
                tiered.compact_step(1 + rng.randrange(8))
            if step % 150 == 0:
                _cross_check(tiered, naive, rng)
        _cross_check(tiered, naive, rng)
        assert tiered.tier_count > 1
        # Draining every freeze and merging changes no answer.
        tiered.compact(merge=True)
        _cross_check(tiered, naive, rng)
        assert tiered.to_list() == list(naive.iter_range(0, len(naive)))


class TestAppendOnlyTrieChurn:
    def test_bulk_extend_with_new_keys_mid_batch(self):
        """Append-only growth where unseen keys keep arriving mid-batch:
        every split's Init must observe the flushed counts."""
        rng = random.Random(5)
        trie = AppendOnlyWaveletTrie(block_size=64)
        naive = NaiveIndexedSequence()
        for phase in range(5):
            batch = []
            for i in range(150):
                if i % 37 == 0:
                    batch.append(f"new/{phase}/{i}")  # splits mid-batch
                else:
                    batch.append(rng.choice(UNIVERSE))
            trie.extend(batch)
            for value in batch:
                naive.append(value)
            _cross_check(trie, naive, rng)
        # Equivalent to the same content appended one element at a time.
        reference = AppendOnlyWaveletTrie(block_size=64)
        for value in naive.iter_range(0, len(naive)):
            reference.append(value)
        assert trie.to_list() == reference.to_list()
        assert trie.node_count() == reference.node_count()
