"""The paper's Figure 2 worked example, node by node.

Figure 2 shows the Wavelet Trie of the sequence
``<0001, 0011, 0100, 00100, 0100, 00100, 0100>``.  Applying Definition 3.1:

* root:                alpha = "0",  beta = 0010101
* root's 0-child:      alpha = "",   beta = 0111
* root's 1-child:      alpha = "00"  (leaf; the three "0100")
* 0-child's 0-child:   alpha = "1"   (leaf; "0001")
* 0-child's 1-child:   alpha = "",   beta = 100
*   its 1-child:       alpha = ""    (leaf; "0011")
*   its 0-child:       alpha = "0"   (leaf; the two "00100")

The root, its two children and the beta bitvectors match the figure exactly;
for every leaf the test additionally re-derives the stored string by
concatenating labels and branching bits along the path, which pins down the
deeper labels unambiguously.
"""

import pytest

from repro.bits.bitstring import Bits
from repro.core.static import WaveletTrie


SEQUENCE = ["0001", "0011", "0100", "00100", "0100", "00100", "0100"]


def build(bitvector="rrr"):
    encoded = [Bits.from_string(s) for s in SEQUENCE]
    return WaveletTrie.from_bits_sequence(encoded, bitvector=bitvector)


def bits_of(vector):
    return "".join(str(bit) for bit in vector)


class TestFigure2Structure:
    def test_root(self):
        trie = build()
        root = trie.root
        assert root.label == Bits.from_string("0")
        assert bits_of(root.bitvector) == "0010101"

    def test_left_subtree(self):
        trie = build()
        left = trie.root.children[0]
        assert left.label == Bits.empty()
        assert bits_of(left.bitvector) == "0111"
        # Its 0-child is the leaf of "0001": remaining label "1".
        leaf_0001 = left.children[0]
        assert leaf_0001.is_leaf
        assert leaf_0001.label == Bits.from_string("1")
        # Its 1-child holds {0011, 00100}: label "", bitvector 100.
        inner = left.children[1]
        assert inner.label == Bits.empty()
        assert bits_of(inner.bitvector) == "100"
        assert inner.children[1].is_leaf and inner.children[1].label == Bits.empty()
        assert inner.children[0].is_leaf and inner.children[0].label == Bits.from_string("0")

    def test_right_subtree(self):
        trie = build()
        right = trie.root.children[1]
        assert right.is_leaf
        assert right.label == Bits.from_string("00")

    def test_node_count(self):
        trie = build()
        # 4 distinct strings -> 4 leaves + 3 internal nodes.
        assert trie.distinct_count() == 4
        assert trie.node_count() == 7

    @pytest.mark.parametrize("bitvector", ["rrr", "plain", "rle"])
    def test_queries_on_figure_sequence(self, bitvector):
        trie = build(bitvector)
        encoded = [Bits.from_string(s) for s in SEQUENCE]
        for position, value in enumerate(encoded):
            assert trie.access_bits(position) == value
        # Rank/select of each distinct value.
        for value in set(SEQUENCE):
            bits = Bits.from_string(value)
            occurrences = [i for i, s in enumerate(SEQUENCE) if s == value]
            assert trie.rank_bits(bits, len(SEQUENCE)) == len(occurrences)
            for idx, position in enumerate(occurrences):
                assert trie.select_bits(bits, idx) == position
        # RankPrefix on the "01"-prefixed strings (the three 0100).
        assert trie.rank_prefix_bits(Bits.from_string("01"), 7) == 3
        assert trie.rank_prefix_bits(Bits.from_string("00"), 7) == 4
        assert trie.rank_prefix_bits(Bits.from_string("0"), 7) == 7
        assert trie.rank_prefix_bits(Bits.from_string("1"), 7) == 0

    def test_append_only_and_dynamic_build_the_same_trie(self):
        from repro.core.append_only import AppendOnlyWaveletTrie
        from repro.core.dynamic import DynamicWaveletTrie
        from repro.tries.binarize import FixedWidthIntCodec

        static = build()
        # Use raw Bits through a pass-through: feed the same binary strings via
        # variable-length Bits is not possible with the int codec, so compare
        # structures by replaying the figure over the string codec instead.
        values = ["ab", "abba", "b", "ba", "b", "ab", "b"]
        reference = WaveletTrie(values)
        append_only = AppendOnlyWaveletTrie(values)
        dynamic = DynamicWaveletTrie(values)
        for trie in (append_only, dynamic):
            assert trie.to_list() == values
            assert trie.distinct_count() == reference.distinct_count()
            assert trie.node_count() == reference.node_count()
            # The labels and bitvector contents must agree node by node.
            static_nodes = {
                node.label.to01(): bits_of(node.bitvector)
                for node in reference.nodes() if not node.is_leaf
            }
            trie_nodes = {
                node.label.to01(): bits_of(node.bitvector)
                for node in trie.nodes() if not node.is_leaf
            }
            assert static_nodes == trie_nodes
