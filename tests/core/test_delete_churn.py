"""Hypothesis-driven differential fuzz of deletion churn and prefix batches.

The one mutation path the earlier suites barely touched: interleaved
``insert_many`` / ``delete_many`` / ``append`` / ``extend`` churn, with the
batched prefix queries (``rank_prefix_many`` / ``select_prefix_many``) and the
canonical ``select_prefix`` out-of-range error cross-checked against
:class:`~repro.baselines.naive.NaiveIndexedSequence` (whose own ``delete_many``
is the interface's unamortised scalar loop) after every phase.  Every test
runs under each available kernel backend -- parametrized like the
kernel-crosscheck suites -- so the numpy run surgery and the pure-python
oracle certify each other; with numpy absent the python run still covers
everything.

Deterministic regressions cover the structural corners by name:
empty-node pruning (a batch delete that empties whole subtrees, including
internal ones) and delete-to-empty-then-regrow.
"""

import contextlib
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import NaiveIndexedSequence
from repro.bits import kernel
from repro.bitvector.dynamic import DynamicBitVector
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.exceptions import OutOfBoundsError
from repro.wavelet.dynamic_wavelet_tree import FixedAlphabetDynamicWaveletTree

BACKENDS = kernel.available_backends()

# Keys sharing long prefixes, so deletions keep merging the same Patricia
# nodes that insertions re-split (cf. test_topology_churn.py).
UNIVERSE = [
    "app/li", "app/lo", "app/le", "app/lemon",
    "app/x", "apricot", "banana", "band", "b",
]
PREFIX_PROBES = ["app/", "app/l", "app/le", "ap", "b", "ban", "zzz", ""]


@contextlib.contextmanager
def active_backend(name):
    previous = kernel.use_backend(name)
    try:
        yield
    finally:
        kernel.use_backend(previous)


def _canonical_error_message(fn):
    with pytest.raises(OutOfBoundsError) as caught:
        fn()
    return str(caught.value)


def _cross_check(trie, naive, rng):
    size = len(naive)
    assert len(trie) == size
    if size == 0:
        return
    positions = [rng.randrange(size) for _ in range(8)]
    assert trie.access_many(positions) == [naive.access(p) for p in positions]
    rank_positions = [rng.randint(0, size) for _ in range(6)]
    for prefix in PREFIX_PROBES:
        assert trie.rank_prefix_many(prefix, rank_positions) == [
            naive.rank_prefix(prefix, p) for p in rank_positions
        ]
        total = naive.rank_prefix(prefix, size)
        if total:
            indexes = [rng.randrange(total) for _ in range(5)]
            assert trie.select_prefix_many(prefix, indexes) == [
                naive.select_prefix(prefix, idx) for idx in indexes
            ]
            # The canonical out-of-range contract: one exception type, one
            # message format, byte-identical to the oracle's.
            expected = _canonical_error_message(
                lambda: naive.select_prefix(prefix, total)
            )
            assert _canonical_error_message(
                lambda: trie.select_prefix(prefix, total)
            ) == expected
            assert _canonical_error_message(
                lambda: trie.select_prefix_many(prefix, [0, total])
            ) == expected


def _apply_op(trie, naive, op, rng):
    kind, a, b = op
    size = len(naive)
    if kind == "append":
        value = UNIVERSE[a % len(UNIVERSE)]
        trie.append(value)
        naive.append(value)
    elif kind == "insert":
        value = UNIVERSE[a % len(UNIVERSE)]
        position = b % (size + 1)
        trie.insert(value, position)
        naive.insert(value, position)
    elif kind == "extend":
        batch = [UNIVERSE[(a + i) % len(UNIVERSE)] for i in range(b)]
        trie.extend(batch)
        for value in batch:
            naive.append(value)
    elif kind == "insert_many":
        batch = [UNIVERSE[(a + i * i) % len(UNIVERSE)] for i in range(b)]
        position = a % (size + 1)
        trie.insert_many(batch, position)
        for offset, value in enumerate(batch):
            naive.insert(value, position + offset)
    elif kind == "delete" and size:
        position = a % size
        assert trie.delete(position) == naive.delete(position)
    elif kind == "delete_many" and size:
        count = min(size, 1 + b % 9)
        positions = rng.sample(range(size), count)
        expected = [naive.access(position) for position in positions]
        assert trie.delete_many(positions) == expected
        assert naive.delete_many(positions) == expected


OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["append", "insert", "extend", "insert_many", "delete", "delete_many"]
        ),
        st.integers(0, 2**20),
        st.integers(0, 11),
    ),
    min_size=1,
    max_size=30,
)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicTrieDeleteChurn:
    @given(ops=OPS, seed=st.integers(0, 2**16))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_interleaved_churn_matches_oracle(self, backend, ops, seed):
        rng = random.Random(seed)
        with active_backend(backend):
            trie = DynamicWaveletTrie()
            naive = NaiveIndexedSequence()
            for op in ops:
                _apply_op(trie, naive, op, rng)
            _cross_check(trie, naive, rng)
            # No stale topology: the trie's shape equals a fresh static
            # build of the surviving content.
            if len(naive):
                static = WaveletTrie(naive.to_list())
                assert trie.node_count() == static.node_count()
                assert trie.distinct_count() == static.distinct_count()
            else:
                assert trie.root is None

    @given(seed=st.integers(0, 2**16))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_delete_to_empty_then_regrow(self, backend, seed):
        """Wipe the whole sequence with one batch, then rebuild on the empty
        topology -- the root must reset to None and regrow cleanly."""
        rng = random.Random(seed)
        with active_backend(backend):
            values = [rng.choice(UNIVERSE) for _ in range(rng.randrange(1, 40))]
            trie = DynamicWaveletTrie(values)
            positions = list(range(len(values)))
            rng.shuffle(positions)
            assert trie.delete_many(positions) == [values[p] for p in positions]
            assert len(trie) == 0
            assert trie.root is None
            regrow = [rng.choice(UNIVERSE) for _ in range(20)]
            trie.extend(regrow)
            naive = NaiveIndexedSequence(regrow)
            _cross_check(trie, naive, rng)

    def test_batch_delete_prunes_internal_subtrees(self, backend):
        """Deleting every occurrence under a shared prefix in one batch must
        prune the emptied *internal* node (not just a leaf) and merge its
        parent with the sibling subtree."""
        with active_backend(backend):
            values = (
                ["app/li"] * 5 + ["app/lo"] * 4 + ["app/le"] * 3 + ["banana"] * 6
            )
            rng = random.Random(7)
            rng.shuffle(values)
            trie = DynamicWaveletTrie(values)
            naive = NaiveIndexedSequence(values)
            before = trie.node_count()
            # Every "app/l*" element: their shared subtree (several internal
            # nodes) empties in one delete_many.
            doomed = [i for i, value in enumerate(values) if value.startswith("app/l")]
            assert trie.delete_many(doomed) == [values[i] for i in doomed]
            naive.delete_many(doomed)
            assert trie.to_list() == naive.to_list()
            static = WaveletTrie(naive.to_list())
            assert trie.node_count() == static.node_count() < before
            _cross_check(trie, naive, rng)
            # The pruned keys can return: the topology re-splits correctly.
            trie.insert_many(["app/li", "app/le"], 2)
            naive.insert("app/le", 2)
            naive.insert("app/li", 2)
            assert trie.to_list() == naive.to_list()
            _cross_check(trie, naive, rng)

    def test_delete_many_validates_all_or_nothing(self, backend):
        from repro.exceptions import DuplicatePositionError, ReproError

        with active_backend(backend):
            values = ["app/li", "app/lo", "banana"]
            trie = DynamicWaveletTrie(values)
            with pytest.raises(OutOfBoundsError):
                trie.delete_many([0, 3])
            with pytest.raises(DuplicatePositionError):
                trie.delete_many([1, 1])
            # The duplicate error stays inside both hierarchies: library
            # callers catch ReproError, generic callers catch ValueError.
            assert issubclass(DuplicatePositionError, ReproError)
            assert issubclass(DuplicatePositionError, ValueError)
            # Nothing was deleted by the failed batches.
            assert trie.to_list() == values

    def test_empty_batches_never_raise(self, backend):
        """An empty index batch returns [] even for absent values/prefixes,
        matching the interface's default scalar loops (regression: the
        shared-walk overrides used to locate the node first and raise)."""
        from repro.core.succinct_static import SuccinctWaveletTrie

        with active_backend(backend):
            values = ["app/li", "app/lo", "banana"]
            for trie in (
                DynamicWaveletTrie(values),
                WaveletTrie(values),
                SuccinctWaveletTrie(values),
            ):
                assert trie.select_prefix_many("zzz", []) == []
                assert trie.select_many("zzz", []) == []
                assert trie.rank_prefix_many("zzz", []) == []
                assert trie.delete_many([]) == []
            naive = NaiveIndexedSequence(values)
            assert naive.select_prefix_many("zzz", []) == []
            assert naive.select_many("zzz", []) == []


def _apply_tiered_op(tiered, naive, op, rng):
    """Like ``_apply_op`` but window-aware: inserts and deletes land inside
    the mutable tail (the LSM retention rule), and compaction-lifecycle ops
    (``compact_step`` / ``compact``) are part of the churn mix."""
    kind, a, b = op
    start = tiered.mutable_start
    window = len(naive) - start
    if kind == "append":
        value = UNIVERSE[a % len(UNIVERSE)]
        tiered.append(value)
        naive.append(value)
    elif kind == "insert":
        value = UNIVERSE[a % len(UNIVERSE)]
        position = start + b % (window + 1)
        tiered.insert(value, position)
        naive.insert(value, position)
    elif kind == "extend":
        batch = [UNIVERSE[(a + i) % len(UNIVERSE)] for i in range(b)]
        tiered.extend(batch)
        for value in batch:
            naive.append(value)
    elif kind == "insert_many":
        batch = [UNIVERSE[(a + i * i) % len(UNIVERSE)] for i in range(b)]
        position = start + a % (window + 1)
        tiered.insert_many(batch, position)
        for offset, value in enumerate(batch):
            naive.insert(value, position + offset)
    elif kind == "delete" and window:
        position = start + a % window
        assert tiered.delete(position) == naive.delete(position)
    elif kind == "delete_many" and window:
        count = min(window, 1 + b % 9)
        positions = [start + p for p in rng.sample(range(window), count)]
        expected = [naive.access(position) for position in positions]
        assert tiered.delete_many(positions) == expected
        assert naive.delete_many(positions) == expected
    elif kind == "compact_step":
        tiered.compact_step(1 + a % 16)
    elif kind == "compact":
        tiered.compact(merge=bool(b % 2))
        assert tiered.mutable_start == len(naive)


TIERED_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "append", "insert", "extend", "insert_many", "delete",
                "delete_many", "compact_step", "compact",
            ]
        ),
        st.integers(0, 2**20),
        st.integers(0, 11),
    ),
    min_size=1,
    max_size=30,
)


@pytest.mark.parametrize("backend", BACKENDS)
class TestTieredTrieChurn:
    """The LSM composition under the same churn + batched-prefix-query
    differential as the dynamic trie, with freeze/compaction interleaved:
    a tiny ``active_capacity`` keeps seals constantly in flight, and a
    1-block ``compact_budget`` guarantees most queries run mid-freeze."""

    @given(ops=TIERED_OPS, seed=st.integers(0, 2**16))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_interleaved_churn_matches_oracle(self, backend, ops, seed):
        rng = random.Random(seed)
        with active_backend(backend):
            tiered = TieredWaveletTrie(active_capacity=8, compact_budget=1)
            naive = NaiveIndexedSequence()
            for op in ops:
                _apply_tiered_op(tiered, naive, op, rng)
                assert len(tiered) == len(naive)
            _cross_check(tiered, naive, rng)
            assert tiered.to_list() == naive.to_list()

    @given(seed=st.integers(0, 2**16))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_queries_exact_at_every_compaction_step(self, backend, seed):
        """Drive one seal to completion a single block unit at a time,
        cross-checking the batched prefix queries after every unit: results
        must be exact with the freeze at any intermediate point."""
        rng = random.Random(seed)
        with active_backend(backend):
            values = [rng.choice(UNIVERSE) for _ in range(16)]
            tiered = TieredWaveletTrie(active_capacity=16, compact_budget=1)
            naive = NaiveIndexedSequence()
            tiered.extend(values)
            for value in values:
                naive.append(value)
            steps = 0
            while not tiered.freeze_step(1):
                _cross_check(tiered, naive, rng)
                steps += 1
                assert steps < 10_000, "compaction never finished"
            _cross_check(tiered, naive, rng)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDynamicBitVectorDeleteChurn:
    @given(
        payload=st.lists(st.integers(0, 1), min_size=1, max_size=300),
        seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_delete_many_matches_list_oracle(self, backend, payload, seed):
        rng = random.Random(seed)
        with active_backend(backend):
            vector = DynamicBitVector(payload)
            reference = list(payload)
            while reference:
                count = min(len(reference), 1 + rng.randrange(40))
                positions = rng.sample(range(len(reference)), count)
                expected = [reference[p] for p in positions]
                assert vector.delete_many(positions) == expected
                for position in sorted(positions, reverse=True):
                    reference.pop(position)
                assert vector.to_list() == reference
                runs = list(vector.runs())
                assert all(length > 0 for _, length in runs)
                assert all(
                    runs[i][0] != runs[i + 1][0] for i in range(len(runs) - 1)
                ), "delete_many left uncoalesced adjacent runs"
                if reference and rng.random() < 0.5:
                    at = rng.randrange(len(reference) + 1)
                    bits = [rng.randint(0, 1) for _ in range(rng.randrange(1, 20))]
                    vector.insert_many(at, bits)
                    reference[at:at] = bits

    def test_delete_range_returns_removed_runs(self, backend):
        with active_backend(backend):
            bits = [0] * 10 + [1] * 5 + [0] * 3 + [1] * 7
            vector = DynamicBitVector(bits)
            removed = vector.delete_range(8, 17)
            assert removed == [(0, 2), (1, 5), (0, 2)]
            assert vector.to_list() == bits[:8] + bits[17:]
            assert vector.delete_range(3, 3) == []
            with pytest.raises(OutOfBoundsError):
                vector.delete_range(2, 100)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFixedAlphabetDeleteChurn:
    @given(
        values=st.lists(st.integers(0, 6), min_size=1, max_size=120),
        seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_delete_many_matches_oracle(self, backend, values, seed):
        rng = random.Random(seed)
        with active_backend(backend):
            tree = FixedAlphabetDynamicWaveletTree(range(7), values)
            reference = list(values)
            count = min(len(reference), 1 + rng.randrange(30))
            positions = rng.sample(range(len(reference)), count)
            expected = [reference[p] for p in positions]
            assert tree.delete_many(positions) == expected
            for position in sorted(positions, reverse=True):
                reference.pop(position)
            assert tree.to_list() == reference
            if reference:
                symbol = rng.choice(reference)
                positions = [rng.randint(0, len(reference)) for _ in range(5)]
                assert tree.rank(symbol, positions[0]) == sum(
                    1 for v in reference[: positions[0]] if v == symbol
                )
