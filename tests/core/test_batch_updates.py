"""Property tests of the trie-layer batch paths against the naive oracle.

``select_many`` and ``insert_many`` on the growable Wavelet Tries (and the
fixed-alphabet dynamic Wavelet Tree) must agree with
:class:`~repro.baselines.naive.NaiveIndexedSequence` under sustained churn --
interleaved bulk inserts, scalar deletes (which shrink the Patricia topology)
and batch queries, with previously unseen keys arriving mid-stream.
"""

import random

import pytest

from repro.baselines.naive import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.exceptions import InvalidOperationError, OutOfBoundsError
from repro.wavelet.dynamic_wavelet_tree import FixedAlphabetDynamicWaveletTree


def check_against_oracle(trie, oracle, rng, probes=4):
    values = oracle.to_list()
    assert trie.to_list() == values
    for value in rng.sample(values, min(probes, len(values))):
        total = oracle.count(value)
        indexes = [rng.randrange(total) for _ in range(rng.randint(1, 12))]
        expected = [oracle.select(value, idx) for idx in indexes]
        assert trie.select_many(value, indexes) == expected


class TestDynamicTrieChurn:
    def test_insert_many_select_many_vs_naive(self):
        rng = random.Random(2026)
        keys = [f"/svc{i % 5}/route/{i}" for i in range(14)]
        trie = DynamicWaveletTrie()
        oracle = NaiveIndexedSequence()
        for round_number in range(25):
            position = rng.randint(0, len(oracle))
            # Bursts favour repeated keys; fresh keys force topology splits
            # mid-batch-stream.
            chunk = [rng.choice(keys) for _ in range(rng.randint(0, 9))]
            if round_number % 4 == 0:
                chunk.append(f"/fresh/{round_number}")
            trie.insert_many(chunk, position)
            for offset, value in enumerate(chunk):
                oracle.insert(value, position + offset)
            while len(oracle) and rng.random() < 0.35:
                victim = rng.randrange(len(oracle))
                assert trie.delete(victim) == oracle.delete(victim)
            if len(oracle):
                check_against_oracle(trie, oracle, rng)
        assert trie.to_list() == oracle.to_list()

    def test_insert_many_empty_and_bounds(self):
        trie = DynamicWaveletTrie(["/a", "/b"])
        trie.insert_many([], 1)
        assert trie.to_list() == ["/a", "/b"]
        with pytest.raises(OutOfBoundsError):
            trie.insert_many(["/c"], 3)

    def test_insert_many_matches_scalar_inserts(self):
        rng = random.Random(7)
        base = [f"/k{i % 6}" for i in range(40)]
        bulk = DynamicWaveletTrie(base)
        scalar = DynamicWaveletTrie(base)
        chunk = [rng.choice(base) for _ in range(15)] + ["/new-key"]
        position = 11
        bulk.insert_many(chunk, position)
        for offset, value in enumerate(chunk):
            scalar.insert(value, position + offset)
        assert bulk.to_list() == scalar.to_list()
        assert bulk.node_count() == scalar.node_count()


class TestAppendOnlyTrieBatch:
    def test_insert_many_end_only(self):
        trie = AppendOnlyWaveletTrie(["/a", "/b"])
        trie.insert_many(["/c", "/a"], 2)
        assert trie.to_list() == ["/a", "/b", "/c", "/a"]
        with pytest.raises(InvalidOperationError):
            trie.insert_many(["/x"], 0)

    def test_select_many_after_growth(self):
        rng = random.Random(55)
        values = [f"/page/{i % 7}" for i in range(300)]
        trie = AppendOnlyWaveletTrie()
        trie.extend(values)
        oracle = NaiveIndexedSequence(values)
        check_against_oracle(trie, oracle, rng, probes=5)


class TestFixedAlphabetBatch:
    def test_insert_many_select_many_vs_naive(self):
        rng = random.Random(99)
        alphabet = list("abcde")
        tree = FixedAlphabetDynamicWaveletTree(alphabet)
        oracle = NaiveIndexedSequence()
        for _ in range(30):
            position = rng.randint(0, len(oracle))
            chunk = [rng.choice(alphabet) for _ in range(rng.randint(0, 8))]
            tree.insert_many(chunk, position)
            for offset, value in enumerate(chunk):
                oracle.insert(value, position + offset)
            if len(oracle) and rng.random() < 0.4:
                victim = rng.randrange(len(oracle))
                assert tree.delete(victim) == oracle.delete(victim)
            if len(oracle):
                value = rng.choice(oracle.to_list())
                total = oracle.count(value)
                indexes = list(range(total))
                rng.shuffle(indexes)
                assert tree.select_many(value, indexes) == [
                    oracle.select(value, idx) for idx in indexes
                ]
        assert tree.to_list() == oracle.to_list()
