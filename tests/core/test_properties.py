"""Property-based tests: every Wavelet Trie variant against the naive oracle.

Hypothesis drives random sequences (and for the dynamic variant random edit
scripts); every primitive of the paper is compared with the list-based oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie

# Short hierarchical strings: plenty of shared prefixes and repetitions.
values_strategy = st.lists(
    st.builds(
        lambda a, b: f"{a}/{b}" if b else a,
        st.sampled_from(["a", "b", "ab", "net", "com"]),
        st.sampled_from(["", "x", "y", "xyz", "deep/path"]),
    ),
    max_size=60,
)

prefix_strategy = st.sampled_from(["", "a", "ab", "a/", "net/", "com/x", "zzz"])


def check_against_oracle(trie, values):
    oracle = NaiveIndexedSequence(values)
    assert len(trie) == len(values)
    assert trie.to_list() == values
    distinct = set(values)
    for value in distinct:
        assert trie.count(value) == oracle.count(value)
        pos = len(values) // 2
        assert trie.rank(value, pos) == oracle.rank(value, pos)
        occurrences = oracle.count(value)
        if occurrences:
            assert trie.select(value, occurrences - 1) == oracle.select(value, occurrences - 1)
    return oracle


class TestStaticProperties:
    @given(values_strategy)
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle(self, values):
        trie = WaveletTrie(values)
        check_against_oracle(trie, values)

    @given(values_strategy, prefix_strategy, st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_prefix_operations(self, values, prefix, raw_pos):
        trie = WaveletTrie(values)
        oracle = NaiveIndexedSequence(values)
        pos = min(raw_pos, len(values))
        assert trie.rank_prefix(prefix, pos) == oracle.rank_prefix(prefix, pos)
        total = oracle.rank_prefix(prefix, len(values))
        if total:
            assert trie.select_prefix(prefix, total - 1) == oracle.select_prefix(prefix, total - 1)

    @given(values_strategy, st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_range_analytics(self, values, raw_start, raw_stop):
        trie = WaveletTrie(values)
        oracle = NaiveIndexedSequence(values)
        start = min(raw_start, len(values))
        stop = min(max(raw_stop, start), len(values))
        assert list(trie.iter_range(start, stop)) == values[start:stop]
        assert dict(trie.distinct_in_range(start, stop)) == dict(oracle.distinct_in_range(start, stop))
        assert trie.range_majority(start, stop) == oracle.range_majority(start, stop)

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rank_select_inverse(self, values):
        trie = WaveletTrie(values)
        for value in set(values):
            for idx in range(trie.count(value)):
                position = trie.select(value, idx)
                assert values[position] == value
                assert trie.rank(value, position) == idx


class TestAppendOnlyProperties:
    @given(values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_append_matches_oracle(self, values):
        trie = AppendOnlyWaveletTrie(block_size=64)
        for value in values:
            trie.append(value)
        check_against_oracle(trie, values)

    @given(values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_equivalent_to_static_bulk_load(self, values):
        incremental = AppendOnlyWaveletTrie(values, block_size=64)
        static = WaveletTrie(values)
        assert incremental.to_list() == static.to_list()
        assert incremental.node_count() == static.node_count()
        assert incremental.average_height() == static.average_height()


# Edit scripts for the dynamic variant: (operation, value_index, position_seed)
edit_script = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["a", "b", "a/x", "a/y", "b/x/long", "c"]),
        st.integers(min_value=0, max_value=10 ** 6),
    ),
    max_size=80,
)


class TestDynamicProperties:
    @given(edit_script)
    @settings(max_examples=60, deadline=None)
    def test_edit_script_matches_oracle(self, script):
        trie = DynamicWaveletTrie(seed=5)
        oracle = NaiveIndexedSequence()
        for operation, value, position_seed in script:
            if operation <= 5 or len(oracle) == 0:
                position = position_seed % (len(oracle) + 1)
                trie.insert(value, position)
                oracle.insert(value, position)
            elif operation <= 8:
                position = position_seed % len(oracle)
                assert trie.delete(position) == oracle.delete(position)
            else:
                position = position_seed % (len(oracle) + 1)
                assert trie.rank(value, position) == oracle.rank(value, position)
                assert trie.rank_prefix(value[:1], position) == oracle.rank_prefix(value[:1], position)
        assert trie.to_list() == oracle.to_list()
        assert trie.distinct_count() == len(set(oracle.to_list()))

    @given(edit_script)
    @settings(max_examples=30, deadline=None)
    def test_structure_matches_static_rebuild(self, script):
        """After any edit script the trie equals a fresh static build of the content."""
        trie = DynamicWaveletTrie(seed=11)
        oracle = []
        for operation, value, position_seed in script:
            if operation <= 6 or not oracle:
                position = position_seed % (len(oracle) + 1)
                trie.insert(value, position)
                oracle.insert(position, value)
            else:
                position = position_seed % len(oracle)
                trie.delete(position)
                oracle.pop(position)
        if oracle:
            static = WaveletTrie(oracle)
            assert trie.node_count() == static.node_count()
            assert trie.to_list() == oracle
            static_nodes = sorted(
                (node.label.to01(), "".join(str(b) for b in node.bitvector))
                for node in static.nodes() if not node.is_leaf
            )
            dynamic_nodes = sorted(
                (node.label.to01(), "".join(str(b) for b in node.bitvector))
                for node in trie.nodes() if not node.is_leaf
            )
            assert static_nodes == dynamic_nodes
        else:
            assert len(trie) == 0
