"""Tests for the fully dynamic Wavelet Trie (Theorem 4.4), including the
Figure 3 node-splitting insertion and the dagger-case deletions."""

import random

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.exceptions import OutOfBoundsError


class TestInsert:
    def test_insert_at_positions(self):
        trie = DynamicWaveletTrie(["b", "b"])
        trie.insert("a", 0)
        trie.insert("c", 3)
        trie.insert("b", 2)
        assert trie.to_list() == ["a", "b", "b", "b", "c"]
        assert trie.rank("b", 4) == 3
        assert trie.select("c", 0) == 4

    def test_insert_position_validation(self):
        trie = DynamicWaveletTrie(["a"])
        with pytest.raises(OutOfBoundsError):
            trie.insert("b", 2)
        with pytest.raises(OutOfBoundsError):
            trie.insert("b", -1)

    def test_figure3_split_on_insert(self):
        """Inserting a previously unseen string splits one node (Figure 3).

        The new internal node's bitvector is initialised as a constant run of
        the split node's branch bit, then receives the new element's bit.
        """
        values = ["root/left/x"] * 3 + ["root/left/y"] * 2
        trie = DynamicWaveletTrie(values)
        nodes_before = trie.node_count()
        trie.insert("root/lexicon", 2)  # unseen: splits the "left/" branch
        assert trie.node_count() == nodes_before + 2  # one internal + one leaf
        assert trie.to_list() == [
            "root/left/x", "root/left/x", "root/lexicon",
            "root/left/x", "root/left/y", "root/left/y",
        ]
        assert trie.rank_prefix("root/le", 6) == 6
        assert trie.rank_prefix("root/left/", 6) == 5
        assert trie.count("root/lexicon") == 1

    def test_growth_matches_static_structure(self, column_values):
        values = column_values[:150]
        dynamic = DynamicWaveletTrie()
        rng = random.Random(3)
        reference = []
        for value in values:
            position = rng.randint(0, len(reference))
            dynamic.insert(value, position)
            reference.insert(position, value)
        assert dynamic.to_list() == reference
        static = WaveletTrie(reference)
        assert dynamic.node_count() == static.node_count()
        assert dynamic.distinct_count() == static.distinct_count()


class TestDelete:
    def test_delete_returns_value(self):
        trie = DynamicWaveletTrie(["a", "b", "c", "b"])
        assert trie.delete(1) == "b"
        assert trie.to_list() == ["a", "c", "b"]
        assert trie.count("b") == 1

    def test_delete_last_occurrence_shrinks_alphabet(self):
        """The dagger case of Table 1: the leaf is removed and nodes merge."""
        trie = DynamicWaveletTrie(["aa", "ab", "aa", "zz"])
        assert trie.distinct_count() == 3
        nodes_before = trie.node_count()
        position = trie.select("ab", 0)
        assert trie.delete(position) == "ab"
        assert trie.distinct_count() == 2
        assert trie.node_count() == nodes_before - 2
        assert trie.count("ab") == 0
        assert trie.rank("ab", len(trie)) == 0
        assert trie.to_list() == ["aa", "aa", "zz"]
        # Reinserting the deleted value works (the trie re-splits).
        trie.append("ab")
        assert trie.count("ab") == 1

    def test_delete_down_to_empty_and_rebuild(self):
        trie = DynamicWaveletTrie(["x", "y"])
        assert trie.delete(0) == "x"
        assert trie.delete(0) == "y"
        assert len(trie) == 0
        assert trie.root is None
        trie.append("z")
        assert trie.to_list() == ["z"]

    def test_delete_position_validation(self):
        trie = DynamicWaveletTrie(["a"])
        with pytest.raises(OutOfBoundsError):
            trie.delete(1)
        with pytest.raises(OutOfBoundsError):
            trie.delete(-1)


class TestRandomisedAgainstOracle:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_workload(self, seed, url_log):
        rng = random.Random(seed)
        population = url_log[:40] + ["extra/one", "extra/two", "x"]
        trie = DynamicWaveletTrie(seed=seed)
        naive = NaiveIndexedSequence()
        for step in range(350):
            action = rng.random()
            if action < 0.55 or len(naive) == 0:
                value = rng.choice(population)
                position = rng.randint(0, len(naive))
                trie.insert(value, position)
                naive.insert(value, position)
            elif action < 0.8:
                position = rng.randrange(len(naive))
                assert trie.delete(position) == naive.delete(position)
            elif action < 0.9:
                value = rng.choice(population)
                position = rng.randint(0, len(naive))
                assert trie.rank(value, position) == naive.rank(value, position)
            else:
                prefix = rng.choice(["http://", "extra/", population[0][:15], "zzz"])
                position = rng.randint(0, len(naive))
                assert trie.rank_prefix(prefix, position) == naive.rank_prefix(prefix, position)
            if step % 70 == 0:
                assert trie.to_list() == naive.to_list()
                assert trie.distinct_count() == len(set(naive.to_list()))
        assert trie.to_list() == naive.to_list()

    def test_select_consistency_after_churn(self, query_log):
        rng = random.Random(9)
        trie = DynamicWaveletTrie()
        naive = NaiveIndexedSequence()
        for value in query_log[:80]:
            position = rng.randint(0, len(naive))
            trie.insert(value, position)
            naive.insert(value, position)
        for _ in range(30):
            position = rng.randrange(len(naive))
            trie.delete(position)
            naive.delete(position)
        snapshot = naive.to_list()
        for value in set(snapshot):
            occurrences = [i for i, v in enumerate(snapshot) if v == value]
            for idx in (0, len(occurrences) - 1):
                assert trie.select(value, idx) == occurrences[idx]
