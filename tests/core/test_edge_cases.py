"""Edge-case behaviour shared by all three Wavelet Trie variants.

These tests pin down behaviour at the boundaries of the input domain: empty
strings, single-character and very long values, non-ASCII text, values that
differ only in their last bit, and the error paths of the binarisation codecs.
"""

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.exceptions import BinarizationError, OutOfBoundsError, ValueNotFoundError
from repro.tries.binarize import BytesCodec, Utf8Codec

ALL_VARIANTS = [WaveletTrie, AppendOnlyWaveletTrie, DynamicWaveletTrie]


@pytest.mark.parametrize("cls", ALL_VARIANTS)
class TestBoundaryValues:
    def test_empty_string_is_a_valid_value(self, cls):
        values = ["", "a", "", "ab", ""]
        trie = cls(values)
        assert trie.to_list() == values
        assert trie.count("") == 3
        assert trie.select("", 2) == 4
        assert trie.rank("", 3) == 2

    def test_single_character_alphabet(self, cls):
        values = list("abcabcabc")
        trie = cls(values)
        assert trie.to_list() == values
        assert trie.distinct_count() == 3
        for char in "abc":
            assert trie.count(char) == 3

    def test_very_long_strings(self, cls):
        long_a = "x" * 5000 + "a"
        long_b = "x" * 5000 + "b"
        values = [long_a, long_b, long_a]
        trie = cls(values)
        assert trie.access(2) == long_a
        assert trie.rank(long_a, 3) == 2
        # The shared 5000-character prefix collapses into a single trie label.
        assert trie.node_count() == 3
        assert trie.rank_prefix("x" * 5000, 3) == 3

    def test_values_differing_only_in_last_character(self, cls):
        values = ["prefix/a", "prefix/b", "prefix/a", "prefix/c"]
        trie = cls(values)
        assert trie.to_list() == values
        assert trie.rank_prefix("prefix/", 4) == 4
        assert trie.select_prefix("prefix/", 3) == 3

    def test_non_ascii_text(self, cls):
        values = ["città/è", "città/à", "日本語/テスト", "città/è", "🦀/🐍"]
        trie = cls(values)
        assert trie.to_list() == values
        assert trie.count("città/è") == 2
        assert trie.rank_prefix("città/", 5) == 3
        assert trie.rank_prefix("日本語", 5) == 1

    def test_whitespace_and_punctuation(self, cls):
        values = ["a b\tc", "a b", " leading", "trailing ", "a b\tc"]
        trie = cls(values)
        assert trie.to_list() == values
        assert trie.count("a b\tc") == 2
        assert trie.rank_prefix("a b", 5) == 3

    def test_queries_on_absent_values(self, cls, url_log):
        trie = cls(url_log[:50])
        assert trie.rank("http://never-seen.example/", 50) == 0
        assert trie.rank_prefix("ftp://", 50) == 0
        assert not trie.contains("http://never-seen.example/")
        with pytest.raises(ValueNotFoundError):
            trie.select("http://never-seen.example/", 0)
        with pytest.raises(ValueNotFoundError):
            trie.select_prefix("ftp://", 0)

    def test_select_beyond_occurrences(self, cls):
        trie = cls(["x", "y", "x"])
        with pytest.raises(OutOfBoundsError):
            trie.select("x", 2)
        with pytest.raises(OutOfBoundsError):
            trie.select_prefix("x", 2)

    def test_rank_position_bounds(self, cls):
        trie = cls(["x", "y"])
        assert trie.rank("x", 2) == 1
        with pytest.raises(OutOfBoundsError):
            trie.rank("x", 3)
        with pytest.raises(OutOfBoundsError):
            trie.rank("x", -1)

    def test_codec_rejects_wrong_types(self, cls):
        trie = cls(["a"])
        with pytest.raises(BinarizationError):
            trie.rank(123, 1)

    def test_utf8_codec_rejects_nul(self, cls):
        with pytest.raises(BinarizationError):
            cls(["contains\x00nul"])

    def test_bytes_codec_accepts_nul(self, cls):
        values = [b"\x00", b"\x00\x00", b"\x00", b"a\x00b"]
        trie = cls(values, codec=BytesCodec())
        assert trie.to_list() == values
        assert trie.count(b"\x00") == 2
        assert trie.rank_prefix(b"\x00", 4) == 3  # b"\x00" and b"\x00\x00" share the prefix

    def test_matches_oracle_on_pathological_prefix_chain(self, cls):
        # A chain of values where each is one character longer than the last:
        # the trie degenerates to maximum height relative to |Sset|.
        values = []
        for length in range(1, 15):
            values.extend(["a" * length + "!"] * 2)
        trie = cls(values)
        oracle = NaiveIndexedSequence(values)
        for pos in range(len(values)):
            assert trie.access(pos) == oracle.access(pos)
        for length in range(1, 15):
            prefix = "a" * length
            assert trie.rank_prefix(prefix, len(values)) == oracle.rank_prefix(
                prefix, len(values)
            )


class TestStaticSpecific:
    def test_mixed_length_huge_sequence_digest(self):
        # A mildly larger build to exercise RRR block boundaries (63-bit blocks).
        values = [f"k{i % 97:02d}" for i in range(4000)]
        trie = WaveletTrie(values)
        assert trie.count("k00") == len([v for v in values if v == "k00"])
        assert trie.access(3999) == values[3999]
        assert trie.rank("k42", 2000) == values[:2000].count("k42")

    def test_succinct_breakdown_consistent_across_kinds(self, url_log):
        values = url_log[:150]
        for kind in ("rrr", "plain", "rle"):
            trie = WaveletTrie(values, bitvector=kind)
            breakdown = trie.succinct_space_breakdown()
            assert breakdown["total"] == sum(
                bits for key, bits in breakdown.items() if key != "total"
            )
            assert breakdown["labels"] == trie.label_bits()


class TestDynamicSpecific:
    def test_interleaved_empty_string_updates(self):
        trie = DynamicWaveletTrie()
        trie.append("a")
        trie.insert("", 0)
        trie.insert("", 2)
        trie.append("b")
        assert trie.to_list() == ["", "a", "", "b"]
        assert trie.delete(0) == ""
        assert trie.to_list() == ["a", "", "b"]
        assert trie.count("") == 1

    def test_delete_every_other_element(self, url_log):
        values = url_log[:60]
        trie = DynamicWaveletTrie(values)
        expected = list(values)
        for position in range(len(values) - 2, -1, -2):
            assert trie.delete(position) == expected.pop(position)
        assert trie.to_list() == expected

    def test_alphabet_shrinks_and_regrows(self):
        trie = DynamicWaveletTrie(["aa", "ab", "aa"])
        trie.delete(1)  # removes the only "ab"
        assert trie.distinct_count() == 1
        trie.append("ac")
        trie.append("ab")
        assert trie.distinct_count() == 3
        assert trie.to_list() == ["aa", "aa", "ac", "ab"]

    def test_insert_then_delete_is_identity(self, query_log):
        values = query_log[:40]
        trie = DynamicWaveletTrie(values)
        before = trie.to_list()
        trie.insert("zzz-unique", 17)
        assert trie.delete(17) == "zzz-unique"
        assert trie.to_list() == before
        assert trie.distinct_count() == len(set(values))


class TestAppendOnlySpecific:
    def test_block_size_boundary(self):
        # Append exactly around the tail-freeze boundary of the node bitvectors.
        trie = AppendOnlyWaveletTrie(block_size=64)
        values = [f"v{i % 3}" for i in range(200)]
        for value in values:
            trie.append(value)
        assert trie.to_list() == values
        assert trie.count("v0") == len([v for v in values if v == "v0"])

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            AppendOnlyWaveletTrie(block_size=16)

    def test_many_new_distinct_values(self):
        # Every append introduces a brand-new string (worst case for Init).
        trie = AppendOnlyWaveletTrie()
        values = [f"user-{i:05d}" for i in range(300)]
        for value in values:
            trie.append(value)
        assert trie.distinct_count() == 300
        assert trie.access(299) == "user-00299"
        assert trie.rank_prefix("user-0000", 300) == 10
