"""Tests for the Section 5 range analytics, cross-checked against the naive oracle."""

from collections import Counter

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.append_only import AppendOnlyWaveletTrie
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.exceptions import OutOfBoundsError

VARIANTS = [
    ("static", lambda values: WaveletTrie(values)),
    ("append_only", lambda values: AppendOnlyWaveletTrie(values)),
    ("dynamic", lambda values: DynamicWaveletTrie(values)),
]


@pytest.fixture(scope="module", params=VARIANTS, ids=[name for name, _ in VARIANTS])
def trie_and_values(request, url_log):
    values = url_log[:220]
    _, factory = request.param
    return factory(values), NaiveIndexedSequence(values), values

RANGES = [(0, 220), (13, 140), (100, 101), (50, 50), (219, 220)]


class TestSequentialAccess:
    def test_iter_range(self, trie_and_values):
        trie, _, values = trie_and_values
        for start, stop in RANGES:
            assert list(trie.iter_range(start, stop)) == values[start:stop]

    def test_iter_range_bounds(self, trie_and_values):
        trie, _, _ = trie_and_values
        with pytest.raises(OutOfBoundsError):
            list(trie.iter_range(0, 500))
        with pytest.raises(OutOfBoundsError):
            list(trie.iter_range(10, 5))


class TestDistinct:
    def test_distinct_in_range(self, trie_and_values):
        trie, naive, values = trie_and_values
        for start, stop in RANGES:
            expected = Counter(values[start:stop])
            got = dict(trie.distinct_in_range(start, stop))
            assert got == dict(expected)

    def test_distinct_with_prefix(self, trie_and_values):
        trie, _, values = trie_and_values
        prefix = "http://www."
        for start, stop in [(0, 220), (40, 180)]:
            expected = Counter(v for v in values[start:stop] if v.startswith(prefix))
            got = dict(trie.distinct_in_range(start, stop, prefix=prefix))
            assert got == dict(expected)
        assert trie.distinct_in_range(0, 220, prefix="ftp://") == []

    def test_count_distinct(self, trie_and_values):
        trie, _, values = trie_and_values
        assert trie.count_distinct_in_range(0, 220) == len(set(values))


class TestMajorityAndFrequent:
    def test_range_majority(self, trie_and_values):
        trie, naive, values = trie_and_values
        for start, stop in RANGES:
            assert trie.range_majority(start, stop) == naive.range_majority(start, stop)

    def test_majority_exists_on_constant_range(self, trie_and_values):
        trie, _, values = trie_and_values
        # A window of size 1 always has a majority.
        assert trie.range_majority(7, 8) == (values[7], 1)

    def test_majority_with_prefix(self, trie_and_values):
        trie, naive, values = trie_and_values
        prefix = values[0].split("/")[2]
        prefix = f"http://{prefix}/"
        assert trie.range_majority(0, 220, prefix=prefix) == naive.range_majority(
            0, 220, prefix=prefix
        )

    def test_frequent_in_range(self, trie_and_values):
        trie, naive, values = trie_and_values
        for threshold in (1, 3, 10, 50):
            expected = dict(naive.frequent_in_range(0, 220, threshold))
            got = dict(trie.frequent_in_range(0, 220, threshold))
            assert got == expected
        with pytest.raises(ValueError):
            trie.frequent_in_range(0, 10, 0)

    def test_top_k(self, trie_and_values):
        trie, naive, values = trie_and_values
        for k in (1, 3, 10):
            got = trie.top_k_in_range(0, 220, k)
            counts = Counter(values)
            assert len(got) == min(k, len(counts))
            # Counts must be correct and non-increasing.
            for value, count in got:
                assert counts[value] == count
            assert all(a[1] >= b[1] for a, b in zip(got, got[1:]))
            # The returned multiset of counts matches the true top-k counts.
            expected_counts = sorted(counts.values(), reverse=True)[:k]
            assert sorted((c for _, c in got), reverse=True) == expected_counts

    def test_top_k_with_prefix(self, trie_and_values):
        trie, _, values = trie_and_values
        prefix = "http://www."
        got = trie.top_k_in_range(0, 220, 5, prefix=prefix)
        counts = Counter(v for v in values if v.startswith(prefix))
        for value, count in got:
            assert counts[value] == count

    def test_top_k_empty_cases(self, trie_and_values):
        trie, _, _ = trie_and_values
        assert trie.top_k_in_range(5, 5, 3) == []
        assert trie.top_k_in_range(0, 10, 0) == []


class TestRangeCounts:
    def test_range_count(self, trie_and_values):
        trie, naive, values = trie_and_values
        probes = [values[0], values[50], "http://never.example/"]
        for value in probes:
            for start, stop in RANGES:
                assert trie.range_count(value, start, stop) == naive.range_count(
                    value, start, stop
                )

    def test_range_count_prefix(self, trie_and_values):
        trie, naive, values = trie_and_values
        for prefix in ["http://", "http://www.s", "nothing"]:
            for start, stop in RANGES:
                assert trie.range_count_prefix(
                    prefix, start, stop
                ) == naive.range_count_prefix(prefix, start, stop)


class TestEmptySequence:
    def test_empty_range_queries(self):
        trie = WaveletTrie([])
        assert list(trie.iter_range(0, 0)) == []
        assert trie.distinct_in_range(0, 0) == []
        assert trie.range_majority(0, 0) is None
        assert trie.top_k_in_range(0, 0, 5) == []
