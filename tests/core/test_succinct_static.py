"""Tests for the fully succinct static Wavelet Trie (the Theorem 3.7 layout)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import NaiveIndexedSequence
from repro.core.static import WaveletTrie
from repro.core.succinct_static import SuccinctWaveletTrie
from repro.exceptions import (
    ImmutableStructureError,
    OutOfBoundsError,
    ValueNotFoundError,
)


class TestAgainstPointerVariant:
    @pytest.fixture(scope="class")
    def pair(self, url_log):
        values = url_log[:200]
        return SuccinctWaveletTrie(values), WaveletTrie(values), values

    def test_access(self, pair):
        succinct, pointer, values = pair
        for pos in range(0, len(values), 9):
            assert succinct.access(pos) == pointer.access(pos) == values[pos]

    def test_rank_select(self, pair):
        succinct, pointer, values = pair
        for value in set(values):
            assert succinct.count(value) == pointer.count(value)
            assert succinct.rank(value, 137) == pointer.rank(value, 137)
            assert succinct.select(value, 0) == pointer.select(value, 0)

    def test_prefix_operations(self, pair):
        succinct, pointer, values = pair
        for prefix in ["http://", "http://www.s", values[0][:24], "zzz"]:
            assert succinct.rank_prefix(prefix, 180) == pointer.rank_prefix(prefix, 180)
            total = pointer.rank_prefix(prefix, len(values))
            if total:
                assert succinct.select_prefix(prefix, total - 1) == pointer.select_prefix(
                    prefix, total - 1
                )

    def test_counts_and_structure(self, pair):
        succinct, pointer, values = pair
        assert succinct.node_count() == pointer.node_count()
        assert succinct.distinct_count() == pointer.distinct_count()
        assert len(succinct) == len(values)

    def test_space_is_below_pointer_accounting(self, pair):
        succinct, pointer, _ = pair
        assert succinct.size_in_bits() < pointer.size_in_bits()
        breakdown = succinct.space_breakdown()
        assert breakdown["topology_dfuds"] > 0
        assert breakdown["bitvectors"] > 0


class TestEdgeCases:
    def test_empty(self):
        trie = SuccinctWaveletTrie([])
        assert len(trie) == 0
        assert trie.rank("x", 0) == 0
        assert trie.size_in_bits() == 0
        with pytest.raises(ValueNotFoundError):
            trie.select("x", 0)

    def test_single_value(self):
        trie = SuccinctWaveletTrie(["only", "only"])
        assert trie.access(1) == "only"
        assert trie.rank("only", 2) == 2
        assert trie.select("only", 1) == 1
        assert trie.rank("other", 2) == 0

    def test_errors(self):
        trie = SuccinctWaveletTrie(["a", "b"])
        with pytest.raises(OutOfBoundsError):
            trie.access(2)
        with pytest.raises(OutOfBoundsError):
            trie.select("a", 1)
        with pytest.raises(ValueNotFoundError):
            trie.select("missing", 0)
        with pytest.raises(ImmutableStructureError):
            trie.append("c")
        with pytest.raises(ImmutableStructureError):
            trie.insert("c", 0)
        with pytest.raises(ImmutableStructureError):
            trie.delete(0)

    @given(st.lists(st.sampled_from(["a", "ab", "b", "ba/x", "c/d/e"]), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, values):
        succinct = SuccinctWaveletTrie(values)
        oracle = NaiveIndexedSequence(values)
        assert len(succinct) == len(values)
        for pos in range(len(values)):
            assert succinct.access(pos) == oracle.access(pos)
        for value in set(values):
            assert succinct.count(value) == oracle.count(value)
            assert succinct.rank_prefix(value[:1], len(values)) == oracle.rank_prefix(
                value[:1], len(values)
            )
