"""The LSM composition: ``TieredWaveletTrie`` differential and lifecycle tests.

The tiered trie is the concatenation ``frozen tiers ++ sealing ++ mutable
tail``; every query must be exact *at any point of the compaction lifecycle*,
so the differential checks here run mid-seal (with a freeze in flight),
post-seal and post-merge, against both :class:`NaiveIndexedSequence` and an
equivalently-fed :class:`DynamicWaveletTrie`.  The LSM retention rule -- only
the tail window mutates -- is pinned down with its canonical error message.
"""

import random

import pytest

from repro.baselines import NaiveIndexedSequence
from repro.core.dynamic import DynamicWaveletTrie
from repro.core.static import WaveletTrie
from repro.core.tiers import TieredWaveletTrie
from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ValueNotFoundError,
)

PREFIXES = ["http://", "http://dom", "", "zzz"]


def _assert_matches_oracle(tiered, values, rng):
    naive = NaiveIndexedSequence(values)
    size = len(values)
    assert len(tiered) == size
    assert tiered.to_list() == values
    positions = [rng.randrange(size) for _ in range(12)]
    assert tiered.access_many(positions) == [values[p] for p in positions]
    for pos in positions[:4]:
        assert tiered.access(pos) == values[pos]
    rank_positions = [rng.randint(0, size) for _ in range(8)]
    probes = [values[rng.randrange(size)] for _ in range(4)]
    for value in probes:
        assert tiered.rank_many(value, rank_positions) == [
            naive.rank(value, p) for p in rank_positions
        ]
        total = naive.rank(value, size)
        indexes = [rng.randrange(total) for _ in range(4)]
        assert tiered.select_many(value, indexes) == [
            naive.select(value, i) for i in indexes
        ]
        assert tiered.select(value, total - 1) == naive.select(value, total - 1)
        assert tiered.count(value) == total
    for prefix in PREFIXES:
        assert tiered.rank_prefix_many(prefix, rank_positions) == [
            naive.rank_prefix(prefix, p) for p in rank_positions
        ]
        matches = naive.rank_prefix(prefix, size)
        if matches:
            indexes = [rng.randrange(matches) for _ in range(4)]
            assert tiered.select_prefix_many(prefix, indexes) == [
                naive.select_prefix(prefix, i) for i in indexes
            ]
    start = rng.randrange(size)
    stop = rng.randint(start, size)
    assert list(tiered.iter_range(start, stop)) == values[start:stop]


class TestTieredDifferential:
    def test_queries_exact_across_the_lifecycle(self, url_log):
        """Small capacity so the log spans several tiers; checks run with a
        freeze in flight, after sealing completes, and after a full merge."""
        rng = random.Random(42)
        values = list(url_log)
        tiered = TieredWaveletTrie(values, active_capacity=64, compact_budget=4)
        assert tiered.tier_count > 1
        _assert_matches_oracle(tiered, values, rng)

        # Force a mid-seal state: fill exactly to capacity, advance a little.
        extra = [f"http://domain-extra.example/p/{i}" for i in range(70)]
        for value in extra:
            tiered.append(value)
        values.extend(extra)
        _assert_matches_oracle(tiered, values, rng)

        tiered.compact(merge=False)
        assert all(row["state"] != "sealing" for row in tiered.tier_info())
        _assert_matches_oracle(tiered, values, rng)

        tiered.compact(merge=True)
        assert tiered.tier_count == 2  # one merged frozen tier + empty tail
        _assert_matches_oracle(tiered, values, rng)

    def test_matches_dynamic_trie_exactly(self, column_values):
        """The tiered composition and a plain dynamic trie fed the same
        operations answer every query identically."""
        rng = random.Random(7)
        tiered = TieredWaveletTrie(active_capacity=48, compact_budget=2)
        dynamic = DynamicWaveletTrie()
        for value in column_values:
            tiered.append(value)
            dynamic.append(value)
        size = len(column_values)
        positions = [rng.randrange(size) for _ in range(20)]
        assert tiered.access_many(positions) == dynamic.access_many(positions)
        rank_positions = [rng.randint(0, size) for _ in range(10)]
        for value in set(column_values[:5]):
            assert tiered.rank_many(value, rank_positions) == dynamic.rank_many(
                value, rank_positions
            )
        assert tiered.distinct_count() == dynamic.distinct_count()
        assert sorted(tiered.distinct_values()) == sorted(dynamic.distinct_values())

    def test_mid_compaction_queries_use_the_sealed_tier(self, url_log):
        """With a freeze in flight the sealed dynamic trie keeps serving:
        results stay exact while pending_freeze_bits drains step by step."""
        values = url_log[:64]
        tiered = TieredWaveletTrie(values, active_capacity=64, compact_budget=1)
        tiered.append(values[0])  # triggers the seal
        sealing = [r for r in tiered.tier_info() if r["state"] == "sealing"]
        assert len(sealing) == 1 and sealing[0]["pending_freeze_bits"] > 0
        expected = values + [values[0]]
        rng = random.Random(3)
        while any(r["state"] == "sealing" for r in tiered.tier_info()):
            _assert_matches_oracle(tiered, expected, rng)
            tiered.compact_step(8)
        _assert_matches_oracle(tiered, expected, rng)
        assert any(r["state"] == "frozen" for r in tiered.tier_info())


class TestTieredLifecycle:
    def test_seal_happens_at_capacity(self):
        tiered = TieredWaveletTrie(active_capacity=8, compact_budget=1)
        for i in range(8):
            tiered.append(f"k{i % 3}")
            assert tiered.tier_count == 1 or i == 7
        # The 8th append hit capacity: sealed, fresh tail opened.
        states = [row["state"] for row in tiered.tier_info()]
        assert "sealing" in states or "frozen" in states
        assert tiered.mutable_start == 8

    def test_writes_fund_compaction(self):
        """Each write advances the in-flight freeze by compact_budget units,
        so a steady write stream finishes the seal without explicit calls."""
        tiered = TieredWaveletTrie(active_capacity=16, compact_budget=64)
        for i in range(16):
            tiered.append(f"value/{i % 5}")
        assert any(r["state"] != "mutable" for r in tiered.tier_info())
        for i in range(12):
            tiered.append(f"value/{i % 5}")
        assert any(r["state"] == "frozen" for r in tiered.tier_info())
        assert tiered.to_list() == [f"value/{i % 5}" for i in range(16)] + [
            f"value/{i % 5}" for i in range(12)
        ]

    def test_compact_step_returns_zero_when_idle(self):
        tiered = TieredWaveletTrie(["a", "b"], active_capacity=100)
        assert tiered.compact_step() == 0
        assert tiered.freeze_step() is True

    def test_extend_seals_on_capacity_boundaries(self, url_log):
        values = url_log[:300]
        tiered = TieredWaveletTrie(active_capacity=64, compact_budget=2)
        tiered.extend(values)
        assert tiered.to_list() == values
        assert tiered.tier_count > 1
        # The tail tier never holds more than a bounded overshoot.
        tail = tiered.tier_info()[-1]
        assert tail["elements"] <= 2 * tiered.active_capacity

    def test_compact_merge_collapses_to_one_frozen_tier(self, url_log):
        values = url_log[:200]
        tiered = TieredWaveletTrie(values, active_capacity=32)
        tiered.compact(merge=True)
        rows = tiered.tier_info()
        assert [row["state"] for row in rows] == ["frozen", "mutable"]
        assert rows[0]["elements"] == len(values) and rows[1]["elements"] == 0
        assert tiered.mutable_start == len(values)
        assert tiered.to_list() == values

    def test_frozen_snapshot_is_non_mutating(self, url_log):
        values = url_log[:100]
        tiered = TieredWaveletTrie(values, active_capacity=32)
        before = [row["state"] for row in tiered.tier_info()]
        snapshot = tiered.frozen_snapshot()
        assert [row["state"] for row in tiered.tier_info()] == before
        assert snapshot.to_list() == values
        assert snapshot.mutable_start == len(values)
        # The snapshot keeps absorbing writes independently.
        snapshot.append("http://new.example/x")
        assert len(snapshot) == len(values) + 1
        assert len(tiered) == len(values)

    def test_to_static_flattens_the_whole_sequence(self, url_log):
        values = url_log[:120]
        tiered = TieredWaveletTrie(values, active_capacity=40)
        static = tiered.to_static()
        assert isinstance(static, WaveletTrie)
        assert static.to_list() == values
        assert tiered.to_list() == values  # non-mutating

    def test_constructor_validates_parameters(self):
        with pytest.raises(ValueError, match="active_capacity"):
            TieredWaveletTrie(active_capacity=0)
        with pytest.raises(ValueError, match="compact_budget"):
            TieredWaveletTrie(compact_budget=0)


class TestTieredMutableWindow:
    def _two_tier(self):
        tiered = TieredWaveletTrie(active_capacity=8, compact_budget=256)
        tiered.extend([f"old/{i}" for i in range(8)])
        tiered.compact_step(10_000)  # drain the seal: 8 frozen elements
        tiered.extend(["new/a", "new/b", "new/c"])
        assert tiered.mutable_start == 8
        return tiered

    def test_tail_window_mutations_work(self):
        tiered = self._two_tier()
        tiered.insert("new/x", 9)
        assert tiered.access(9) == "new/x"
        tiered.insert_many(["new/y", "new/z"], tiered.mutable_start)
        assert tiered.delete(8) == "new/y"
        assert tiered.delete_many([8, 9]) == ["new/z", "new/a"]
        assert tiered.to_list()[:8] == [f"old/{i}" for i in range(8)]

    def test_frozen_window_mutations_are_rejected(self):
        tiered = self._two_tier()
        message = r"positions below 8 live in frozen tiers"
        with pytest.raises(InvalidOperationError, match=message):
            tiered.insert("nope", 3)
        with pytest.raises(InvalidOperationError, match=message):
            tiered.delete(0)
        with pytest.raises(InvalidOperationError, match=message):
            tiered.insert_many(["nope"], 7)
        with pytest.raises(InvalidOperationError, match=message):
            tiered.delete_many([9, 2])
        # All-or-nothing: the failed batch deleted nothing.
        assert len(tiered) == 11

    def test_delete_many_validates_before_window_check(self):
        tiered = self._two_tier()
        with pytest.raises(OutOfBoundsError):
            tiered.delete_many([9, 99])
        assert len(tiered) == 11

    def test_compact_reopens_the_whole_tail(self):
        tiered = self._two_tier()
        tiered.compact()
        assert tiered.mutable_start == len(tiered)
        tiered.append("fresh")
        assert tiered.delete(len(tiered) - 1) == "fresh"

    def test_insert_out_of_range_is_bounds_not_window(self):
        tiered = self._two_tier()
        with pytest.raises(OutOfBoundsError, match="insert position"):
            tiered.insert("x", 99)


class TestTieredErrors:
    def test_canonical_error_messages(self, url_log):
        """Error types and messages are byte-identical to the family's
        canonical ones: bounds messages match the static trie, value/prefix
        lookups match the naive oracle (which reports the raw value, where
        the pointer tries report its binarised key)."""
        values = url_log[:50]
        tiered = TieredWaveletTrie(values, active_capacity=16)
        static = WaveletTrie(values)
        dynamic = DynamicWaveletTrie(values)
        naive = NaiveIndexedSequence(values)
        cases = [
            (lambda t: t.access(len(values)), OutOfBoundsError, static),
            (lambda t: t.rank(values[0], len(values) + 1), OutOfBoundsError, static),
            (lambda t: t.select(values[0], -1), OutOfBoundsError, static),
            (lambda t: t.select_prefix("zzz", 0), ValueNotFoundError, dynamic),
            (lambda t: t.select_prefix("http://", 10**6), OutOfBoundsError, naive),
            (lambda t: t.iter_range(5, 2), OutOfBoundsError, static),
        ]
        for probe, exc_type, oracle_obj in cases:
            with pytest.raises(exc_type) as ours:
                list(probe(tiered)) if exc_type is OutOfBoundsError else probe(tiered)
            with pytest.raises(exc_type) as oracle:
                result = probe(oracle_obj)
                if exc_type is OutOfBoundsError:
                    list(result)
            assert str(ours.value) == str(oracle.value)
        # Absent-value select reports the raw value (scalar and batch alike).
        expected = "value 'absent' does not occur in the sequence"
        with pytest.raises(ValueNotFoundError, match=expected):
            tiered.select("absent", 0)
        with pytest.raises(ValueNotFoundError, match=expected):
            tiered.select_many("absent", [0])

    def test_select_count_spans_tiers(self, url_log):
        """select's occurrence count and out-of-range message aggregate
        across every tier, not just the one being probed."""
        values = url_log[:60]
        tiered = TieredWaveletTrie(values, active_capacity=16)
        probe = values[0]
        total = sum(1 for value in values if value == probe)
        with pytest.raises(
            OutOfBoundsError, match=f"only {total} occurrences"
        ):
            tiered.select(probe, total)

    def test_empty_batches_never_raise(self):
        tiered = TieredWaveletTrie(["a", "b"], active_capacity=4)
        assert tiered.select_many("zzz", []) == []
        assert tiered.select_prefix_many("zzz", []) == []
        assert tiered.rank_many("zzz", []) == []
        assert tiered.rank_prefix_many("zzz", []) == []
        assert tiered.access_many([]) == []
        assert tiered.delete_many([]) == []


class TestTieredAnalytics:
    def test_range_analytics_merge_across_tiers(self, column_values):
        values = column_values[:250]
        tiered = TieredWaveletTrie(values, active_capacity=64)
        static = WaveletTrie(values)
        naive = NaiveIndexedSequence(values)
        for start, stop in [(0, len(values)), (10, 200), (63, 130), (64, 64)]:
            assert tiered.distinct_in_range(start, stop) == static.distinct_in_range(
                start, stop
            )
            assert tiered.count_distinct_in_range(start, stop) == len(
                static.distinct_in_range(start, stop)
            )
            # top_k counts match the static traversal; the tiered tie-break
            # is the documented deterministic one (binarised lex), whereas
            # the static best-first heap breaks ties by discovery order.
            expected_top = sorted(
                static.distinct_in_range(start, stop),
                key=lambda item: (-item[1], tiered._binarised_key(item[0])),
            )[:5]
            assert tiered.top_k_in_range(start, stop, 5) == expected_top
            assert [count for _, count in static.top_k_in_range(start, stop, 5)] == [
                count for _, count in expected_top
            ]
            for value in set(values[:3]):
                assert tiered.range_count(value, start, stop) == naive.range_count(
                    value, start, stop
                )
        assert tiered.top_k_in_range(0, len(values), 0) == []

    def test_introspection_spans_tiers(self, url_log):
        values = url_log[:150]
        tiered = TieredWaveletTrie(values, active_capacity=48)
        static = WaveletTrie(values)
        assert tiered.distinct_count() == static.distinct_count()
        assert tiered.distinct_values() == sorted(set(values))
        assert tiered.node_count() == sum(1 for _ in tiered.nodes())
        assert tiered.size_in_bits() > 0
        assert tiered.average_height() > 0

    def test_space_report_accepts_tiered(self, url_log):
        from repro.analysis.space import wavelet_trie_space_report

        tiered = TieredWaveletTrie(url_log[:100], active_capacity=32)
        report = wavelet_trie_space_report(tiered)
        assert report.components["node_count"] == tiered.node_count()
        assert report.total_bits > 0


class TestEmptyTierSkip:
    """Fully-empty tiers must be skipped *before* the per-tier batch walk.

    Every live tier costs a near-size-independent python walk in the batch
    paths (the fan-out constant the ROADMAP calls out), so a tier holding no
    elements -- an empty frozen tier handed over by a loader, or the drained
    mutable tail -- must never be walked, and results must be identical to
    the same sequence with no empties in the tier list."""

    def _spliced(self, values):
        """A tiered trie whose frozen list has empties at front/middle/back."""
        tiered = TieredWaveletTrie(values, active_capacity=16, compact_budget=4)
        tiered.compact(merge=False)
        assert len(tiered._frozen) > 1  # several real frozen tiers to mix with
        empty = WaveletTrie([], codec=tiered.codec)
        spliced = [empty]
        for tier in tiered._frozen:
            spliced.extend([tier, WaveletTrie([], codec=tiered.codec)])
        tiered._frozen = spliced
        return tiered

    def test_results_identical_with_mixed_empty_tiers(self, url_log):
        values = url_log[:120]
        clean = TieredWaveletTrie(values, active_capacity=16, compact_budget=4)
        spliced = self._spliced(values)
        rng = random.Random(11)
        _assert_matches_oracle(spliced, values, rng)
        positions = [rng.randrange(len(values)) for _ in range(16)]
        rank_positions = [rng.randint(0, len(values)) for _ in range(16)]
        probe = values[0]
        assert spliced.access_many(positions) == clean.access_many(positions)
        assert spliced.rank_many(probe, rank_positions) == clean.rank_many(
            probe, rank_positions
        )
        total = clean.count(probe)
        indexes = list(range(total))
        assert spliced.select_many(probe, indexes) == clean.select_many(
            probe, indexes
        )
        for prefix in PREFIXES:
            assert spliced.rank_prefix_many(
                prefix, rank_positions
            ) == clean.rank_prefix_many(prefix, rank_positions)
            matches = clean.count_prefix(prefix)
            if matches:
                assert spliced.select_prefix_many(
                    prefix, list(range(matches))
                ) == clean.select_prefix_many(prefix, list(range(matches)))

    def test_tier_views_exclude_empty_tiers(self, url_log):
        spliced = self._spliced(url_log[:80])
        tiers, offsets = spliced._tier_views()
        assert all(len(tier) for tier in tiers)
        # Strictly increasing offsets: bisect owner searches stay unambiguous.
        assert all(a < b for a, b in zip(offsets, offsets[1:]))
        assert offsets[-1] == len(spliced)
        # The raw tier list still reports the empties (introspection), the
        # query view does not (the walk).
        assert len(spliced._tiers()) > len(tiers)

    def test_rank_batch_stops_at_the_last_touched_tier(self, url_log):
        """Positions confined to the first tier must not fan out to later
        tiers: offset-ordered tiers contribute nothing past max(positions)."""
        values = url_log[:96]
        tiered = TieredWaveletTrie(values, active_capacity=16, compact_budget=4)
        tiered.compact(merge=False)
        tiers, offsets = tiered._tier_views()
        assert len(tiers) >= 3
        walked = []
        for index, tier in enumerate(tiers):
            def spy(value, positions, _index=index, _tier=tier):
                walked.append(_index)
                return type(_tier).rank_many(_tier, value, positions)

            tier.rank_many = spy
        first_len = len(tiers[0])
        tiered.rank_many(values[0], [1, first_len // 2, first_len])
        assert walked == [0], f"later tiers were walked: {walked}"
        walked.clear()
        tiered.rank_many(values[0], [0, 0])  # rank at 0 touches no tier
        assert walked == []
