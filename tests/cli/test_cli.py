"""End-to-end tests for the ``wavelet-trie`` command-line interface.

Every test drives :func:`repro.cli.main` directly (no subprocess), captures
stdout with capsys and checks both the human-readable and the ``--json``
output modes.
"""

import json

import pytest

from repro.cli import main
from repro.storage import load, save
from repro.db import ColumnStore


@pytest.fixture()
def log_file(tmp_path, url_log):
    path = tmp_path / "access.log"
    path.write_text("\n".join(url_log[:200]) + "\n", encoding="utf-8")
    return path


@pytest.fixture()
def built_index(tmp_path, log_file):
    path = tmp_path / "access.wt"
    assert main(["build", str(log_file), "-o", str(path)]) == 0
    return path


def run_json(capsys, argv):
    """Run a CLI command with --json and return the parsed payload."""
    assert main(argv + ["--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestBuild:
    def test_build_text_output(self, tmp_path, log_file, capsys):
        out_path = tmp_path / "index.wt"
        code = main(["build", str(log_file), "-o", str(out_path)])
        captured = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "indexed 200 values" in captured
        assert "wrote" in captured

    def test_build_json_output(self, tmp_path, log_file, capsys):
        out_path = tmp_path / "index.wt"
        payload = run_json(capsys, ["build", str(log_file), "-o", str(out_path)])
        assert payload["elements"] == 200
        assert payload["stored_bytes"] == out_path.stat().st_size
        assert payload["compression_ratio"] < 1.0

    @pytest.mark.parametrize("variant", ["static", "append-only", "dynamic"])
    def test_build_variants(self, tmp_path, log_file, url_log, variant):
        out_path = tmp_path / f"{variant}.wt"
        assert main(["build", str(log_file), "-o", str(out_path), "--variant", variant]) == 0
        index = load(out_path)
        assert index.to_list() == url_log[:200]

    def test_build_static_bitvector_choice(self, tmp_path, log_file):
        out_path = tmp_path / "static-rle.wt"
        code = main(
            ["build", str(log_file), "-o", str(out_path), "--variant", "static", "--bitvector", "rle"]
        )
        assert code == 0
        assert load(out_path).bitvector_kind == "rle"

    def test_build_missing_input(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "nope.log"), "-o", str(tmp_path / "x.wt")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInfo:
    def test_info_text(self, built_index, capsys):
        assert main(["info", str(built_index)]) == 0
        out = capsys.readouterr().out
        assert "elements         : 200" in out
        assert "AppendOnlyWaveletTrie" in out

    def test_info_json_with_bounds(self, built_index, capsys):
        payload = run_json(capsys, ["info", str(built_index), "--bounds"])
        assert payload["elements"] == 200
        assert payload["bounds"]["n"] == 200
        assert payload["measured_bits"] > payload["bounds"]["nH0_bits"]

    def test_info_rejects_non_trie_files(self, tmp_path, capsys):
        store = ColumnStore(["a"])
        store.append_row({"a": "x"})
        path = tmp_path / "table.wt"
        save(store, path)
        assert main(["info", str(path)]) == 1
        assert "not a Wavelet Trie" in capsys.readouterr().err


class TestQueries:
    def test_access(self, built_index, url_log, capsys):
        payload = run_json(capsys, ["access", str(built_index), "0", "5", "199"])
        values = {entry["position"]: entry["value"] for entry in payload["results"]}
        assert values == {0: url_log[0], 5: url_log[5], 199: url_log[199]}

    def test_rank_exact_and_prefix(self, built_index, url_log, capsys):
        target = url_log[0]
        payload = run_json(capsys, ["rank", str(built_index), target])
        assert payload["count"] == url_log[:200].count(target)
        prefix = "http://"
        payload = run_json(capsys, ["rank", str(built_index), prefix, "--prefix"])
        assert payload["count"] == 200

    def test_rank_with_pos(self, built_index, url_log, capsys):
        target = url_log[0]
        payload = run_json(capsys, ["rank", str(built_index), target, "--pos", "50"])
        assert payload["count"] == url_log[:50].count(target)

    def test_select(self, built_index, url_log, capsys):
        target = url_log[3]
        payload = run_json(capsys, ["select", str(built_index), target, "0"])
        assert url_log[payload["position"]] == target
        assert payload["position"] == url_log.index(target)

    def test_top(self, built_index, url_log, capsys):
        payload = run_json(capsys, ["top", str(built_index), "-k", "3"])
        counts = [entry["count"] for entry in payload["results"]]
        assert counts == sorted(counts, reverse=True)
        window = url_log[:200]
        top_count = max(window.count(value) for value in set(window))
        top_entry = payload["results"][0]
        assert top_entry["count"] == top_count
        assert window.count(top_entry["value"]) == top_count

    def test_distinct_with_range(self, built_index, url_log, capsys):
        payload = run_json(capsys, ["distinct", str(built_index), "--start", "10", "--stop", "60"])
        assert payload["distinct"] == len(set(url_log[10:60]))
        total = sum(entry["count"] for entry in payload["results"])
        assert total == 50

    def test_positions_exact_and_prefix(self, built_index, url_log, capsys):
        window = url_log[:200]
        target = window[3]
        payload = run_json(capsys, ["positions", str(built_index), target])
        expected = [i for i, value in enumerate(window) if value == target]
        assert payload["positions"] == expected
        assert payload["total"] == len(expected)
        payload = run_json(
            capsys,
            ["positions", str(built_index), "http://", "--prefix", "--limit", "7"],
        )
        assert payload["total"] == 200
        assert payload["positions"] == list(range(7))

    def test_positions_with_zero_matches(self, built_index, capsys):
        """An absent value or prefix is an empty answer, not an error."""
        payload = run_json(capsys, ["positions", str(built_index), "gopher://zzz"])
        assert payload == {
            "value": "gopher://zzz", "prefix": False, "total": 0, "positions": [],
        }
        payload = run_json(
            capsys, ["positions", str(built_index), "gopher://", "--prefix"]
        )
        assert payload["total"] == 0
        assert payload["positions"] == []

    def test_distinct_with_prefix(self, built_index, url_log, capsys):
        window = url_log[:200]
        host = sorted({value.split("/")[2] for value in window})[0]
        prefix = f"http://{host}"
        payload = run_json(capsys, ["distinct", str(built_index), "--prefix", prefix])
        expected = {value for value in window if value.startswith(prefix)}
        assert {entry["value"] for entry in payload["results"]} == expected


class TestAppend:
    def test_append_without_save(self, built_index, capsys):
        payload = run_json(capsys, ["append", str(built_index), "http://new.example/a"])
        assert payload["elements"] == 201
        # Not saved: reloading shows the original length.
        assert len(load(built_index)) == 200

    def test_append_with_save(self, built_index, capsys):
        code = main(["append", str(built_index), "http://new.example/a", "http://new.example/b", "--save"])
        assert code == 0
        index = load(built_index)
        assert len(index) == 202
        assert index.access(201) == "http://new.example/b"

    def test_append_to_static_index_fails(self, tmp_path, log_file, capsys):
        path = tmp_path / "static.wt"
        main(["build", str(log_file), "-o", str(path), "--variant", "static"])
        assert main(["append", str(path), "x"]) == 1
        assert "static" in capsys.readouterr().err


class TestDelete:
    @pytest.fixture()
    def dynamic_index(self, tmp_path, log_file):
        path = tmp_path / "dynamic.wt"
        assert main(["build", str(log_file), "-o", str(path), "--variant", "dynamic"]) == 0
        return path

    def test_delete_with_save(self, dynamic_index, url_log, capsys):
        window = url_log[:200]
        payload = run_json(
            capsys, ["delete", str(dynamic_index), "5", "0", "17", "--save"]
        )
        assert [entry["value"] for entry in payload["deleted"]] == [
            window[5], window[0], window[17]
        ]
        assert payload["elements"] == 197
        survivors = [v for i, v in enumerate(window) if i not in {0, 5, 17}]
        assert load(dynamic_index).to_list() == survivors

    def test_delete_without_save(self, dynamic_index, capsys):
        payload = run_json(capsys, ["delete", str(dynamic_index), "0"])
        assert payload["elements"] == 199
        assert len(load(dynamic_index)) == 200

    def test_delete_on_non_dynamic_index_fails(self, built_index, capsys):
        assert main(["delete", str(built_index), "0"]) == 1
        assert "dynamic" in capsys.readouterr().err

    def test_delete_out_of_range_fails(self, dynamic_index, capsys):
        assert main(["delete", str(dynamic_index), "0", "500"]) == 1
        assert "out of range" in capsys.readouterr().err

    def test_delete_duplicate_positions_fails_cleanly(self, dynamic_index, capsys):
        """Duplicate positions exit through the clean `error:` path, not a
        traceback (DuplicatePositionError is a ReproError)."""
        assert main(["delete", str(dynamic_index), "3", "3"]) == 1
        assert "more than once" in capsys.readouterr().err
        assert len(load(dynamic_index)) == 200


class TestSaveOpen:
    def test_save_image_and_open(self, built_index, tmp_path, url_log, capsys):
        image_path = tmp_path / "access.rwt2"
        payload = run_json(
            capsys, ["save", str(built_index), "-o", str(image_path), "--image"]
        )
        assert payload["container"] == "RWT2"
        assert payload["stored_bytes"] == image_path.stat().st_size
        assert image_path.read_bytes()[:4] == b"RWT2"

        payload = run_json(capsys, ["open", str(image_path)])
        assert payload["container"] == "RWT2"
        assert payload["elements"] == 200
        assert payload["open_ms"] >= 0
        # Query subcommands work against the frozen image transparently.
        payload = run_json(capsys, ["access", str(image_path), "0", "199"])
        assert [r["value"] for r in payload["results"]] == [url_log[0], url_log[199]]

    def test_save_rwt1_and_open(self, built_index, tmp_path, capsys):
        out = tmp_path / "copy.wt"
        payload = run_json(capsys, ["save", str(built_index), "-o", str(out)])
        assert payload["container"] == "RWT1"
        payload = run_json(capsys, ["open", str(out)])
        assert payload["container"] == "RWT1"
        assert payload["elements"] == 200

    def test_open_text_output_reports_latency(self, built_index, capsys):
        assert main(["open", str(built_index)]) == 0
        out = capsys.readouterr().out
        assert "RWT1" in out and "ms" in out

    def test_save_missing_input_fails(self, tmp_path, capsys):
        missing = tmp_path / "nope.wt"
        assert main(["save", str(missing), "-o", str(tmp_path / "out.wt")]) == 1
        assert "error" in capsys.readouterr().err


@pytest.fixture()
def tiered_index(tmp_path, log_file):
    path = tmp_path / "tiered.wt"
    assert main(["build", str(log_file), "-o", str(path), "--variant", "tiered"]) == 0
    return path


class TestTiers:
    def test_build_tiered_variant(self, tiered_index, url_log):
        from repro.core.tiers import TieredWaveletTrie

        index = load(tiered_index)
        assert type(index) is TieredWaveletTrie
        assert index.to_list() == url_log[:200]

    def test_tiers_text(self, tiered_index, capsys):
        assert main(["tiers", str(tiered_index)]) == 0
        out = capsys.readouterr().out
        assert "200 elements in" in out
        assert "mutable" in out
        assert "tier 0:" in out

    def test_tiers_json(self, tiered_index, capsys):
        payload = run_json(capsys, ["tiers", str(tiered_index)])
        assert payload["elements"] == 200
        assert payload["tier_count"] == len(payload["tiers"])
        assert payload["tiers"][-1]["state"] == "mutable"
        assert sum(row["elements"] for row in payload["tiers"]) == 200
        assert payload["total_bits"] == sum(row["bits"] for row in payload["tiers"])

    def test_tiers_rejects_non_tiered_index(self, built_index, capsys):
        assert main(["tiers", str(built_index)]) == 1
        err = capsys.readouterr().err
        assert "not a tiered index" in err
        assert "--variant tiered" in err

    def test_append_and_delete_on_tiered(self, tiered_index, capsys):
        assert main(["append", str(tiered_index), "http://new.example/x", "--save"]) == 0
        capsys.readouterr()
        payload = run_json(capsys, ["tiers", str(tiered_index)])
        assert payload["elements"] == 201
        assert main(["delete", str(tiered_index), "200", "--save"]) == 0

    def test_delete_in_frozen_window_fails_cleanly(self, tiered_index, capsys):
        assert main(["compact", str(tiered_index), "--save"]) == 0
        capsys.readouterr()
        assert main(["delete", str(tiered_index), "0"]) == 1
        assert "frozen tiers" in capsys.readouterr().err


class TestCompact:
    def test_compact_merges_and_saves(self, tiered_index, capsys):
        payload = run_json(capsys, ["compact", str(tiered_index), "--save"])
        assert payload["saved"] is True
        assert payload["tiers_after"] == 2  # one frozen tier + empty tail
        assert "merged" in payload["action"]
        reloaded = run_json(capsys, ["tiers", str(tiered_index)])
        assert [row["state"] for row in reloaded["tiers"]] == ["frozen", "mutable"]

    def test_compact_no_merge_keeps_tiers(self, tiered_index, capsys):
        before = run_json(capsys, ["tiers", str(tiered_index)])["tier_count"]
        payload = run_json(capsys, ["compact", str(tiered_index), "--no-merge"])
        assert payload["saved"] is False
        assert "merged" not in payload["action"]
        assert payload["tiers_before"] == before

    def test_compact_steps_mode(self, tiered_index, capsys):
        payload = run_json(capsys, ["compact", str(tiered_index), "--steps", "5"])
        assert "advanced compaction" in payload["action"]
        assert payload["saved"] is False

    def test_compact_text_output_mentions_persistence(self, tiered_index, capsys):
        assert main(["compact", str(tiered_index)]) == 0
        out = capsys.readouterr().out
        assert "pass --save to persist" in out

    def test_compact_rejects_non_tiered_index(self, built_index, capsys):
        assert main(["compact", str(built_index)]) == 1
        assert "not a tiered index" in capsys.readouterr().err


class TestSearchCommands:
    @pytest.fixture()
    def docs_file(self, tmp_path):
        path = tmp_path / "docs.txt"
        path.write_text(
            "the quick brown fox\njumps over\nthe lazy dog\n\nfoxtrot the fox\n",
            encoding="utf-8",
        )
        return path

    @pytest.fixture()
    def search_index(self, tmp_path, docs_file):
        path = tmp_path / "docs.fm"
        assert (
            main(
                ["search", "build", str(docs_file), "-o", str(path), "--sa-sample", "8"]
            )
            == 0
        )
        return path

    def test_search_build_reports_sizes(self, tmp_path, docs_file, capsys):
        out_path = tmp_path / "docs.fm"
        payload = run_json(
            capsys, ["search", "build", str(docs_file), "-o", str(out_path)]
        )
        assert payload["documents"] == 5
        assert payload["sa_sample"] == 32
        assert payload["stored_bytes"] == out_path.stat().st_size

    def test_search_count(self, search_index, capsys):
        payload = run_json(
            capsys, ["search", "count", str(search_index), "the", "fox", "zebra"]
        )
        counts = {r["pattern"]: r["count"] for r in payload["results"]}
        assert counts == {"the": 3, "fox": 3, "zebra": 0}
        assert main(["search", "count", str(search_index), "fox"]) == 0
        assert capsys.readouterr().out.splitlines() == ["3\tfox"]

    def test_search_locate(self, search_index, capsys):
        payload = run_json(capsys, ["search", "locate", str(search_index), "fox"])
        assert payload["total"] == 3
        assert payload["matches"] == [
            {"document": 0, "offset": 16},
            {"document": 4, "offset": 0},
            {"document": 4, "offset": 12},
        ]

    def test_search_locate_limit(self, search_index, capsys):
        payload = run_json(
            capsys, ["search", "locate", str(search_index), "o", "--limit", "2"]
        )
        assert payload["total"] == 7
        assert len(payload["matches"]) == 2
        assert main(["search", "locate", str(search_index), "o", "--limit", "2"]) == 0
        assert "showing the first 2" in capsys.readouterr().out

    def test_search_empty_pattern_fails_cleanly(self, search_index, capsys):
        assert main(["search", "count", str(search_index), ""]) == 1
        assert "non-empty" in capsys.readouterr().err

    def test_search_commands_reject_trie_indexes(self, built_index, capsys):
        assert main(["search", "count", str(built_index), "x"]) == 1
        assert "search build" in capsys.readouterr().err

    def test_trie_commands_reject_search_indexes(self, search_index, capsys):
        assert main(["info", str(search_index)]) == 1
        assert "not a Wavelet Trie index" in capsys.readouterr().err

    def test_search_roundtrips_through_resave(self, search_index, tmp_path, capsys):
        copy = tmp_path / "copy.fm"
        assert main(["save", str(search_index), "-o", str(copy)]) == 0
        capsys.readouterr()
        payload = run_json(capsys, ["search", "count", str(copy), "lazy"])
        assert payload["results"] == [{"pattern": "lazy", "count": 1}]


class TestSaveImageFailurePath:
    def test_rle_trie_image_save_fails_with_hint(self, tmp_path, log_file, capsys):
        """Regression: `save --image` on an RLE-backed static trie must exit
        nonzero with an actionable message, not a raw traceback."""
        rle_path = tmp_path / "rle.wt"
        assert (
            main(
                [
                    "build",
                    str(log_file),
                    "-o",
                    str(rle_path),
                    "--variant",
                    "static",
                    "--bitvector",
                    "rle",
                ]
            )
            == 0
        )
        capsys.readouterr()
        image_path = tmp_path / "rle.rwt2"
        assert main(["save", str(rle_path), "-o", str(image_path), "--image"]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "hint:" in captured.err
        assert "drop --image" in captured.err
        assert "--bitvector rrr" in captured.err
        assert not image_path.exists()

    def test_rle_trie_rwt1_save_still_works(self, tmp_path, log_file, capsys):
        rle_path = tmp_path / "rle.wt"
        assert (
            main(
                [
                    "build",
                    str(log_file),
                    "-o",
                    str(rle_path),
                    "--variant",
                    "static",
                    "--bitvector",
                    "rle",
                ]
            )
            == 0
        )
        out = tmp_path / "copy.wt"
        assert main(["save", str(rle_path), "-o", str(out), "--json"]) == 0
