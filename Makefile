PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench-kernel bench-dynamic bench

# Tier-1 verification: the full test suite (includes the quick-mode
# benchmark harnesses and the docs-check gate).
test:
	$(PYTHON) -m pytest -x -q

# Documentation gate: fails when a public class (or module) in src/repro
# lacks a docstring, or a *_many batch method does not state its amortised
# complexity.  Also run as part of `make test`.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docstrings.py

# Full-size perf harnesses; each writes its BENCH_*.json at the repo root.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

bench-dynamic:
	$(PYTHON) benchmarks/bench_dynamic.py

bench: bench-kernel bench-dynamic
