PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench-kernel bench-kernel-quick bench-dynamic \
	bench-storage bench-storage-quick bench-tiered bench-tiered-quick \
	bench-serving bench-serving-quick bench-search bench-search-quick bench

# Tier-1 verification: the full test suite (includes the quick-mode
# benchmark harnesses and the docs-check gate).
test:
	$(PYTHON) -m pytest -x -q

# Documentation gate: fails when a public class (or module) in src/repro
# lacks a docstring, a *_many batch method does not state its amortised
# complexity, a public kernel function exists in one backend but not the
# other, or the ARCHITECTURE.md backend-contract table drifts from
# kernel.KERNEL_CONTRACT.  Also run as part of `make test`.
docs-check:
	$(PYTHON) -m pytest -q tests/test_docstrings.py

# Full-size perf harnesses; each writes its BENCH_*.json at the repo root.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

# Small-size smoke run of the kernel harness (no JSON written); its seed and
# python-vs-numpy backend cross-checks also run inside tier-1 via
# tests/integration/test_bench_kernel_quick.py.
bench-kernel-quick:
	$(PYTHON) benchmarks/bench_kernel.py --quick

bench-dynamic:
	$(PYTHON) benchmarks/bench_dynamic.py

bench-storage:
	$(PYTHON) benchmarks/bench_storage.py

# Small-size smoke run of the storage harness (no JSON written); its
# tiled-vs-direct and cross-backend differential checks also run inside
# tier-1 via tests/integration/test_bench_storage_quick.py.
bench-storage-quick:
	$(PYTHON) benchmarks/bench_storage.py --quick

bench-tiered:
	$(PYTHON) benchmarks/bench_tiered.py

# Small-size smoke run of the tiered LSM harness (no JSON written); its
# identical-op-stream differential checks against the pure dynamic trie also
# run inside tier-1 via tests/integration/test_bench_tiered_quick.py.
bench-tiered-quick:
	$(PYTHON) benchmarks/bench_tiered.py --quick

bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Small-size smoke run of the serving harness (no JSON written); its
# coalescing-on vs coalescing-off byte-identity gate and the
# multi-process cluster replay (sharded worker processes byte-compared
# against the single-process server) also run inside tier-1 via
# tests/integration/test_bench_serving_quick.py.
bench-serving-quick:
	$(PYTHON) benchmarks/bench_serving.py --quick

bench-search:
	$(PYTHON) benchmarks/bench_search.py

# Small-size smoke run of the search harness (no JSON written); its
# differential gates (FM-index counts/locations vs the str.find oracle,
# batched vs scalar backward-search intervals) also run inside tier-1 via
# tests/integration/test_bench_search_quick.py.
bench-search-quick:
	$(PYTHON) benchmarks/bench_search.py --quick

bench: bench-kernel bench-dynamic bench-storage bench-tiered bench-serving \
	bench-search
