"""The classic static Wavelet Tree over an integer alphabet.

This is the data structure the Wavelet Trie generalises (paper Section 2 and
Figure 1): the alphabet ``{0, ..., sigma - 1}`` is recursively halved, each
node stores one bit per element of its subsequence telling whether the symbol
falls in the left or right half, and rank/select/access reduce to ``O(log
sigma)`` bitvector operations.

Beyond the three primitives the tree supports the classic two-dimensional
operations used by the alphabet-mapping baseline: ``range_count`` (how many
positions in ``[l, r)`` hold a symbol in ``[lo, hi)``) and ``quantile``
(the k-th smallest symbol in a position range).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bits import kernel
from repro.bitvector.base import validate_select_indexes
from repro.bitvector.plain import PlainBitVector
from repro.bitvector.rle import RLEBitVector
from repro.bitvector.rrr import RRRBitVector
from repro.exceptions import OutOfBoundsError, ValueNotFoundError

__all__ = ["WaveletTree"]

_BITVECTOR_FACTORIES = {
    "rrr": RRRBitVector,
    "plain": PlainBitVector,
    "rle": RLEBitVector,
}


class _Node:
    __slots__ = ("low", "high", "bitvector", "left", "right")

    def __init__(self, low: int, high: int, bitvector=None) -> None:
        self.low = low
        self.high = high
        self.bitvector = bitvector
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.high - self.low <= 1


class WaveletTree:
    """Static Wavelet Tree over symbols in ``[0, alphabet_size)``."""

    def __init__(
        self,
        sequence: Iterable[int],
        alphabet_size: Optional[int] = None,
        bitvector: str = "rrr",
    ) -> None:
        if bitvector not in _BITVECTOR_FACTORIES:
            raise ValueError(
                f"unknown bitvector kind {bitvector!r}; "
                f"expected one of {sorted(_BITVECTOR_FACTORIES)}"
            )
        self._factory = _BITVECTOR_FACTORIES[bitvector]
        data = list(sequence)
        for symbol in data:
            if symbol < 0:
                raise ValueError("symbols must be non-negative integers")
        if alphabet_size is None:
            alphabet_size = (max(data) + 1) if data else 1
        elif data and max(data) >= alphabet_size:
            raise ValueError("a symbol exceeds the declared alphabet size")
        self._sigma = max(1, alphabet_size)
        self._size = len(data)
        self._root = self._build(data, 0, self._sigma) if data else None

    # ------------------------------------------------------------------
    def _build(self, data: List[int], low: int, high: int) -> _Node:
        """Iterative broadside construction through the kernel backend.

        Each node is materialised with one ``partition_by_pivot`` call: the
        branch bits arrive pre-packed as kernel words (handed to the
        bitvector factory's ``from_words`` -- no per-bit round trip) together
        with the stable left/right sub-partitions, all vectorised under the
        numpy backend.  The work stack replaces per-element Python
        recursion, so arbitrarily skewed alphabets never hit the recursion
        limit.
        """
        root = _Node(low, high)
        stack = [(root, kernel.prepare_symbols(data))]
        while stack:
            node, symbols = stack.pop()
            if node.high - node.low <= 1:
                continue
            mid = (node.low + node.high) // 2
            words, length, left_data, right_data = kernel.partition_by_pivot(
                symbols, mid
            )
            node.bitvector = self._factory.from_words(words, length)
            node.left = _Node(node.low, mid)
            node.right = _Node(mid, node.high)
            if len(left_data):
                stack.append((node.left, left_data))
            if len(right_data):
                stack.append((node.right, right_data))
        return root

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def alphabet_size(self) -> int:
        """The (fixed) alphabet size sigma."""
        return self._sigma

    def _check_pos(self, pos: int) -> None:
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")

    def _check_rank_pos(self, pos: int) -> None:
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self._sigma:
            raise OutOfBoundsError(f"symbol {symbol} outside alphabet [0, {self._sigma})")

    # ------------------------------------------------------------------
    def access(self, pos: int) -> int:
        """The symbol at position ``pos``."""
        self._check_pos(pos)
        node = self._root
        while not node.is_leaf:
            bit = node.bitvector.access(pos)
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
        return node.low

    def rank(self, symbol: int, pos: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, pos)``."""
        self._check_symbol(symbol)
        self._check_rank_pos(pos)
        node = self._root
        if node is None:
            return 0
        while not node.is_leaf and pos > 0:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            if node.bitvector is None:
                return 0
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
            if node is None:
                return 0
        return pos if (node.is_leaf and node.low == symbol) else 0

    def select(self, symbol: int, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``symbol``."""
        self._check_symbol(symbol)
        total = self.count(symbol)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({symbol}, {idx}) out of range: only {total} occurrences"
            )
        # Walk down recording the path, then unwind with selects.
        node = self._root
        path: List[Tuple[_Node, int]] = []
        while not node.is_leaf:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            path.append((node, bit))
            node = node.right if bit else node.left
        for ancestor, bit in reversed(path):
            idx = ancestor.bitvector.select(bit, idx)
        return idx

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol``."""
        return self.rank(symbol, self._size)

    # ------------------------------------------------------------------
    # Batch query paths
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]) -> List[int]:
        """The symbols at each of ``positions``.

        Queries descend the tree in groups: each traversed node is visited
        once per batch, with one ``access_many``/``rank_many`` call on its
        bitvector, so node and attribute overhead is amortised over the whole
        batch instead of paid per query.
        """
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        for pos in positions:
            self._check_pos(pos)
        out: List[Optional[int]] = [None] * len(positions)
        if not positions:
            return []
        stack: List[Tuple[_Node, List[Tuple[int, int]]]] = [
            (self._root, [(i, pos) for i, pos in enumerate(positions)])
        ]
        while stack:
            node, queries = stack.pop()
            if node.is_leaf:
                low = node.low
                for index, _ in queries:
                    out[index] = low
                continue
            vector = node.bitvector
            pos_list = [pos for _, pos in queries]
            bits = vector.access_many(pos_list)
            # One rank_many(0) pass serves both children: rank(1, pos) is
            # just pos - rank(0, pos).
            zero_ranks = vector.rank_many(0, pos_list)
            lefts = [
                (i, r)
                for (i, _), bit, r in zip(queries, bits, zero_ranks)
                if not bit
            ]
            rights = [
                (i, pos - r)
                for (i, pos), bit, r in zip(queries, bits, zero_ranks)
                if bit
            ]
            if lefts:
                stack.append((node.left, lefts))
            if rights:
                stack.append((node.right, rights))
        return out

    def rank_many(self, symbol: int, positions: Sequence[int]) -> List[int]:
        """``rank(symbol, pos)`` for each of ``positions``.

        One root-to-leaf walk serves the whole batch: the per-node mid/bit
        computation happens once and the positions are re-mapped together
        through the node bitvector's ``rank_many`` -- amortised O(log sigma)
        batch passes total instead of q O(log sigma) walks.
        """
        self._check_symbol(symbol)
        for pos in positions:
            self._check_rank_pos(pos)
        current = list(positions)
        if not current:
            return []
        node = self._root
        if node is None:
            return [0] * len(current)
        while not node.is_leaf:
            if node.bitvector is None:
                return [0] * len(current)
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            current = node.bitvector.rank_many(bit, current)
            node = node.right if bit else node.left
            if node is None:
                return [0] * len(current)
        if node.low != symbol:
            return [0] * len(current)
        return current

    def select_many(self, symbol: int, indexes: Sequence[int]) -> List[int]:
        """``select(symbol, idx)`` for each of ``indexes``.

        One root-to-leaf walk serves the whole batch: the path is recorded
        once and unwound with each node bitvector's batched ``select_many``
        (shared directory walks, one decode per touched block), amortising
        to O(path + q log q + D) directory work for q queries instead of q
        independent O(log sigma log n) walks.
        """
        self._check_symbol(symbol)
        indexes = validate_select_indexes(indexes, self.count(symbol), symbol)
        if not indexes:
            return []
        node = self._root
        path: List[Tuple[_Node, int]] = []
        while not node.is_leaf:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            path.append((node, bit))
            node = node.right if bit else node.left
        current = indexes
        for ancestor, bit in reversed(path):
            current = ancestor.bitvector.select_many(bit, current)
        return current

    # ------------------------------------------------------------------
    # Two-dimensional operations
    # ------------------------------------------------------------------
    def range_count(self, start: int, stop: int, low: int, high: int) -> int:
        """Number of positions in ``[start, stop)`` holding a symbol in ``[low, high)``.

        This is the ``RangeCount`` operation the paper mentions when
        discussing the alphabet-mapping approach to prefix queries.
        """
        if not (0 <= start <= stop <= self._size):
            raise OutOfBoundsError(f"range [{start}, {stop}) invalid")
        if low >= high or start >= stop or self._root is None:
            return 0
        return self._range_count(self._root, start, stop, low, high)

    def _range_count(self, node: _Node, start: int, stop: int, low: int, high: int) -> int:
        if stop <= start or node is None:
            return 0
        if low <= node.low and node.high <= high:
            return stop - start
        if node.is_leaf or node.bitvector is None:
            # Leaf outside [low, high), or an empty internal shell.
            if node.is_leaf and low <= node.low < high:
                return stop - start
            return 0
        mid = (node.low + node.high) // 2
        zeros_lo, zeros_hi = node.bitvector.rank_many(0, (start, stop))
        total = 0
        if low < mid:
            total += self._range_count(node.left, zeros_lo, zeros_hi, low, high)
        if high > mid:
            total += self._range_count(
                node.right, start - zeros_lo, stop - zeros_hi, low, high
            )
        return total

    def quantile(self, start: int, stop: int, k: int) -> int:
        """The ``k``-th smallest (0-based) symbol among positions ``[start, stop)``."""
        if not (0 <= start <= stop <= self._size):
            raise OutOfBoundsError(f"range [{start}, {stop}) invalid")
        if not 0 <= k < stop - start:
            raise OutOfBoundsError(f"quantile index {k} out of range")
        node = self._root
        while not node.is_leaf:
            zeros_lo, zeros_hi = node.bitvector.rank_many(0, (start, stop))
            zeros = zeros_hi - zeros_lo
            if k < zeros:
                start, stop = zeros_lo, zeros_hi
                node = node.left
            else:
                k -= zeros
                start, stop = start - zeros_lo, stop - zeros_hi
                node = node.right
        return node.low

    # ------------------------------------------------------------------
    def to_list(self) -> List[int]:
        """Materialise the stored sequence."""
        return [self.access(pos) for pos in range(self._size)]

    def size_in_bits(self) -> int:
        """Total bitvector space plus per-node bookkeeping."""
        total = 0
        nodes = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            nodes += 1
            if node.bitvector is not None:
                total += node.bitvector.size_in_bits()
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total + nodes * 4 * 64

    def height(self) -> int:
        """Height of the tree (``ceil(log2 sigma)`` for a balanced split)."""
        def depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)
