"""Dynamic Wavelet Tree with a *fixed, known-in-advance* alphabet.

This is the state of the art the paper improves on (Section 4, citing
Lee & Park, Gonzalez & Navarro, Makinen & Navarro): the tree shape is fixed by
the alphabet given at construction time, node bitvectors are dynamic with
indels, and insertion/deletion of symbols is supported -- but a symbol outside
the declared alphabet cannot ever be inserted, and no prefix operations are
available.  The benchmarks use it to quantify what the dynamic-alphabet
Wavelet Trie gives up (nothing) and gains (the dynamic alphabet, prefix
queries).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.bitvector.base import (
    validate_delete_positions,
    validate_select_indexes,
)
from repro.bitvector.dynamic import DynamicBitVector
from repro.exceptions import OutOfBoundsError, ValueNotFoundError

__all__ = ["FixedAlphabetDynamicWaveletTree"]


class _Node:
    __slots__ = ("low", "high", "bitvector", "left", "right")

    def __init__(self, low: int, high: int, seed: int) -> None:
        self.low = low
        self.high = high
        self.bitvector: Optional[DynamicBitVector] = (
            DynamicBitVector(seed=seed) if high - low > 1 else None
        )
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.high - self.low <= 1


class FixedAlphabetDynamicWaveletTree:
    """Dynamic rank/select sequence over a fixed alphabet (the pre-Wavelet-Trie design)."""

    def __init__(
        self,
        alphabet: Iterable[Hashable],
        values: Iterable[Hashable] = (),
        seed: int = 0xA1F,
    ) -> None:
        symbols = list(dict.fromkeys(alphabet))
        if not symbols:
            raise ValueError("the alphabet must contain at least one symbol")
        self._symbols: List[Hashable] = symbols
        self._index: Dict[Hashable, int] = {
            symbol: index for index, symbol in enumerate(symbols)
        }
        self._size = 0
        self._seed = seed
        self._root = self._build_shape(0, len(symbols))
        self.extend(values)

    def _build_shape(self, low: int, high: int) -> _Node:
        self._seed = (self._seed * 6364136223846793005 + 1) % (1 << 63)
        node = _Node(low, high, self._seed)
        if high - low > 1:
            mid = (low + high) // 2
            node.left = self._build_shape(low, mid)
            node.right = self._build_shape(mid, high)
        return node

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def alphabet(self) -> List[Hashable]:
        """The fixed alphabet, in declaration order."""
        return list(self._symbols)

    def _symbol_index(self, value: Hashable) -> int:
        try:
            return self._index[value]
        except KeyError:
            raise ValueNotFoundError(
                f"value {value!r} is not in the fixed alphabet; "
                "the alphabet of a dynamic Wavelet Tree cannot grow "
                "(this is the limitation the Wavelet Trie removes)"
            ) from None

    def _check_pos(self, pos: int, inclusive: bool = False) -> None:
        upper = self._size if inclusive else self._size - 1
        if not 0 <= pos <= upper:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def access(self, pos: int) -> Hashable:
        """The value at position ``pos``."""
        self._check_pos(pos)
        node = self._root
        while not node.is_leaf:
            bit = node.bitvector.access(pos)
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
        return self._symbols[node.low]

    def rank(self, value: Hashable, pos: int) -> int:
        """Occurrences of ``value`` in positions ``[0, pos)``."""
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")
        symbol = self._symbol_index(value)
        node = self._root
        while not node.is_leaf and pos > 0:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
        return pos if node.is_leaf else 0

    def select(self, value: Hashable, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``value``."""
        symbol = self._symbol_index(value)
        total = self.rank(value, self._size)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({value!r}, {idx}) out of range: only {total} occurrences"
            )
        node = self._root
        path: List[Tuple[_Node, int]] = []
        while not node.is_leaf:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            path.append((node, bit))
            node = node.right if bit else node.left
        for ancestor, bit in reversed(path):
            idx = ancestor.bitvector.select(bit, idx)
        return idx

    def select_many(self, value: Hashable, indexes: Sequence[int]) -> List[int]:
        """``select(value, idx)`` for each of ``indexes``.

        One root-to-leaf walk is recorded and unwound with the dynamic
        bitvectors' batched ``select_many`` (one sorted in-order runs pass
        per node), amortising to O(h (r + q log q)) for q queries instead of
        q independent O(h log r) treap walks.
        """
        symbol = self._symbol_index(value)
        indexes = validate_select_indexes(
            indexes, self.rank(value, self._size), repr(value)
        )
        if not indexes:
            return []
        node = self._root
        path: List[Tuple[_Node, int]] = []
        while not node.is_leaf:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            path.append((node, bit))
            node = node.right if bit else node.left
        current = indexes
        for ancestor, bit in reversed(path):
            current = ancestor.bitvector.select_many(bit, current)
        return current

    def count(self, value: Hashable) -> int:
        """Total occurrences of ``value``."""
        return self.rank(value, self._size)

    def to_list(self) -> List[Hashable]:
        """Materialise the stored sequence."""
        return [self.access(pos) for pos in range(self._size)]

    # ------------------------------------------------------------------
    # Updates (positions anywhere, symbols only from the fixed alphabet)
    # ------------------------------------------------------------------
    def insert(self, value: Hashable, pos: int) -> None:
        """Insert ``value`` immediately before position ``pos``."""
        self._check_pos(pos, inclusive=True)
        symbol = self._symbol_index(value)
        node = self._root
        while not node.is_leaf:
            mid = (node.low + node.high) // 2
            bit = 1 if symbol >= mid else 0
            node.bitvector.insert(pos, bit)
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
        self._size += 1

    def append(self, value: Hashable) -> None:
        """Append ``value`` at the end."""
        self.insert(value, self._size)

    def extend(self, values: Iterable[Hashable]) -> None:
        """Append every value (bulk ``Append``, batch-amortised).

        The tree shape is fixed, so the root-to-leaf path of each symbol is
        cached and the per-node bits are buffered in plain lists, then flushed
        once through the dynamic bitvectors' bulk ``extend`` (kernel run
        extraction + O(r) treap build) -- no per-element treap walks.
        """
        symbols = [self._symbol_index(value) for value in values]
        path_cache: Dict[int, List[Tuple[_Node, int]]] = {}
        buffers: Dict[int, Tuple[_Node, List[int]]] = {}
        for symbol in symbols:
            path = path_cache.get(symbol)
            if path is None:
                path = []
                node = self._root
                while not node.is_leaf:
                    mid = (node.low + node.high) // 2
                    bit = 1 if symbol >= mid else 0
                    path.append((node, bit))
                    node = node.right if bit else node.left
                path_cache[symbol] = path
            for node, bit in path:
                entry = buffers.get(id(node))
                if entry is None:
                    buffers[id(node)] = (node, [bit])
                else:
                    entry[1].append(bit)
        for node, bits in buffers.values():
            node.bitvector.extend(bits)
        self._size += len(symbols)

    def insert_many(self, values: Sequence[Hashable], pos: int) -> None:
        """Insert every element of ``values``, the first landing at ``pos``.

        Bulk ``Insert``: the inserted block stays contiguous at every level,
        so each touched node pays one :meth:`DynamicBitVector.insert_many`
        (one treap split + O(r_new) bulk build + merge) and one ``rank`` to
        locate the child position -- amortised O(nodes_touched (log r + k_node))
        for k elements, instead of k per-element root-to-leaf insertions
        costing O(k log sigma log r).
        """
        self._check_pos(pos, inclusive=True)
        symbols = [self._symbol_index(value) for value in values]
        if not symbols:
            return
        stack: List[Tuple[_Node, List[int], int]] = [(self._root, symbols, pos)]
        while stack:
            node, group, position = stack.pop()
            if node.is_leaf:
                continue
            mid = (node.low + node.high) // 2
            bits = [1 if symbol >= mid else 0 for symbol in group]
            left_position = node.bitvector.rank(0, position)
            right_position = position - left_position
            node.bitvector.insert_many(position, bits)
            left_group = [symbol for symbol in group if symbol < mid]
            right_group = [symbol for symbol in group if symbol >= mid]
            if left_group:
                stack.append((node.left, left_group, left_position))
            if right_group:
                stack.append((node.right, right_group, right_position))
        self._size += len(symbols)

    def delete(self, pos: int) -> Hashable:
        """Delete and return the value at position ``pos``."""
        self._check_pos(pos)
        node = self._root
        path: List[Tuple[_Node, int, int]] = []
        while not node.is_leaf:
            bit = node.bitvector.access(pos)
            path.append((node, bit, pos))
            pos = node.bitvector.rank(bit, pos)
            node = node.right if bit else node.left
        for ancestor, _, ancestor_pos in path:
            ancestor.bitvector.delete(ancestor_pos)
        self._size -= 1
        return self._symbols[node.low]

    def delete_many(self, positions: Sequence[int]) -> List[Hashable]:
        """Delete the values at ``positions``; they come back in input order.

        Bulk delete: the (pre-delete, distinct) positions are partitioned
        down the fixed tree once; every touched node pays one
        :meth:`DynamicBitVector.rank_many` (child-position mapping) and one
        :meth:`DynamicBitVector.delete_many` (treap split + O(r_span) run
        surgery + merge) -- amortised O(nodes_touched (log r + r_span +
        k_node log k_node)) for k deletions, instead of k root-to-leaf
        walks costing O(k log sigma log r).
        """
        positions = validate_delete_positions(positions, self._size)
        if not positions:
            return []
        order = sorted(range(len(positions)), key=positions.__getitem__)
        results: List[Hashable] = [None] * len(positions)
        stack: List[Tuple[_Node, List[Tuple[int, int]]]] = [
            (self._root, [(index, positions[index]) for index in order])
        ]
        while stack:
            node, items = stack.pop()
            if node.is_leaf:
                symbol = self._symbols[node.low]
                for slot, _ in items:
                    results[slot] = symbol
                continue
            vector = node.bitvector
            group_positions = [pos for _, pos in items]
            zero_ranks = vector.rank_many(0, group_positions)
            bits = vector.delete_many(group_positions)
            groups: List[List[Tuple[int, int]]] = [[], []]
            for (slot, pos), zero_rank, bit in zip(items, zero_ranks, bits):
                groups[bit].append((slot, pos - zero_rank if bit else zero_rank))
            if groups[0]:
                stack.append((node.left, groups[0]))
            if groups[1]:
                stack.append((node.right, groups[1]))
        self._size -= len(positions)
        return results

    # ------------------------------------------------------------------
    def size_in_bits(self) -> int:
        """Bitvector space plus per-node bookkeeping."""
        total = 0
        nodes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if node.bitvector is not None:
                total += node.bitvector.size_in_bits()
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return total + nodes * 4 * 64
