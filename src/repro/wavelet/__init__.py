"""Classic Wavelet Trees and the Section 6 balanced dynamic variant.

* :class:`~repro.wavelet.wavelet_tree.WaveletTree` -- the classic static
  Wavelet Tree over an integer alphabet (paper Section 2, Figure 1), with
  2-dimensional range counting;
* :class:`~repro.wavelet.huffman.HuffmanWaveletTree` -- the Huffman-shaped
  variant (mentioned after Lemma 3.2);
* :class:`~repro.wavelet.dynamic_wavelet_tree.FixedAlphabetDynamicWaveletTree`
  -- the related-work dynamic Wavelet Tree whose alphabet must be known in
  advance (the restriction the Wavelet Trie removes);
* :class:`~repro.wavelet.balanced.BalancedDynamicWaveletTree` -- the
  probabilistically balanced dynamic Wavelet Tree of Section 6
  (Theorem 6.2), built on multiplicative hashing plus a Wavelet Trie.
"""

from repro.wavelet.balanced import BalancedDynamicWaveletTree
from repro.wavelet.dynamic_wavelet_tree import FixedAlphabetDynamicWaveletTree
from repro.wavelet.huffman import HuffmanWaveletTree, huffman_codes
from repro.wavelet.wavelet_tree import WaveletTree

__all__ = [
    "BalancedDynamicWaveletTree",
    "FixedAlphabetDynamicWaveletTree",
    "HuffmanWaveletTree",
    "WaveletTree",
    "huffman_codes",
]
