"""Probabilistically balanced dynamic Wavelet Trees (paper Section 6).

For numeric (or otherwise bounded-universe) data the Wavelet Trie on the raw
binary representation could be as deep as ``log u`` even when only a few
distinct values occur.  Section 6 fixes this with the multiplicative hashing
of Dietzfelbinger et al.: values are permuted by ``h_a(x) = a x mod 2^ceil(log u)``
for a random odd ``a`` and stored in a dynamic Wavelet Trie; with probability
``1 - |Sigma|^-alpha`` the first ``(alpha + 2) log |Sigma|`` bits of the hash
already distinguish every value in the working alphabet, so the trie is
balanced regardless of the universe size (Theorem 6.2).

Bit-order note.  The Dietzfelbinger-style guarantee is the multiply-shift one:
it is the *high-order* bits of ``a x mod 2^w`` that are pairwise distinct with
high probability for **any** working alphabet (the low-order bits are not --
e.g. an alphabet of powers of two keeps its trailing-zero structure under
multiplication by an odd constant).  The trie therefore consumes the hash from
the most significant bit downwards, so the distinguishing bits sit at the top
of the trie and the height bound of Theorem 6.2 holds even for such
pathological alphabets; this is the robust reading of the paper's LSB-to-MSB
phrasing and is exercised by the ``S6-BALANCED`` benchmark.

:class:`BalancedDynamicWaveletTree` packages the scheme: it exposes the
standard ``access``/``rank``/``select``/``insert``/``delete``/``append`` on
integer values in ``[0, universe)``, and reports the observed trie height so
the ``S6-BALANCED`` experiment can check the theorem's bound.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional

from repro.core.dynamic import DynamicWaveletTrie
from repro.exceptions import OutOfBoundsError
from repro.tries.binarize import FixedWidthIntCodec

__all__ = ["BalancedDynamicWaveletTree"]


class BalancedDynamicWaveletTree:
    """Dynamic Wavelet Tree on ``[0, universe)`` balanced via multiplicative hashing."""

    def __init__(
        self,
        universe: int,
        values: Iterable[int] = (),
        seed: int = 2024,
    ) -> None:
        if universe < 2:
            raise ValueError("universe must be at least 2")
        self._universe = universe
        self._width = max(1, (universe - 1).bit_length())
        rng = random.Random(seed)
        # A random odd multiplier in [1, 2^width); odd => invertible mod 2^width.
        self._multiplier = rng.randrange(1, 1 << self._width, 2)
        self._inverse = pow(self._multiplier, -1, 1 << self._width)
        # MSB-first: the multiply-shift collision guarantee applies to the
        # high-order bits of the hash, so those must be the first trie levels.
        self._codec = FixedWidthIntCodec(self._width, lsb_first=False)
        self._trie = DynamicWaveletTrie(codec=self._codec, seed=seed)
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        """Exclusive upper bound of the stored values."""
        return self._universe

    @property
    def multiplier(self) -> int:
        """The random odd multiplier ``a`` of the hash ``h_a``."""
        return self._multiplier

    def _hash(self, value: int) -> int:
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"expected int, got {type(value).__name__}")
        if not 0 <= value < self._universe:
            raise OutOfBoundsError(
                f"value {value} outside universe [0, {self._universe})"
            )
        return (value * self._multiplier) % (1 << self._width)

    def _unhash(self, hashed: int) -> int:
        return (hashed * self._inverse) % (1 << self._width)

    # ------------------------------------------------------------------
    # Sequence interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trie)

    def access(self, pos: int) -> int:
        """The value at position ``pos``."""
        return self._unhash(self._trie.access(pos))

    def rank(self, value: int, pos: int) -> int:
        """Occurrences of ``value`` in positions ``[0, pos)``."""
        return self._trie.rank(self._hash(value), pos)

    def select(self, value: int, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``value``."""
        return self._trie.select(self._hash(value), idx)

    def count(self, value: int) -> int:
        """Total occurrences of ``value``."""
        return self.rank(value, len(self))

    def insert(self, value: int, pos: int) -> None:
        """Insert ``value`` immediately before position ``pos``."""
        self._trie.insert(self._hash(value), pos)

    def append(self, value: int) -> None:
        """Append ``value`` at the end."""
        self._trie.append(self._hash(value))

    def delete(self, pos: int) -> int:
        """Delete and return the value at position ``pos``."""
        return self._unhash(self._trie.delete(pos))

    def __iter__(self) -> Iterator[int]:
        for pos in range(len(self)):
            yield self.access(pos)

    def to_list(self) -> List[int]:
        """Materialise the stored sequence."""
        return list(self)

    def distinct_count(self) -> int:
        """Number of distinct stored values (the working alphabet size)."""
        return self._trie.distinct_count()

    # ------------------------------------------------------------------
    # Balance diagnostics (Theorem 6.2)
    # ------------------------------------------------------------------
    def max_height(self) -> int:
        """Maximum number of internal nodes on any root-to-leaf path."""
        best = 0
        if self._trie.root is None:
            return 0
        stack = [(self._trie.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                best = max(best, depth)
                continue
            for child in node.children:
                if child is not None:
                    stack.append((child, depth + 1))
        return best

    def average_height(self) -> float:
        """Average height over the sequence (Definition 3.4 on the hashed trie)."""
        return self._trie.average_height()

    def theoretical_height_bound(self, alpha: float = 1.0) -> float:
        """``(alpha + 2) log2 |Sigma|``: the Theorem 6.2 high-probability bound."""
        import math

        distinct = max(2, self.distinct_count())
        return (alpha + 2) * math.log2(distinct)

    def size_in_bits(self) -> int:
        """Measured size of the underlying Wavelet Trie."""
        return self._trie.size_in_bits()
