"""Huffman-shaped Wavelet Trees.

The paper notes (after Lemma 3.2) that the popular Huffman-shaped Wavelet Tree
is a special case of the Wavelet Trie obtained by mapping each symbol to its
Huffman code.  This module provides the canonical-code construction and a
static Huffman-shaped tree used by the text-collection baseline: frequent
symbols sit near the root, so the expected query depth is ``H0 + 1`` instead
of ``log sigma``.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.bits.bitstring import Bits
from repro.bitvector.base import validate_select_indexes
from repro.bitvector.rrr import RRRBitVector
from repro.exceptions import OutOfBoundsError, ValueNotFoundError

__all__ = ["HuffmanWaveletTree", "huffman_codes"]


def huffman_codes(frequencies: Dict[Hashable, int]) -> Dict[Hashable, Bits]:
    """Binary Huffman codes for the given symbol frequencies.

    Ties are broken deterministically by insertion order so tests are stable.
    A single-symbol alphabet gets the 1-bit code ``0``.
    """
    if not frequencies:
        return {}
    if len(frequencies) == 1:
        symbol = next(iter(frequencies))
        return {symbol: Bits.from_string("0")}
    heap: List[Tuple[int, int, object]] = []
    counter = 0
    for symbol, frequency in frequencies.items():
        heap.append((frequency, counter, ("leaf", symbol)))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        freq_a, _, node_a = heapq.heappop(heap)
        freq_b, _, node_b = heapq.heappop(heap)
        counter += 1
        heapq.heappush(heap, (freq_a + freq_b, counter, ("internal", node_a, node_b)))
    _, _, root = heap[0]
    codes: Dict[Hashable, Bits] = {}

    def assign(node, prefix: Bits) -> None:
        if node[0] == "leaf":
            codes[node[1]] = prefix
            return
        assign(node[1], prefix.appended(0))
        assign(node[2], prefix.appended(1))

    assign(root, Bits.empty())
    return codes


class _CodeNode:
    __slots__ = ("bitvector", "children", "symbol")

    def __init__(self) -> None:
        self.bitvector = None
        self.children: List[Optional["_CodeNode"]] = [None, None]
        self.symbol: Optional[Hashable] = None

    @property
    def is_leaf(self) -> bool:
        return self.symbol is not None


class HuffmanWaveletTree:
    """Static Wavelet Tree shaped by the Huffman codes of the input symbols."""

    def __init__(self, sequence: Iterable[Hashable], bitvector_factory=RRRBitVector) -> None:
        data = list(sequence)
        self._size = len(data)
        self._codes = huffman_codes(Counter(data))
        self._factory = bitvector_factory
        self._root = self._build(data, 0) if data else None

    def _build(self, data: List[Hashable], depth: int) -> _CodeNode:
        node = _CodeNode()
        first = data[0]
        if all(symbol == first for symbol in data):
            # All elements carry the same symbol: a leaf of the code trie.
            node.symbol = first
            return node
        # Distinct symbols share the code prefix consumed so far and, the code
        # being prefix-free, must all have a bit at position `depth`.
        bits = [self._codes[symbol][depth] for symbol in data]
        node.bitvector = self._factory(bits)
        left = [symbol for symbol, bit in zip(data, bits) if bit == 0]
        right = [symbol for symbol, bit in zip(data, bits) if bit == 1]
        if left:
            node.children[0] = self._build(left, depth + 1)
        if right:
            node.children[1] = self._build(right, depth + 1)
        return node

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def codes(self) -> Dict[Hashable, Bits]:
        """The Huffman code of each distinct symbol."""
        return dict(self._codes)

    def access(self, pos: int) -> Hashable:
        """The symbol at position ``pos``."""
        if not 0 <= pos < self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")
        node = self._root
        while not node.is_leaf:
            bit = node.bitvector.access(pos)
            pos = node.bitvector.rank(bit, pos)
            node = node.children[bit]
        return node.symbol

    def rank(self, symbol: Hashable, pos: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, pos)``."""
        if not 0 <= pos <= self._size:
            raise OutOfBoundsError(f"position {pos} out of range for length {self._size}")
        code = self._codes.get(symbol)
        if code is None or pos == 0:
            return 0
        node = self._root
        for depth in range(len(code)):
            if node.is_leaf:
                break
            bit = code[depth]
            pos = node.bitvector.rank(bit, pos)
            if pos == 0:
                return 0
            node = node.children[bit]
            if node is None:
                return 0
        return pos if node is not None and node.is_leaf and node.symbol == symbol else 0

    def select(self, symbol: Hashable, idx: int) -> int:
        """Position of the ``idx``-th occurrence of ``symbol``."""
        code = self._codes.get(symbol)
        if code is None:
            raise ValueNotFoundError(f"symbol {symbol!r} does not occur")
        total = self.count(symbol)
        if not 0 <= idx < total:
            raise OutOfBoundsError(
                f"select({symbol!r}, {idx}) out of range: only {total} occurrences"
            )
        node = self._root
        path: List[Tuple[_CodeNode, int]] = []
        for depth in range(len(code)):
            if node.is_leaf:
                break
            bit = code[depth]
            path.append((node, bit))
            node = node.children[bit]
        for ancestor, bit in reversed(path):
            idx = ancestor.bitvector.select(bit, idx)
        return idx

    def count(self, symbol: Hashable) -> int:
        """Total occurrences of ``symbol``."""
        return self.rank(symbol, self._size)

    # ------------------------------------------------------------------
    # Batch query paths (docs/API.md, "The batch-API convention")
    # ------------------------------------------------------------------
    def access_many(self, positions: Sequence[int]) -> List[Hashable]:
        """The symbols at each of ``positions``.

        Queries descend the code trie in groups: each touched node is
        visited once per batch with one ``access_many``/``rank_many`` pair
        on its bitvector, so node and attribute overhead is amortised over
        the whole batch instead of paid per query.
        """
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        for pos in positions:
            if not 0 <= pos < self._size:
                raise OutOfBoundsError(
                    f"position {pos} out of range for length {self._size}"
                )
        if not positions:
            return []
        out: List[Optional[Hashable]] = [None] * len(positions)
        stack: List[Tuple[_CodeNode, List[Tuple[int, int]]]] = [
            (self._root, list(enumerate(positions)))
        ]
        while stack:
            node, queries = stack.pop()
            if node.is_leaf:
                symbol = node.symbol
                for index, _ in queries:
                    out[index] = symbol
                continue
            vector = node.bitvector
            pos_list = [pos for _, pos in queries]
            bits = vector.access_many(pos_list)
            # One rank_many(0) pass serves both children: rank(1, pos) is
            # just pos - rank(0, pos).
            zero_ranks = vector.rank_many(0, pos_list)
            lefts = [
                (index, rank)
                for (index, _), bit, rank in zip(queries, bits, zero_ranks)
                if not bit
            ]
            rights = [
                (index, pos - rank)
                for (index, pos), bit, rank in zip(queries, bits, zero_ranks)
                if bit
            ]
            if lefts:
                stack.append((node.children[0], lefts))
            if rights:
                stack.append((node.children[1], rights))
        return out

    def rank_many(self, symbol: Hashable, positions: Sequence[int]) -> List[int]:
        """``rank(symbol, pos)`` for each of ``positions``.

        One walk down the symbol's code path serves the whole batch: every
        node on the path is visited once with a single batched ``rank_many``
        on its bitvector, amortising to ``O(|code|)`` batch passes total
        instead of ``q`` independent ``O(|code|)`` scalar walks -- the
        backward-search access pattern of :class:`repro.text.fm_index.FMIndex`.
        """
        if not isinstance(positions, (list, tuple)):
            positions = list(positions)
        for pos in positions:
            if not 0 <= pos <= self._size:
                raise OutOfBoundsError(
                    f"position {pos} out of range for length {self._size}"
                )
        code = self._codes.get(symbol)
        if code is None or not positions:
            return [0] * len(positions)
        current = [int(pos) for pos in positions]
        node = self._root
        for depth in range(len(code)):
            if node is None or node.is_leaf:
                break
            current = node.bitvector.rank_many(code[depth], current)
            node = node.children[code[depth]]
        if node is not None and node.is_leaf and node.symbol == symbol:
            return current
        return [0] * len(positions)

    def select_many(self, symbol: Hashable, indexes: Sequence[int]) -> List[int]:
        """``select(symbol, idx)`` for each of ``indexes``.

        The symbol's root-to-leaf code path is recorded once and unwound
        with each node bitvector's batched ``select_many`` (shared directory
        walks), amortising the per-node work over the whole batch instead of
        paying ``q`` independent unwinds.
        """
        code = self._codes.get(symbol)
        if code is None:
            raise ValueNotFoundError(f"symbol {symbol!r} does not occur")
        indexes = validate_select_indexes(indexes, self.count(symbol), symbol)
        if not indexes:
            return []
        node = self._root
        path: List[Tuple[_CodeNode, int]] = []
        for depth in range(len(code)):
            if node.is_leaf:
                break
            path.append((node, code[depth]))
            node = node.children[code[depth]]
        current = indexes
        for ancestor, bit in reversed(path):
            current = ancestor.bitvector.select_many(bit, current)
        return current

    def to_list(self) -> List[Hashable]:
        """Materialise the stored sequence."""
        return [self.access(pos) for pos in range(self._size)]

    def size_in_bits(self) -> int:
        """Bitvector space plus per-node bookkeeping."""
        total = 0
        nodes = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            nodes += 1
            if node.bitvector is not None:
                total += node.bitvector.size_in_bits()
            for child in node.children:
                if child is not None:
                    stack.append(child)
        return total + nodes * 4 * 64
