"""Bit-level integer codecs: unary, Elias gamma, Elias delta, fixed width.

The fully dynamic bitvector of the paper (Section 4.2) encodes run lengths
with Elias gamma codes; the related-work gap-encoded bitvector of Makinen &
Navarro uses Elias delta codes.  Both are provided here, together with a
:class:`BitWriter`/:class:`BitReader` pair that streams codes into and out of
a compact bit payload.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.bits.bitstring import Bits
from repro.exceptions import EncodingError, OutOfBoundsError

__all__ = [
    "BitReader",
    "BitWriter",
    "decode_delta",
    "decode_gamma",
    "decode_unary",
    "delta_code_length",
    "encode_delta",
    "encode_gamma",
    "encode_unary",
    "gamma_code_length",
    "unary_code_length",
]


# ----------------------------------------------------------------------
# Stream writer / reader
# ----------------------------------------------------------------------
class BitWriter:
    """Append-only writer producing a compact bit payload.

    Bits are written MSB-first, consistent with :class:`Bits`.
    """

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write_bit(self, bit: int) -> None:
        """Write a single bit."""
        self._value = (self._value << 1) | (1 if bit else 0)
        self._length += 1

    def write_int(self, value: int, width: int) -> None:
        """Write ``value`` using exactly ``width`` bits (big-endian)."""
        if width < 0:
            raise EncodingError("width must be non-negative")
        if value < 0 or (width < value.bit_length()):
            raise EncodingError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width

    def write_unary(self, value: int) -> None:
        """Write ``value`` in unary: ``value`` zeros followed by a one."""
        if value < 0:
            raise EncodingError("unary code requires a non-negative value")
        self._value = (self._value << (value + 1)) | 1
        self._length += value + 1

    def write_gamma(self, value: int) -> None:
        """Write ``value >= 1`` with an Elias gamma code."""
        if value < 1:
            raise EncodingError("gamma code requires value >= 1")
        width = value.bit_length()
        self.write_unary(width - 1)
        if width > 1:
            self.write_int(value - (1 << (width - 1)), width - 1)

    def write_delta(self, value: int) -> None:
        """Write ``value >= 1`` with an Elias delta code."""
        if value < 1:
            raise EncodingError("delta code requires value >= 1")
        width = value.bit_length()
        self.write_gamma(width)
        if width > 1:
            self.write_int(value - (1 << (width - 1)), width - 1)

    def to_bits(self) -> Bits:
        """Freeze the written stream into a :class:`Bits` payload."""
        return Bits(self._value, self._length)


class BitReader:
    """Sequential reader over a :class:`Bits` payload written by :class:`BitWriter`."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: Bits, start: int = 0) -> None:
        self._bits = bits
        self._pos = start

    @property
    def position(self) -> int:
        """Current read position in bits."""
        return self._pos

    def seek(self, position: int) -> None:
        """Move the read cursor."""
        if position < 0 or position > len(self._bits):
            raise OutOfBoundsError(f"seek position {position} out of range")
        self._pos = position

    def remaining(self) -> int:
        """Bits left to read."""
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read one bit."""
        if self._pos >= len(self._bits):
            raise OutOfBoundsError("read past end of bit stream")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_int(self, width: int) -> int:
        """Read a ``width``-bit big-endian integer."""
        if width == 0:
            return 0
        if self._pos + width > len(self._bits):
            raise OutOfBoundsError("read past end of bit stream")
        chunk = self._bits.slice(self._pos, self._pos + width)
        self._pos += width
        return chunk.value

    def read_unary(self) -> int:
        """Read a unary code; returns the number of leading zeros."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

    def read_gamma(self) -> int:
        """Read an Elias gamma code."""
        width = self.read_unary() + 1
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_int(width - 1)

    def read_delta(self) -> int:
        """Read an Elias delta code."""
        width = self.read_gamma()
        if width == 1:
            return 1
        return (1 << (width - 1)) | self.read_int(width - 1)


# ----------------------------------------------------------------------
# One-shot helpers
# ----------------------------------------------------------------------
def encode_unary(values: Iterable[int]) -> Bits:
    """Encode an iterable of non-negative integers in unary."""
    writer = BitWriter()
    for value in values:
        writer.write_unary(value)
    return writer.to_bits()


def decode_unary(bits: Bits, count: int) -> List[int]:
    """Decode ``count`` unary codes from ``bits``."""
    reader = BitReader(bits)
    return [reader.read_unary() for _ in range(count)]


def encode_gamma(values: Iterable[int]) -> Bits:
    """Encode an iterable of integers (each >= 1) with Elias gamma codes."""
    writer = BitWriter()
    for value in values:
        writer.write_gamma(value)
    return writer.to_bits()


def decode_gamma(bits: Bits, count: int) -> List[int]:
    """Decode ``count`` gamma codes from ``bits``."""
    reader = BitReader(bits)
    return [reader.read_gamma() for _ in range(count)]


def encode_delta(values: Iterable[int]) -> Bits:
    """Encode an iterable of integers (each >= 1) with Elias delta codes."""
    writer = BitWriter()
    for value in values:
        writer.write_delta(value)
    return writer.to_bits()


def decode_delta(bits: Bits, count: int) -> List[int]:
    """Decode ``count`` delta codes from ``bits``."""
    reader = BitReader(bits)
    return [reader.read_delta() for _ in range(count)]


def unary_code_length(value: int) -> int:
    """Length in bits of the unary code of ``value``."""
    if value < 0:
        raise EncodingError("unary code requires a non-negative value")
    return value + 1


def gamma_code_length(value: int) -> int:
    """Length in bits of the Elias gamma code of ``value`` (>= 1)."""
    if value < 1:
        raise EncodingError("gamma code requires value >= 1")
    width = value.bit_length()
    return 2 * width - 1


def delta_code_length(value: int) -> int:
    """Length in bits of the Elias delta code of ``value`` (>= 1)."""
    if value < 1:
        raise EncodingError("delta code requires value >= 1")
    width = value.bit_length()
    return gamma_code_length(width) + width - 1


def _build_binomial_table(limit: int) -> list:
    """Pascal's triangle up to ``limit`` rows (inclusive)."""
    table = [[1]]
    for n in range(1, limit + 1):
        row = [1] * (n + 1)
        previous = table[n - 1]
        for k in range(1, n):
            row[k] = previous[k - 1] + previous[k]
        table.append(row)
    return table


# The RRR block size never exceeds 63 bits, so a 64-row Pascal triangle covers
# every (class, offset) computation with plain list lookups -- this table is
# the pure-Python stand-in for the four-Russians lookup tables of the paper.
_BINOMIAL_TABLE = _build_binomial_table(64)
_OFFSET_WIDTH_CACHE: dict = {}


def binomial(n: int, k: int) -> int:
    """Binomial coefficient with the usual out-of-range conventions."""
    if k < 0 or k > n or n < 0:
        return 0
    if n <= 64:
        return _BINOMIAL_TABLE[n][k]
    from math import comb

    return comb(n, k)


def combinatorial_rank(bits_value: int, width: int, ones: int) -> int:
    """Rank of a ``width``-bit block with ``ones`` one-bits in the
    lexicographic enumeration of all such blocks (RRR offset encoding).

    The block is interpreted MSB-first, i.e. the same order as :class:`Bits`.
    """
    table = _BINOMIAL_TABLE
    rank = 0
    remaining_ones = ones
    for position in range(width):
        if remaining_ones == 0:
            break
        if (bits_value >> (width - 1 - position)) & 1:
            remaining_ones -= 1
        else:
            # All blocks that have a 1 here and agree on the prefix come first.
            remaining_width = width - position - 1
            if remaining_ones - 1 <= remaining_width:
                rank += table[remaining_width][remaining_ones - 1]
    return rank


def combinatorial_prefix_popcount(
    rank: int, width: int, ones: int, prefix: int
) -> int:
    """Ones among the first ``prefix`` bits of the block :func:`combinatorial_unrank`
    would rebuild -- without materialising the block.

    Walks the same enumeration descent but stops after ``prefix`` steps, so
    ``rank`` queries on RRR blocks cost O(prefix) instead of O(width).
    """
    table = _BINOMIAL_TABLE
    count = 0
    remaining_ones = ones
    remaining_rank = rank
    for position in range(prefix):
        if remaining_ones == 0:
            break
        remaining_width = width - position - 1
        skip = (
            table[remaining_width][remaining_ones - 1]
            if remaining_ones - 1 <= remaining_width
            else 0
        )
        if remaining_rank < skip:
            count += 1
            remaining_ones -= 1
        else:
            remaining_rank -= skip
    return count


def combinatorial_bit_at(rank: int, width: int, ones: int, position: int) -> int:
    """Bit ``position`` (MSB-first) of the block ``combinatorial_unrank`` would
    rebuild, via the same truncated descent."""
    table = _BINOMIAL_TABLE
    remaining_ones = ones
    remaining_rank = rank
    for current in range(position + 1):
        if remaining_ones == 0:
            return 0
        remaining_width = width - current - 1
        skip = (
            table[remaining_width][remaining_ones - 1]
            if remaining_ones - 1 <= remaining_width
            else 0
        )
        if remaining_rank < skip:
            if current == position:
                return 1
            remaining_ones -= 1
        else:
            remaining_rank -= skip
    return 0


def combinatorial_unrank(rank: int, width: int, ones: int) -> int:
    """Inverse of :func:`combinatorial_rank`: rebuild the block value."""
    table = _BINOMIAL_TABLE
    value = 0
    remaining_ones = ones
    remaining_rank = rank
    for position in range(width):
        if remaining_ones == 0:
            break
        remaining_width = width - position - 1
        skip = (
            table[remaining_width][remaining_ones - 1]
            if remaining_ones - 1 <= remaining_width
            else 0
        )
        if remaining_rank < skip:
            value |= 1 << (width - 1 - position)
            remaining_ones -= 1
        else:
            remaining_rank -= skip
    return value


def offset_width(width: int, ones: int) -> int:
    """Number of bits needed to store the RRR offset of a block class."""
    cached = _OFFSET_WIDTH_CACHE.get((width, ones))
    if cached is not None:
        return cached
    total = binomial(width, ones)
    result = max(total - 1, 0).bit_length() if total > 1 else 0
    _OFFSET_WIDTH_CACHE[(width, ones)] = result
    return result


def offset_width_table(width: int) -> List[int]:
    """Offset widths for every class of a ``width``-bit block (hot-path table)."""
    return [offset_width(width, ones) for ones in range(width + 1)]
