"""A mutable, appendable bit buffer backed by the kernel's packed word list.

:class:`BitBuffer` is used wherever an encoding is built incrementally: RRR
block streams, concatenated trie labels, the tail buffer of the append-only
bitvector.  It stores bits in the same MSB-first order as
:class:`~repro.bits.bitstring.Bits` and can be frozen into one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.bits import kernel
from repro.bits.bitstring import Bits
from repro.bits.kernel import WORD, WORD_MASK
from repro.exceptions import OutOfBoundsError

__all__ = ["BitBuffer"]


class BitBuffer:
    """A growable sequence of bits supporting append, random access and freeze.

    The buffer is backed by the kernel's *packed word list* (full 64-bit
    words, MSB-first) plus one small spill integer holding the trailing
    partial word.  ``append`` therefore touches only the spill word -- O(1)
    amortised, never a shift of the whole payload -- which is what lets the
    append-only bitvector keep arbitrarily long tails without a per-bit
    O(length / w) cost.  Bulk producers should still prefer
    ``extend``/``append_bits``/``append_int``, which splice whole payloads
    word-at-a-time through the kernel.
    """

    __slots__ = ("_words", "_spill", "_fill", "_length", "_ones")

    def __init__(self, initial: Iterable[int] = ()) -> None:
        self._words: List[int] = []  # full 64-bit words, MSB-first
        self._spill = 0  # trailing partial word, right-aligned
        self._fill = 0  # bits currently in the spill word (0..63)
        self._length = 0
        self._ones = 0
        self.extend(initial)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1) in O(1) amortised.

        Only the small spill integer is shifted; a full word is flushed to the
        packed word list every 64 appends.
        """
        bit = 1 if bit else 0
        self._spill = (self._spill << 1) | bit
        self._fill += 1
        self._length += 1
        self._ones += bit
        if self._fill == WORD:
            self._words.append(self._spill)
            self._spill = 0
            self._fill = 0

    def extend(self, bits: Iterable[int]) -> None:
        """Append each bit of an iterable (bulk ``Append``).

        A :class:`Bits` payload is spliced word-at-a-time; any other iterable
        is first packed into words by the kernel backend (O(k / 8), one
        ``np.packbits`` pass under the numpy backend) and then spliced --
        never one Python-level append per bit.  A word-aligned buffer takes
        the packed words verbatim, with no big-integer round trip.
        """
        if isinstance(bits, Bits):
            self.append_bits(bits)
            return
        words, length = kernel.pack_bits(bits)
        self._append_packed(kernel.as_int_list(words), length)

    def _append_packed(self, words: List[int], length: int) -> None:
        """Splice a kernel packed word list onto the end of the buffer."""
        if length == 0:
            return
        if self._fill:
            self.append_int(kernel.unpack_value(words, length), length)
            return
        n_full, rem = divmod(length, WORD)
        self._ones += kernel.popcount_words(words)
        self._length += length
        self._words.extend(words[:n_full])
        if rem:
            self._spill = words[n_full] >> (WORD - rem)
            self._fill = rem

    def append_bits(self, bits: Bits) -> None:
        """Append a whole :class:`Bits` payload in O(|bits| / w) word splices."""
        self.append_int(bits.value, len(bits))

    def append_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` in O(count / w) word splices."""
        if count < 0:
            raise ValueError("run length must be non-negative")
        if count == 0:
            return
        if bit:
            self.append_int((1 << count) - 1, count)
        else:
            self.append_int(0, count)

    def append_int(self, value: int, width: int) -> None:
        """Append the ``width``-bit big-endian representation of ``value``.

        O(width / w): the head tops up the current spill word, the body goes
        through one kernel bulk pack, and the remainder becomes the new spill.
        """
        if value < 0 or width < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            return
        self._ones += value.bit_count()
        self._length += width
        if self._fill:
            room = WORD - self._fill
            if width < room:
                self._spill = (self._spill << width) | value
                self._fill += width
                return
            rest = width - room
            self._words.append(
                ((self._spill << room) | (value >> rest)) & WORD_MASK
            )
            value &= (1 << rest) - 1
            self._spill = 0
            self._fill = 0
            width = rest
            if width == 0:
                return
        n_full, rem = divmod(width, WORD)
        if n_full:
            self._words.extend(
                kernel.pack_value(value >> rem, n_full * WORD)
            )
            value &= (1 << rem) - 1
        self._spill = value
        self._fill = rem

    def clear(self) -> None:
        """Remove all bits."""
        self._words = []
        self._spill = 0
        self._fill = 0
        self._length = 0
        self._ones = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        """Number of 1 bits currently in the buffer."""
        return self._ones

    @property
    def zeros(self) -> int:
        """Number of 0 bits currently in the buffer."""
        return self._length - self._ones

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise OutOfBoundsError(
                f"bit index {index} out of range for length {self._length}"
            )
        word_index, offset = divmod(index, WORD)
        if word_index < len(self._words):
            return (self._words[word_index] >> (WORD - 1 - offset)) & 1
        return (self._spill >> (self._fill - 1 - offset)) & 1

    def __iter__(self) -> Iterator[int]:
        yield from kernel.broadword_iter_words(
            self._words, 0, len(self._words) * WORD
        )
        spill, fill = self._spill, self._fill
        for shift in range(fill - 1, -1, -1):
            yield (spill >> shift) & 1

    def rank(self, bit: int, pos: int) -> int:
        """Number of occurrences of ``bit`` among the first ``pos`` bits.

        O(pos / w) word popcounts; the buffer is meant to stay small
        (poly-logarithmic) as in Lemma 4.6 of the paper.
        """
        if pos < 0 or pos > self._length:
            raise OutOfBoundsError(f"rank position {pos} out of range")
        if pos == 0:
            return 0
        full_bits = len(self._words) << 6
        if pos <= full_bits:
            ones = kernel.popcount_range(self._words, 0, pos)
        else:
            ones = kernel.popcount_words(self._words)
            ones += (self._spill >> (self._fill - (pos - full_bits))).bit_count()
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        """Position of the ``idx``-th (0-based) occurrence of ``bit``.

        O(length / w): the kernel's directory-free word-scan select over the
        padded word list.
        """
        total = self._ones if bit else self.zeros
        if idx < 0 or idx >= total:
            raise OutOfBoundsError(
                f"select index {idx} out of range ({total} occurrences)"
            )
        return kernel.select_bit_in_words(self.words(), self._length, bit, idx)

    def to_bits(self) -> Bits:
        """Freeze into an immutable :class:`Bits` value (one bulk conversion)."""
        value = (kernel.words_to_int(self._words) << self._fill) | self._spill
        return Bits(value, self._length)

    def words(self) -> List[int]:
        """The payload as a kernel packed word list (last word zero-padded)."""
        out = list(self._words)
        if self._fill:
            out.append((self._spill << (WORD - self._fill)) & WORD_MASK)
        return out

    def to_list(self) -> List[int]:
        """Render as a list of integers."""
        return list(self)

    def __repr__(self) -> str:
        shown = self.to_bits().to01()
        if len(shown) > 64:
            shown = shown[:61] + "..."
        return f"BitBuffer('{shown}', length={self._length})"
