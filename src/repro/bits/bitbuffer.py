"""A mutable, appendable bit buffer.

:class:`BitBuffer` is used wherever an encoding is built incrementally: RRR
block streams, concatenated trie labels, the tail buffer of the append-only
bitvector.  It stores bits in the same MSB-first order as
:class:`~repro.bits.bitstring.Bits` and can be frozen into one.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.bits.bitstring import Bits
from repro.exceptions import OutOfBoundsError

__all__ = ["BitBuffer"]


class BitBuffer:
    """A growable sequence of bits supporting append, random access and freeze.

    The buffer is backed by a Python integer (``_value``) holding the bits
    appended so far, most-significant-first, mirroring :class:`Bits`.  Every
    append shifts the whole backing integer, which costs O(length / w) word
    operations -- *not* O(1) amortised -- so per-bit appends over a buffer of
    ``n`` bits total O(n^2 / w).  That is acceptable because buffers stay
    polylogarithmic (Lemma 4.6 of the paper); bulk producers should use
    ``extend``/``append_bits``, which pack through the word-level kernel and
    pay the shift once per batch instead of once per bit.
    """

    __slots__ = ("_value", "_length", "_ones")

    def __init__(self, initial: Iterable[int] = ()) -> None:
        self._value = 0
        self._length = 0
        self._ones = 0
        for bit in initial:
            self.append(bit)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1).

        Costs one shift of the whole backing integer -- O(length / w) words,
        not O(1); see the class docstring.  Bulk callers should prefer
        :meth:`extend` / :meth:`append_bits`.
        """
        bit = 1 if bit else 0
        self._value = (self._value << 1) | bit
        self._length += 1
        self._ones += bit

    def extend(self, bits: Iterable[int]) -> None:
        """Append each bit of an iterable (bulk ``Append``).

        A :class:`Bits` payload is spliced with one shift; any other iterable
        is first packed into words by the kernel (O(k / 8)), then spliced with
        one shift -- never one big-int shift per bit.
        """
        if not isinstance(bits, Bits):
            bits = Bits.from_iterable(bits)
        self.append_bits(bits)

    def append_bits(self, bits: Bits) -> None:
        """Append a whole :class:`Bits` payload in one big-int operation."""
        self._value = (self._value << len(bits)) | bits.value
        self._length += len(bits)
        self._ones += bits.popcount()

    def append_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit``."""
        if count < 0:
            raise ValueError("run length must be non-negative")
        if count == 0:
            return
        if bit:
            self._value = (self._value << count) | ((1 << count) - 1)
            self._ones += count
        else:
            self._value <<= count
        self._length += count

    def append_int(self, value: int, width: int) -> None:
        """Append the ``width``-bit big-endian representation of ``value``."""
        if value < 0 or (width and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._length += width
        self._ones += value.bit_count()

    def clear(self) -> None:
        """Remove all bits."""
        self._value = 0
        self._length = 0
        self._ones = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        """Number of 1 bits currently in the buffer."""
        return self._ones

    @property
    def zeros(self) -> int:
        """Number of 0 bits currently in the buffer."""
        return self._length - self._ones

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise OutOfBoundsError(
                f"bit index {index} out of range for length {self._length}"
            )
        return (self._value >> (self._length - 1 - index)) & 1

    def __iter__(self) -> Iterator[int]:
        value, length = self._value, self._length
        for shift in range(length - 1, -1, -1):
            yield (value >> shift) & 1

    def rank(self, bit: int, pos: int) -> int:
        """Number of occurrences of ``bit`` among the first ``pos`` bits.

        This is a linear-ish (big-int) operation; the buffer is meant to stay
        small (poly-logarithmic) as in Lemma 4.6 of the paper.
        """
        if pos < 0 or pos > self._length:
            raise OutOfBoundsError(f"rank position {pos} out of range")
        if pos == 0:
            return 0
        prefix_value = self._value >> (self._length - pos)
        ones = prefix_value.bit_count()
        return ones if bit else pos - ones

    def select(self, bit: int, idx: int) -> int:
        """Position of the ``idx``-th (0-based) occurrence of ``bit``."""
        total = self._ones if bit else self.zeros
        if idx < 0 or idx >= total:
            raise OutOfBoundsError(
                f"select index {idx} out of range ({total} occurrences)"
            )
        # Scan 64-bit chunks (MSB-first) counting occurrences, then finish the
        # chunk containing the answer bit by bit.
        remaining = idx
        position = 0
        while position < self._length:
            width = min(64, self._length - position)
            chunk = (self._value >> (self._length - position - width)) & ((1 << width) - 1)
            in_chunk = chunk.bit_count() if bit else width - chunk.bit_count()
            if remaining >= in_chunk:
                remaining -= in_chunk
                position += width
                continue
            for offset in range(width):
                value = (chunk >> (width - 1 - offset)) & 1
                if value == bit:
                    if remaining == 0:
                        return position + offset
                    remaining -= 1
            raise AssertionError("unreachable")  # pragma: no cover
        raise AssertionError("unreachable")  # pragma: no cover

    def to_bits(self) -> Bits:
        """Freeze into an immutable :class:`Bits` value."""
        return Bits(self._value, self._length)

    def to_list(self) -> List[int]:
        """Render as a list of integers."""
        return list(self)

    def __repr__(self) -> str:
        shown = self.to_bits().to01()
        if len(shown) > 64:
            shown = shown[:61] + "..."
        return f"BitBuffer('{shown}', length={self._length})"
