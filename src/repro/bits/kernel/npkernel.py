"""Numpy-accelerated backend of the word-level bit-operations kernel.

Implements the backend contract of :mod:`repro.bits.kernel` (see the "Kernel
backends" section of docs/ARCHITECTURE.md) over ``uint64`` word arrays:

* bulk packing via ``np.packbits`` on whole bit arrays;
* bulk popcount via the 4-instruction SWAR recurrence applied to whole
  arrays (``np.bitwise_count`` is used instead when the installed numpy
  provides it -- same values, one vector instruction);
* two-level rank-directory construction with ``cumsum``;
* batched directory lookups for ``rank_many_packed`` / ``access_many_packed``
  with one fancy-indexing gather per batch;
* ``searchsorted``-based word location plus a fully vectorised byte-table
  in-word select for ``select_many_packed`` / ``select_in_word_many``.

Exchange format: the same MSB-first left-aligned 64-bit packed words as the
python backend (:mod:`repro.bits.kernel.pykernel`).  Bulk functions accept
plain lists *or* ``np.ndarray(dtype=uint64)`` word arrays, and the batch
query functions mirror the input container: list in, list out; array in,
array out.  Returned arrays are backend-native -- callers that store results
must normalise through :func:`repro.bits.kernel.as_int_list`, and a
backend-native array is only valid with the backend that produced it.
Scalar primitives where vectorisation cannot help (``select_in_word``,
``extract_bits_value``, ...) are shared with -- and re-exported from -- the
python backend, which keeps the two backends bit-for-bit identical there by
construction.

This module imports cleanly when numpy is absent (``HAVE_NUMPY`` is then
``False``); the façade only registers the backend when numpy is available.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.bits.kernel import pykernel

# Shared scalar primitives: identical in both backends by construction.
from repro.bits.kernel.pykernel import (  # noqa: F401  (re-exported contract)
    SUPERBLOCK_BITS,
    SUPERBLOCK_WORDS,
    WORD,
    WORD_MASK,
    broadword_iter_words,
    extract_bits_value,
    invert_word,
    iter_word_bits,
    pack_value,
    popcount_range,
    rank_word_prefix,
    select_bit_in_words,
    select_in_word,
    select_one_in_words,
    select_zero_in_word,
    unpack_value,
    words_to_int,
)

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None
    HAVE_NUMPY = False

__all__ = list(pykernel.__all__)

# Below this many items the fixed cost of array round-trips exceeds the
# vectorisation win; such calls are delegated to the python backend.
_SMALL = 32

if HAVE_NUMPY:
    _U64 = np.uint64
    _ZERO64 = np.uint64(0)
    _SIX = np.uint64(6)
    _SIXTY_THREE = np.uint64(63)
    _SIXTY_FOUR = np.uint64(64)
    # Vector twins of the four-Russians tables: select-in-byte and per-byte
    # popcounts, both indexable by whole arrays at once.
    _SELECT_IN_BYTE_NP = np.frombuffer(
        pykernel._SELECT_IN_BYTE, dtype=np.uint8
    ).reshape(256, 8)
    _BYTE_POP_NP = np.array(
        [byte.bit_count() for byte in range(256)], dtype=np.int64
    )
    # MSB-first shifts extracting the 8 bytes of a word, broadcastable.
    _BYTE_SHIFTS_NP = np.array([56, 48, 40, 32, 24, 16, 8, 0], dtype=np.uint64)

    if hasattr(np, "bitwise_count"):

        def _popcount_array(arr):
            """Per-element popcount of a ``uint64`` array (``int64`` result)."""
            return np.bitwise_count(arr).astype(np.int64)

    else:  # pragma: no cover - numpy < 2.0

        _M1 = np.uint64(0x5555555555555555)
        _M2 = np.uint64(0x3333333333333333)
        _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        _H01 = np.uint64(0x0101010101010101)

        def _popcount_array(arr):
            """The 4-instruction SWAR popcount recurrence on a whole array."""
            x = arr - ((arr >> np.uint64(1)) & _M1)
            x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
            x = (x + (x >> np.uint64(4))) & _M4
            return ((x * _H01) >> np.uint64(56)).astype(np.int64)


def words_view(buffer):
    """Zero-copy read-only ``uint64`` array view over little-endian bytes.

    The numpy twin of :func:`pykernel.words_view`: ``np.frombuffer`` over the
    buffer (an ``mmap`` region, ``bytes`` or ``memoryview``) -- no copy, no
    decode.  The array aliases ``buffer`` (keeping it alive), is marked
    non-writeable, and holds the same word values as the python backend's
    view.  Callers must never mutate the underlying bytes while the view
    exists.  Big-endian platforms pay a one-time ``astype`` copy.
    """
    arr = np.frombuffer(buffer, dtype="<u8")
    if arr.dtype != np.uint64:  # pragma: no cover - big-endian platforms only
        return arr.astype(np.uint64)
    arr = arr.view(np.uint64)
    if arr.flags.writeable:
        arr = arr.view()
        arr.flags.writeable = False
    return arr


def _as_word_array(words):
    """A ``uint64`` array view/copy of a packed word sequence."""
    if isinstance(words, np.ndarray):
        if words.dtype == np.uint64:
            return words
        return words.astype(np.uint64)
    if isinstance(words, memoryview):
        # Frozen-image word views: reinterpret the mapped bytes in place.
        return words_view(words)
    return np.asarray(words, dtype=np.uint64)


def _words_to_bit_array(words, length: int):
    """Unpack the top ``length`` bits of a word sequence into a uint8 array."""
    if length <= 0:
        return np.zeros(0, dtype=np.uint8)
    arr = _as_word_array(words)
    n_words = (length + WORD - 1) >> 6
    raw = arr[:n_words].astype(">u8").view(np.uint8)
    return np.unpackbits(raw, count=length)


def _bit_array_to_words(bits) -> Tuple[np.ndarray, int]:
    """Pack a 0/1 ``uint8`` array into a left-aligned ``uint64`` word array."""
    length = int(bits.size)
    packed = np.packbits(bits)  # MSB-first per byte, zero-padded right
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate((packed, np.zeros(pad, dtype=np.uint8)))
    words = np.frombuffer(packed.tobytes(), dtype=">u8").astype(np.uint64)
    return words, length


# ----------------------------------------------------------------------
# Bulk packing
# ----------------------------------------------------------------------
def pack_bits(bits: Iterable[int]) -> Tuple[np.ndarray, int]:
    """Pack an iterable of 0/1 values; returns ``(words, length)``.

    Vectorised: one ``np.packbits`` over the whole bit array.  ``words`` is a
    backend-native ``uint64`` array (same values as the python backend's
    list); arbitrary iterables are drained through ``np.fromiter`` first.
    """
    if isinstance(bits, np.ndarray):
        arr = bits
    elif isinstance(bits, (list, tuple, bytes, bytearray, range)):
        arr = np.asarray(bits)
    else:
        bits = list(bits)
        arr = np.asarray(bits)
    if arr.dtype != np.bool_:
        if arr.dtype.kind in "iuf":
            arr = arr != 0
        else:
            # Exotic element types: fall back to python truthiness so the
            # backends agree bit-for-bit (e.g. ``None`` and ``""`` are 0).
            arr = np.fromiter(
                (1 if bit else 0 for bit in bits), np.uint8, count=len(bits)
            )
    return _bit_array_to_words(arr)


def pack_iterable(bits: Iterable[int]) -> Tuple[np.ndarray, int]:
    """Pack an iterable of 0/1 values; returns ``(words, length)``.

    Alias of :func:`pack_bits` (the canonical dispatched name).
    """
    return pack_bits(bits)


# ----------------------------------------------------------------------
# Bulk popcounts and directories
# ----------------------------------------------------------------------
def popcount_words(words: Sequence[int]) -> int:
    """Total set bits of a packed word sequence (whole-array popcount)."""
    if not isinstance(words, np.ndarray) and len(words) < _SMALL:
        return pykernel.popcount_words(words)
    return int(_popcount_array(_as_word_array(words)).sum())


def build_rank_directory(words: Sequence[int]):
    """Build the two-level rank directory of a packed word sequence.

    Same layout and values as the python backend --
    ``(super_cum, word_pop, word_cum)`` with the trailing sentinels -- but
    computed with one array popcount plus ``cumsum`` instead of a per-word
    python loop.  ``super_cum``/``word_cum`` come back as ``int64`` arrays
    (backend-native; normalise with :func:`repro.bits.kernel.as_int_list`
    for scalar consumption).
    """
    arr = _as_word_array(words)
    n = int(arr.size)
    if n == 0:
        return np.zeros(1, dtype=np.int64), b"", np.zeros(1, dtype=np.int64)
    pops = _popcount_array(arr)
    word_pop = pops.astype(np.uint8).tobytes()
    cum = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(pops, out=cum[1:])
    super_cum = np.concatenate((cum[0:n:SUPERBLOCK_WORDS], cum[n:]))
    word_cum = np.empty(n + 1, dtype=np.int64)
    starts = np.arange(n, dtype=np.int64) & ~(SUPERBLOCK_WORDS - 1)
    np.subtract(cum[:n], cum[starts], out=word_cum[:n])
    word_cum[n] = (
        0
        if n % SUPERBLOCK_WORDS == 0
        else int(cum[n] - cum[(n - 1) & ~(SUPERBLOCK_WORDS - 1)])
    )
    return super_cum, word_pop, word_cum


def cumulative_popcounts(word_pop: bytes, length: int):
    """Flat per-word absolute one/zero cumulatives with sentinels.

    Same values as the python backend, via one ``cumsum`` over the popcount
    bytes; both cumulatives come back as ``int64`` arrays.
    """
    pops = np.frombuffer(word_pop, dtype=np.uint8)
    n = pops.size
    abs_cum = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(pops, out=abs_cum[1:], dtype=np.int64)
    zero_cum = np.arange(n + 1, dtype=np.int64) * WORD - abs_cum
    zero_cum[n] = length - int(abs_cum[n])
    return abs_cum, zero_cum


def block_popcounts(words: Sequence[int], length: int, block_size: int):
    """Popcount of each ``block_size``-bit block of the top ``length`` bits.

    One ``unpackbits`` plus ``np.add.reduceat`` over the block starts -- the
    bulk class computation of RRR construction.  Returns an ``int64`` array.
    """
    if length <= 0:
        return np.zeros(0, dtype=np.int64)
    bits = _words_to_bit_array(words, length)
    starts = np.arange(0, length, block_size, dtype=np.int64)
    return np.add.reduceat(bits.astype(np.int64), starts)


def one_positions(words: Sequence[int]):
    """Ascending positions of all set bits (``flatnonzero`` of the bit array)."""
    if not isinstance(words, np.ndarray) and len(words) < _SMALL:
        return pykernel.one_positions(words)
    arr = _as_word_array(words)
    bits = _words_to_bit_array(arr, int(arr.size) * WORD)
    return np.flatnonzero(bits)


# ----------------------------------------------------------------------
# Runs
# ----------------------------------------------------------------------
def _run_lengths_of_bit_array(bits) -> np.ndarray:
    boundaries = np.flatnonzero(bits[1:] != bits[:-1]) + 1
    edges = np.concatenate(
        (np.zeros(1, dtype=np.int64), boundaries, [bits.size])
    )
    return np.diff(edges)


def run_lengths_of_value(value: int, length: int) -> List[int]:
    """Lengths of the maximal runs of an MSB-first ``(value, length)`` payload.

    Vectorised: run boundaries are the indices where the unpacked bit array
    changes value, found with one ``flatnonzero`` + ``diff``.
    """
    if length <= 0:
        return []
    if length < 8 * _SMALL:
        return pykernel.run_lengths_of_value(value, length)
    words = pykernel.pack_value(value, length)
    bits = _words_to_bit_array(words, length)
    return _run_lengths_of_bit_array(bits).tolist()


def _runs_from_bit_array(bits) -> List[Tuple[int, int]]:
    if bits.size == 0:
        return []
    first = int(bits[0])
    lengths = _run_lengths_of_bit_array(bits)
    bit_values = (np.arange(lengths.size) & 1) ^ first
    return list(zip(bit_values.tolist(), lengths.tolist()))


def runs_of_value(value: int, length: int) -> List[Tuple[int, int]]:
    """The maximal ``(bit, length)`` runs of an MSB-first payload, in order.

    Vectorised twin of the python backend's byte-table extraction: one
    ``unpackbits`` + boundary ``diff``; runs alternate so the bit column is
    an arange parity.
    """
    if length <= 0:
        return []
    if length < 8 * _SMALL:
        return pykernel.runs_of_value(value, length)
    words = pykernel.pack_value(value, length)
    return _runs_from_bit_array(_words_to_bit_array(words, length))


def runs_of_words(words: Sequence[int], length: int) -> List[Tuple[int, int]]:
    """The maximal ``(bit, length)`` runs of a packed word sequence, in order.

    Vectorised directly from the word array -- no big-integer round trip.
    """
    if length <= 0:
        return []
    return _runs_from_bit_array(_words_to_bit_array(words, length))


def delete_positions_from_runs(
    runs: Sequence[Tuple[int, int]], positions: Sequence[int]
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Remove the bits at sorted ``positions`` from a ``(bit, length)`` run list.

    Vectorised run surgery: one ``searchsorted`` over the run-end cumulatives
    locates every deleted position's run, ``bincount`` subtracts the per-run
    removal counts, and the surviving runs are coalesced with one boundary
    ``reduceat``.  Same values and validation as the python backend.
    """
    if len(positions) < _SMALL or not len(runs):
        return pykernel.delete_positions_from_runs(runs, positions)
    arr = np.asarray(runs, dtype=np.int64).reshape(-1, 2)
    bits = arr[:, 0]
    lengths = arr[:, 1]
    ends = np.cumsum(lengths)
    pos = np.asarray(positions, dtype=np.int64)
    if pos[-1] >= ends[-1]:
        bad = pos[np.searchsorted(pos, ends[-1])]
        raise ValueError(
            f"position {int(bad)} out of range for run length {int(ends[-1])}"
        )
    run_index = np.searchsorted(ends, pos, side="right")
    deleted = bits[run_index].tolist()
    removed = np.bincount(run_index, minlength=bits.size)
    new_lengths = lengths - removed
    keep = new_lengths > 0
    kept_bits = bits[keep]
    kept_lengths = new_lengths[keep]
    if kept_bits.size == 0:
        return [], deleted
    boundaries = np.empty(kept_bits.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(kept_bits[1:], kept_bits[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    merged_lengths = np.add.reduceat(kept_lengths, starts)
    return (
        list(zip(kept_bits[starts].tolist(), merged_lengths.tolist())),
        deleted,
    )


# ----------------------------------------------------------------------
# In-word multi-select
# ----------------------------------------------------------------------
def select_in_word_many(word: int, ks: Sequence[int]) -> List[int]:
    """Offsets of the ``ks[i]``-th set bits of a 64-bit word, ``ks`` ascending.

    Small groups delegate to the python byte walk; large groups use the
    vectorised byte-cumulative location of :func:`select_many_packed` on a
    single word.
    """
    if len(ks) < _SMALL:
        return pykernel.select_in_word_many(word, ks)
    if len(ks) and ks[-1] >= int(word).bit_count():
        raise ValueError(f"word has fewer than {ks[-1] + 1} set bits")
    k_arr = np.asarray(ks, dtype=np.int64)
    word_arr = np.full(k_arr.size, np.uint64(word), dtype=np.uint64)
    return _select_in_words_vec(word_arr, k_arr).tolist()


def _select_in_words_vec(word_arr, k_arr):
    """Vectorised in-word select: per-query word + rank -> bit offset.

    Decomposes each word into its 8 MSB-first bytes, takes byte popcount
    cumulatives, locates the covering byte per query by comparing the
    cumulatives against ``k`` (an 8-column searchsorted), and finishes with
    one gather from the select-in-byte table.
    """
    # Extract the 8 bytes of each word, MSB-first.
    bytes_mat = (
        (word_arr[:, None] >> _BYTE_SHIFTS_NP[None, :]) & np.uint64(0xFF)
    ).astype(np.int64)
    pops = _BYTE_POP_NP[bytes_mat]
    cum = np.cumsum(pops, axis=1)
    byte_index = (cum <= k_arr[:, None]).sum(axis=1)
    before = np.where(
        byte_index > 0,
        np.take_along_axis(
            cum, np.maximum(byte_index - 1, 0)[:, None], axis=1
        )[:, 0],
        0,
    )
    k_in_byte = k_arr - before
    byte_vals = np.take_along_axis(
        bytes_mat, np.minimum(byte_index, 7)[:, None], axis=1
    )[:, 0]
    offsets = _SELECT_IN_BYTE_NP[byte_vals, k_in_byte].astype(np.int64)
    return byte_index * 8 + offsets


# ----------------------------------------------------------------------
# Wavelet construction primitives
# ----------------------------------------------------------------------
def prepare_symbols(symbols: Sequence[int]):
    """Backend-native handle for a symbol sequence: one ``int64`` array.

    Symbols beyond the ``int64`` range cannot be vectorised; they fall back
    to the python backend's list handle (``partition_by_pivot`` follows).
    """
    try:
        return np.asarray(symbols, dtype=np.int64)
    except OverflowError:
        return pykernel.prepare_symbols(symbols)


def partition_by_pivot(symbols, pivot: int):
    """One wavelet-node build step, fully vectorised.

    ``symbols >= pivot`` gives the branch-bit mask (packed with
    ``np.packbits``); boolean indexing yields the stable left/right
    partitions as new ``int64`` arrays.  List handles (symbols beyond the
    ``int64`` range, see :func:`prepare_symbols`) delegate to the python
    implementation.
    """
    if not isinstance(symbols, np.ndarray):
        return pykernel.partition_by_pivot(symbols, pivot)
    mask = symbols >= pivot
    words, length = _bit_array_to_words(mask)
    return words, length, symbols[~mask], symbols[mask]


# ----------------------------------------------------------------------
# Prepared batch rank/select over a packed word sequence + flat directory
# ----------------------------------------------------------------------
class _PackedDirectoryArrays:
    """Opaque numpy-backend handle behind the ``*_many_packed`` batch ops."""

    __slots__ = ("words", "pad_words", "inv_words", "length", "abs_cum", "zero_cum")

    def __init__(self, words, pad_words, inv_words, length, abs_cum, zero_cum):
        self.words = words
        self.pad_words = pad_words
        self.inv_words = inv_words
        self.length = length
        self.abs_cum = abs_cum
        self.zero_cum = zero_cum


def prepare_rank_select(
    words: Sequence[int],
    length: int,
    abs_cum: Sequence[int],
    zero_cum: Sequence[int],
):
    """Build the opaque array handle consumed by the ``*_many_packed`` ops.

    Precomputes the padded word array, the width-masked complement array
    (for zero-select) and ``int64`` views of the flat cumulatives, so each
    batch call is pure gathers.  Only valid with this backend; structures
    re-prepare when the active backend changes.
    """
    arr = _as_word_array(words)
    n = int(arr.size)
    pad = np.zeros(n + 1, dtype=np.uint64)
    pad[:n] = arr
    inv = np.invert(arr)
    if n and length < n * WORD:
        inv[n - 1] = np.uint64(
            invert_word(int(arr[n - 1]), length - ((n - 1) << 6))
        )
    return _PackedDirectoryArrays(
        arr,
        pad,
        inv,
        length,
        np.asarray(abs_cum, dtype=np.int64),
        np.asarray(zero_cum, dtype=np.int64),
    )


def _mirror(values, positions):
    """Return ``values`` as a list when the query container was a list."""
    if isinstance(positions, np.ndarray):
        return values
    return values.tolist()


def access_many_packed(handle, positions: Sequence[int]):
    """Bits at each of ``positions``: one gather + shift over the batch.

    Amortised O(1) per query with a constant ~10x below the python loop's;
    array in, array out (lists are mirrored back as lists).  The caller
    validates positions.
    """
    pos = np.asarray(positions, dtype=np.int64)
    off = (pos & 63).astype(np.uint64)
    bits = (handle.words[pos >> 6] >> (_SIXTY_THREE - off)) & np.uint64(1)
    return _mirror(bits.astype(np.int64), positions)


def rank_many_packed(handle, bit: int, positions: Sequence[int]):
    """``rank(bit, pos)`` at each position: one gather + masked popcount.

    Amortised O(1) per query -- cumulative gather plus one vectorised word
    popcount; array in, array out.  The caller validates positions.
    """
    pos = np.asarray(positions, dtype=np.int64)
    wi = pos >> 6
    off = (pos & 63).astype(np.uint64)
    shifted = handle.pad_words[wi] >> ((_SIXTY_FOUR - off) & _SIXTY_THREE)
    ones = handle.abs_cum[wi] + _popcount_array(shifted) * (off != 0)
    if bit:
        return _mirror(ones, positions)
    return _mirror(pos - ones, positions)


def select_many_packed(handle, bit: int, indexes: Sequence[int]):
    """``select(bit, idx)`` for each index, fully vectorised.

    One ``searchsorted`` over the flat cumulative locates every query's word
    at once (no pre-sorting needed -- every step is a gather), and the
    in-word finish is the vectorised byte-cumulative select of
    :func:`select_in_word_many`.  Amortised O(q log n) with C-level
    constants; input order is preserved.  The caller validates indexes.
    """
    idx = np.asarray(indexes, dtype=np.int64)
    cum = handle.abs_cum if bit else handle.zero_cum
    word_index = np.searchsorted(cum[:-1], idx, side="right") - 1
    rel = idx - cum[word_index]
    word_arr = (handle.words if bit else handle.inv_words)[word_index]
    offsets = _select_in_words_vec(word_arr, rel)
    return _mirror((word_index << 6) + offsets, indexes)
