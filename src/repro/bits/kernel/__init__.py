"""Word-level bit-operations kernel: a dispatching façade over two backends.

This package is the single place where in-word bit manipulation happens.  All
bitvector encodings (:mod:`repro.bitvector`), the Wavelet Tree and the Wavelet
Trie route their hot paths -- packing, rank directories, in-word select,
batched directory lookups -- through these primitives, so acceleration lands
here as a *backend* and the structures never change.

Two backends implement the contract (docs/ARCHITECTURE.md, "Kernel
backends"):

* ``python`` (:mod:`~repro.bits.kernel.pykernel`) -- pure stdlib, always
  available, the correctness oracle;
* ``numpy`` (:mod:`~repro.bits.kernel.npkernel`) -- vectorised over
  ``uint64`` word arrays; registered only when numpy imports.

Selection::

    from repro.bits import kernel
    kernel.use_backend("python")     # returns the previous backend name
    kernel.active_backend()          # -> "python" | "numpy"
    kernel.available_backends()      # -> ("python",) or ("python", "numpy")

or set the ``REPRO_KERNEL_BACKEND`` environment variable before import.  The
default is ``numpy`` when available, else ``python``; an unsatisfiable
request falls back to the default with a warning (import never fails).

Dispatch is at *call* time: functions whose implementations differ between
backends are thin wrappers reading the active backend, so ``use_backend``
affects every structure immediately, including modules that imported the
names with ``from repro.bits.kernel import ...``.  Scalar primitives that
both backends share by construction (``select_in_word``, ``pack_value``,
...) are re-exported from the python backend directly, with no dispatch
overhead.

Backend-native containers: bulk functions may return the backend's native
sequence type (python lists, or ``uint64``/``int64`` numpy arrays) and the
batch query functions mirror their input container.  A native array is only
valid with the backend that produced it; anything stored across calls must
be normalised with :func:`as_int_list`.
"""

from __future__ import annotations

import os
import warnings
from typing import Iterable, List, Sequence, Tuple

from repro.bits.kernel import npkernel, pykernel

# Shared scalar primitives and constants: identical in every backend by
# construction (the numpy backend re-exports these same objects), so they
# are bound directly with zero dispatch overhead.
from repro.bits.kernel.pykernel import (  # noqa: F401  (re-exported API)
    SUPERBLOCK_BITS,
    SUPERBLOCK_WORDS,
    WORD,
    WORD_MASK,
    broadword_iter_words,
    extract_bits_value,
    invert_word,
    iter_word_bits,
    pack_value,
    popcount_range,
    rank_word_prefix,
    select_bit_in_words,
    select_in_word,
    select_one_in_words,
    select_zero_in_word,
    unpack_value,
    words_to_int,
)

__all__ = list(pykernel.__all__) + [
    "KERNEL_CONTRACT",
    "use_backend",
    "active_backend",
    "available_backends",
    "as_int_list",
    "int_words_view",
]

#: Every public name a backend module must implement (the backend contract).
#: ``make docs-check`` fails when a backend misses one of these or when the
#: ARCHITECTURE.md contract table drifts from this list.
KERNEL_CONTRACT: Tuple[str, ...] = tuple(pykernel.__all__)

_KNOWN_BACKENDS: Tuple[str, ...] = ("python", "numpy")
_BACKENDS = {"python": pykernel}
if npkernel.HAVE_NUMPY:
    _BACKENDS["numpy"] = npkernel


def _resolve_default_backend(requested, available) -> Tuple[str, str]:
    """Pick the import-time backend; returns ``(name, warning)``.

    Pure helper (unit-tested directly): ``requested`` is the raw
    ``REPRO_KERNEL_BACKEND`` value or ``None``; ``available`` the registered
    backend names.  Unknown or unavailable requests fall back gracefully to
    the best available backend instead of failing the import.
    """
    default = "numpy" if "numpy" in available else "python"
    if not requested:
        return default, ""
    name = requested.strip().lower()
    if name not in _KNOWN_BACKENDS:
        return default, (
            f"REPRO_KERNEL_BACKEND={requested!r} is not a known kernel "
            f"backend (expected one of {_KNOWN_BACKENDS}); using {default!r}"
        )
    if name not in available:
        return default, (
            f"REPRO_KERNEL_BACKEND={requested!r} requested but numpy is not "
            f"installed; falling back to {default!r}"
        )
    return name, ""


_active_name, _warning = _resolve_default_backend(
    os.environ.get("REPRO_KERNEL_BACKEND"), _BACKENDS
)
if _warning:
    warnings.warn(_warning, RuntimeWarning, stacklevel=2)
_active = _BACKENDS[_active_name]


def use_backend(name: str) -> str:
    """Switch the active kernel backend; returns the previous backend's name.

    ``name`` must be ``"python"`` or ``"numpy"``.  Unknown names raise
    :class:`ValueError`; requesting ``"numpy"`` without numpy installed
    raises :class:`RuntimeError`.  The switch takes effect immediately for
    every dispatched kernel function (structures re-prepare their cached
    backend handles lazily).
    """
    global _active, _active_name
    if name not in _KNOWN_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {_KNOWN_BACKENDS}"
        )
    if name not in _BACKENDS:
        raise RuntimeError(
            f"kernel backend {name!r} is not available (numpy is not installed)"
        )
    previous = _active_name
    _active_name = name
    _active = _BACKENDS[name]
    return previous


def active_backend() -> str:
    """Name of the backend currently serving dispatched kernel calls."""
    return _active_name


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backends, ``"python"`` always first."""
    return tuple(sorted(_BACKENDS, key=_KNOWN_BACKENDS.index))


def as_int_list(sequence) -> List[int]:
    """Normalise a backend-native integer sequence to a list of python ints.

    Lists pass through unchanged (no copy); numpy arrays convert via
    ``tolist``.  Use this before *storing* a bulk-function result -- native
    arrays are only valid with the backend that produced them.
    """
    if type(sequence) is list:
        return sequence
    tolist = getattr(sequence, "tolist", None)
    if tolist is not None:
        return tolist()
    return [int(item) for item in sequence]


# ----------------------------------------------------------------------
# Dispatched contract functions (thin call-time wrappers; docstrings live
# on the backend implementations -- see pykernel for the reference text)
# ----------------------------------------------------------------------
def words_view(buffer):
    """Backend-native zero-copy word view of little-endian uint64 bytes."""
    return _active.words_view(buffer)


def int_words_view(buffer):
    """Portable int-yielding zero-copy word view of little-endian bytes.

    A façade-only helper (not part of the backend contract): always the
    python backend's ``memoryview``-based :func:`pykernel.words_view`,
    regardless of the active backend.  Indexing yields plain python ints, so
    the result is safe in every scalar word path under every backend, while
    the numpy backend's batch handles still wrap it without copying (its
    ``np.frombuffer`` fast path reinterprets the same mapped bytes).  Same
    aliasing and read-only rules as :func:`words_view`.
    """
    return pykernel.words_view(buffer)


def pack_bits(bits: Iterable[int]):
    """Pack an iterable of 0/1 values; returns ``(words, length)``."""
    return _active.pack_bits(bits)


def pack_iterable(bits: Iterable[int]):
    """Pack an iterable of 0/1 values; returns ``(words, length)``."""
    return _active.pack_iterable(bits)


def popcount_words(words: Sequence[int]) -> int:
    """Total set bits of a packed word sequence."""
    return _active.popcount_words(words)


def build_rank_directory(words: Sequence[int]):
    """Two-level rank directory ``(super_cum, word_pop, word_cum)``."""
    return _active.build_rank_directory(words)


def cumulative_popcounts(word_pop: bytes, length: int):
    """Flat per-word one/zero cumulatives ``(abs_cum, zero_cum)``."""
    return _active.cumulative_popcounts(word_pop, length)


def one_positions(words: Sequence[int]):
    """Ascending positions of all set bits of a packed word sequence."""
    return _active.one_positions(words)


def run_lengths_of_value(value: int, length: int):
    """Lengths of the maximal runs of an MSB-first payload."""
    return _active.run_lengths_of_value(value, length)


def runs_of_value(value: int, length: int):
    """Maximal ``(bit, length)`` runs of an MSB-first payload."""
    return _active.runs_of_value(value, length)


def runs_of_words(words: Sequence[int], length: int):
    """Maximal ``(bit, length)`` runs of a packed word sequence."""
    return _active.runs_of_words(words, length)


def delete_positions_from_runs(
    runs: Sequence[Tuple[int, int]], positions: Sequence[int]
):
    """Run surgery: drop sorted ``positions``; returns ``(kept_runs, deleted_bits)``."""
    return _active.delete_positions_from_runs(runs, positions)


def block_popcounts(words: Sequence[int], length: int, block_size: int):
    """Popcount of each ``block_size``-bit block of the top ``length`` bits."""
    return _active.block_popcounts(words, length, block_size)


def select_in_word_many(word: int, ks: Sequence[int]) -> List[int]:
    """Offsets of the ``ks[i]``-th set bits of one word, ``ks`` ascending."""
    return _active.select_in_word_many(word, ks)


def prepare_symbols(symbols: Sequence[int]):
    """Backend-native handle for a symbol sequence (wavelet builders)."""
    return _active.prepare_symbols(symbols)


def partition_by_pivot(symbols, pivot: int):
    """Branch bits + stable partition: ``(words, length, left, right)``."""
    return _active.partition_by_pivot(symbols, pivot)


def prepare_rank_select(
    words: Sequence[int],
    length: int,
    abs_cum: Sequence[int],
    zero_cum: Sequence[int],
):
    """Opaque handle for the ``*_many_packed`` batch query functions."""
    return _active.prepare_rank_select(words, length, abs_cum, zero_cum)


def access_many_packed(handle, positions: Sequence[int]):
    """Bits at each of ``positions`` via a prepared handle."""
    return _active.access_many_packed(handle, positions)


def rank_many_packed(handle, bit: int, positions: Sequence[int]):
    """``rank(bit, pos)`` at each of ``positions`` via a prepared handle."""
    return _active.rank_many_packed(handle, bit, positions)


def select_many_packed(handle, bit: int, indexes: Sequence[int]):
    """``select(bit, idx)`` for each index via a prepared handle."""
    return _active.select_many_packed(handle, bit, indexes)
