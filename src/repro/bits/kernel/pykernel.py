"""Pure-python backend of the word-level bit-operations kernel.

This module is the always-available, dependency-free implementation of the
kernel backend contract (see :mod:`repro.bits.kernel` and the "Kernel
backends" section of docs/ARCHITECTURE.md).  It is the correctness oracle:
the numpy backend (:mod:`repro.bits.kernel.npkernel`) must agree with it
bit-for-bit on every contract function, and the cross-backend differential
tests enforce that.  Structures never import this module directly -- they go
through the dispatching façade :mod:`repro.bits.kernel`.

Conventions
-----------
* Bits are MSB-first, matching :class:`~repro.bits.bitstring.Bits`: position
  ``i`` of a ``length``-bit payload ``value`` is ``(value >> (length - 1 - i))
  & 1``.
* A *packed word sequence* is a sequence of 64-bit integers; word ``w`` holds
  the bits of positions ``[w * 64, (w + 1) * 64)`` **left-aligned** (position
  ``w * 64`` is the word's most significant bit).  The final word is
  zero-padded on the right.  This backend produces plain lists of python
  ints; when a packed word sequence is serialised to bytes the words are
  big-endian (``struct`` format ``>Q``).
* Contract functions are pure: they never mutate their arguments and their
  returned containers are freshly allocated.  Opaque handles
  (:func:`prepare_rank_select`, :func:`prepare_symbols`) alias their inputs,
  so callers must not mutate a sequence after preparing a handle from it.

The kernel never scans bit by bit: the in-word ``select`` walks bytes through
a precomputed 256-entry table, bulk packing goes through
``int.to_bytes``/``struct`` in O(n / 8), and sequential iteration emits eight
bits per step from a byte-decode table.
"""

from __future__ import annotations

import struct
import sys
from bisect import bisect_right
from itertools import chain
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "WORD",
    "WORD_MASK",
    "SUPERBLOCK_WORDS",
    "SUPERBLOCK_BITS",
    "pack_value",
    "pack_iterable",
    "pack_bits",
    "words_to_int",
    "unpack_value",
    "words_view",
    "invert_word",
    "rank_word_prefix",
    "select_in_word",
    "select_in_word_many",
    "select_zero_in_word",
    "popcount_words",
    "popcount_range",
    "iter_word_bits",
    "broadword_iter_words",
    "build_rank_directory",
    "cumulative_popcounts",
    "extract_bits_value",
    "select_bit_in_words",
    "select_one_in_words",
    "one_positions",
    "run_lengths_of_value",
    "runs_of_value",
    "runs_of_words",
    "delete_positions_from_runs",
    "block_popcounts",
    "prepare_symbols",
    "partition_by_pivot",
    "prepare_rank_select",
    "access_many_packed",
    "rank_many_packed",
    "select_many_packed",
]

WORD = 64
WORD_MASK = (1 << WORD) - 1
SUPERBLOCK_WORDS = 8
SUPERBLOCK_BITS = WORD * SUPERBLOCK_WORDS

_BYTE_SHIFTS = (56, 48, 40, 32, 24, 16, 8, 0)


def _build_select_in_byte() -> bytes:
    """``table[byte * 8 + k]`` = MSB-first offset of the k-th set bit of ``byte``."""
    table = bytearray(256 * 8)
    for byte in range(256):
        k = 0
        for offset in range(8):
            if (byte >> (7 - offset)) & 1:
                table[byte * 8 + k] = offset
                k += 1
    return bytes(table)


# The 256-entry four-Russians tables: select-in-byte, the byte's bits decoded
# MSB-first, and the MSB-first offsets of its set bits.
_SELECT_IN_BYTE = _build_select_in_byte()
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple((byte >> (7 - i)) & 1 for i in range(8)) for byte in range(256)
)
_BYTE_ONES: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(i for i in range(8) if (byte >> (7 - i)) & 1) for byte in range(256)
)

# ----------------------------------------------------------------------
# Bulk packing (O(n / 8) via bytes, never repeated big-int shifts)
# ----------------------------------------------------------------------
def pack_value(value: int, length: int) -> List[int]:
    """Pack an MSB-first ``(value, length)`` payload into a left-aligned word list."""
    if length <= 0:
        return []
    n_words = (length + WORD - 1) >> 6
    raw = (value << (n_words * WORD - length)).to_bytes(n_words * 8, "big")
    return list(struct.unpack(f">{n_words}Q", raw))


def pack_iterable(bits: Iterable[int]) -> Tuple[List[int], int]:
    """Pack an iterable of 0/1 values; returns ``(words, length)``."""
    words: List[int] = []
    append = words.append
    word = 0
    filled = 0
    length = 0
    for bit in bits:
        word = (word << 1) | (1 if bit else 0)
        filled += 1
        if filled == WORD:
            append(word)
            length += WORD
            word = 0
            filled = 0
    if filled:
        append(word << (WORD - filled))
        length += filled
    return words, length


# Canonical dispatched name for bulk packing of an iterable of bits; the
# numpy backend overrides it with a vectorised implementation.
def pack_bits(bits: Iterable[int]) -> Tuple[List[int], int]:
    """Pack an iterable of 0/1 values; returns ``(words, length)``.

    Alias of :func:`pack_iterable` under the name the backend contract
    dispatches on; the numpy backend replaces it with ``np.packbits``.
    """
    return pack_iterable(bits)


def words_to_int(words: Sequence[int]) -> int:
    """Concatenate a word list into one big integer of ``64 * len(words)`` bits."""
    if len(words) == 0:
        return 0
    return int.from_bytes(struct.pack(f">{len(words)}Q", *words), "big")


def unpack_value(words: Sequence[int], length: int) -> int:
    """Inverse of :func:`pack_value`: recover the MSB-first payload integer."""
    if length <= 0:
        return 0
    return words_to_int(words) >> (len(words) * WORD - length)


def words_view(buffer):
    """Zero-copy read-only word view over little-endian uint64 bytes.

    ``buffer`` is any bytes-like object -- an ``mmap`` region, ``bytes``,
    ``bytearray`` or ``memoryview`` -- holding packed words serialised
    little-endian, eight bytes per word (the RWT2 frozen-image section
    layout; note this differs from the big-endian ``>Q`` convention of the
    RWT1 logical format).  Returns a read-only ``memoryview`` cast to 64-bit
    unsigned words: indexing yields plain python ints, so the view can stand
    in for a word list in every scalar kernel path without decoding.

    Aliasing rules: the view aliases ``buffer`` (and keeps it alive);
    callers must never mutate the underlying bytes while the view exists.
    On big-endian platforms the bytes cannot be reinterpreted in place, so
    this falls back to a one-time decoding copy (a tuple of ints).
    """
    view = memoryview(buffer)
    if view.nbytes % 8:
        raise ValueError(
            f"word buffer length {view.nbytes} is not a multiple of 8"
        )
    if not view.readonly:
        view = view.toreadonly()
    if sys.byteorder == "little":
        return view.cast("Q")
    count = view.nbytes // 8  # pragma: no cover - big-endian platforms only
    return struct.unpack(f"<{count}Q", view)


# ----------------------------------------------------------------------
# In-word primitives
# ----------------------------------------------------------------------
def invert_word(word: int, width: int = WORD) -> int:
    """Complement of the top ``width`` bits of a left-aligned 64-bit word.

    Bits past ``width`` come out zero, so a padded final word never leaks
    phantom zeros into ``select(0, .)``.
    """
    return (~word) & ((WORD_MASK << (WORD - width)) & WORD_MASK)


def rank_word_prefix(word: int, offset: int) -> int:
    """Ones among the top ``offset`` bits of a left-aligned 64-bit word."""
    if offset <= 0:
        return 0
    return (word >> (WORD - offset)).bit_count()


def select_in_word(word: int, k: int) -> int:
    """MSB-first offset of the ``k``-th (0-based) set bit of a 64-bit word.

    Binary descent by ``bit_count`` halves (64 -> 32 -> 16 -> 8) followed by
    one lookup in the 256-entry select table -- a fixed three branches plus a
    table hit, never a per-bit scan.
    """
    if not 0 <= k < word.bit_count():
        raise ValueError(f"word has fewer than {k + 1} set bits")
    half = word >> 32
    count = half.bit_count()
    if k < count:
        base = 0
    else:
        half = word & 0xFFFFFFFF
        k -= count
        base = 32
    quarter = half >> 16
    count = quarter.bit_count()
    if k >= count:
        quarter = half & 0xFFFF
        k -= count
        base += 16
    byte = quarter >> 8
    count = byte.bit_count()
    if k >= count:
        byte = quarter & 0xFF
        k -= count
        base += 8
    return base + _SELECT_IN_BYTE[(byte << 3) | k]


def select_in_word_many(word: int, ks: Sequence[int]) -> List[int]:
    """Offsets of the ``ks[i]``-th set bits of a 64-bit word, ``ks`` ascending.

    The sorted in-word multi-select primitive behind every ``select_many``
    batch path: one MSB-first byte walk answers the whole group, so ``q``
    queries landing in the same word cost O(8 + q) table hits instead of ``q``
    independent binary descents.  The caller guarantees ``ks`` is sorted and
    every ``k`` is below ``word.bit_count()``.
    """
    out: List[int] = []
    if not ks:
        return out
    table = _SELECT_IN_BYTE
    position = 0
    seen = 0
    total = len(ks)
    for shift in _BYTE_SHIFTS:
        byte = (word >> shift) & 0xFF
        count = byte.bit_count()
        while ks[position] < seen + count:
            out.append((56 - shift) + table[(byte << 3) | (ks[position] - seen)])
            position += 1
            if position == total:
                return out
        seen += count
    raise ValueError(
        f"word has fewer than {ks[position] + 1} set bits"
    )


def select_zero_in_word(word: int, k: int, width: int = WORD) -> int:
    """MSB-first offset of the ``k``-th zero among the top ``width`` bits."""
    return select_in_word(invert_word(word, width), k)


# ----------------------------------------------------------------------
# Ranged popcount and iteration over packed words
# ----------------------------------------------------------------------
def popcount_words(words: Sequence[int]) -> int:
    """Total set bits of a packed word list."""
    return sum(word.bit_count() for word in words)


def popcount_range(words: Sequence[int], start: int, stop: int) -> int:
    """Set bits among positions ``[start, stop)`` of a packed word list."""
    if start >= stop:
        return 0
    first, head = divmod(start, WORD)
    last, tail = divmod(stop, WORD)
    if first == last:
        chunk = (words[first] >> (WORD - tail)) & ((1 << (tail - head)) - 1)
        return chunk.bit_count()
    total = ((words[first] << head) & WORD_MASK).bit_count()
    for index in range(first + 1, last):
        total += words[index].bit_count()
    if tail:
        total += (words[last] >> (WORD - tail)).bit_count()
    return total


def iter_word_bits(word: int, start: int, stop: int) -> Iterator[int]:
    """Yield bits ``[start, stop)`` (MSB-first offsets) of one 64-bit word.

    Emits eight bits per step through the byte-decode table once aligned.
    """
    decode = _BYTE_BITS
    pos = start
    while pos < stop and pos & 7:
        yield (word >> (WORD - 1 - pos)) & 1
        pos += 1
    while stop - pos >= 8:
        yield from decode[(word >> (56 - pos)) & 0xFF]
        pos += 8
    while pos < stop:
        yield (word >> (WORD - 1 - pos)) & 1
        pos += 1


def broadword_iter_words(
    words: Sequence[int], start: int, stop: int
) -> Iterator[int]:
    """Iterate bits ``[start, stop)`` of a packed word list at C speed.

    The covering words are flattened once into a byte string (O(span / 8) via
    ``struct``); the result is then ``chain.from_iterable`` over byte-decode
    table lookups, so per-bit iteration never re-enters a Python frame --
    only one table lookup runs per *byte*, and the unaligned head and tail
    are tuple slices.
    """
    if start >= stop:
        return iter(())
    first_word = start >> 6
    end_word = (stop + WORD - 1) >> 6
    raw = struct.pack(
        f">{end_word - first_word}Q", *words[first_word:end_word]
    )
    base = first_word << 6
    rel_start = start - base
    rel_stop = stop - base
    decode = _BYTE_BITS
    head_stop = min(rel_stop, (rel_start + 7) & ~7)
    parts = []
    if rel_start < head_stop:
        in_byte = rel_start & 7
        parts.append(
            decode[raw[rel_start >> 3]][in_byte : in_byte + head_stop - rel_start]
        )
    if head_stop < rel_stop:
        parts.append(
            chain.from_iterable(
                map(decode.__getitem__, raw[head_stop >> 3 : rel_stop >> 3])
            )
        )
        if rel_stop & 7:
            parts.append(decode[raw[rel_stop >> 3]][: rel_stop & 7])
    return chain.from_iterable(parts)


# ----------------------------------------------------------------------
# Two-level rank directory (superblock cumulative counts + per-word bytes)
# ----------------------------------------------------------------------
def build_rank_directory(
    words: Sequence[int],
) -> Tuple[List[int], bytes, List[int]]:
    """Build the two-level rank directory of a packed word list.

    Returns ``(super_cum, word_pop, word_cum)``:

    * ``super_cum[s]`` -- ones before superblock ``s`` (8 words each), with a
      final sentinel holding the total popcount;
    * ``word_pop`` -- per-word popcounts as raw bytes (each fits in 6 bits);
    * ``word_cum[w]`` -- ones within ``w``'s superblock before word ``w``,
      with one trailing sentinel so ``rank(length)`` needs no special case.
    """
    word_pop = bytes(word.bit_count() for word in words)
    super_cum: List[int] = []
    word_cum: List[int] = []
    cum = 0
    within = 0
    for index, pop in enumerate(word_pop):
        if index % SUPERBLOCK_WORDS == 0:
            super_cum.append(cum)
            within = 0
        word_cum.append(within)
        within += pop
        cum += pop
    super_cum.append(cum)
    word_cum.append(0 if len(words) % SUPERBLOCK_WORDS == 0 else within)
    return super_cum, word_pop, word_cum


def select_one_in_words(
    words: Sequence[int], super_cum: Sequence[int], word_pop: bytes, idx: int
) -> int:
    """Position of the ``idx``-th set bit, via the two-level directory.

    Binary search over superblocks, at most 8 per-word byte skips, then one
    :func:`select_in_word`.  The caller guarantees ``idx`` is in range.
    """
    sb = bisect_right(super_cum, idx) - 1
    seen = super_cum[sb]
    index = sb * SUPERBLOCK_WORDS
    while True:
        count = word_pop[index]
        if seen + count > idx:
            return index * WORD + select_in_word(words[index], idx - seen)
        seen += count
        index += 1


def select_bit_in_words(
    words: Sequence[int], length: int, bit: int, idx: int
) -> int:
    """Position of the ``idx``-th ``bit`` among the top ``length`` bits.

    Directory-free select over a zero-padded packed word list: a linear word
    scan of popcounts plus one table-driven in-word select, O(length / w).
    The zero padding past ``length`` never surfaces in zero-selects.  Used
    where payloads are too short-lived for a rank directory (mutable
    buffers, in-flight freeze stages); the caller guarantees ``idx`` is in
    range.
    """
    remaining = idx
    for word_index, word in enumerate(words):
        width = min(WORD, length - (word_index << 6))
        ones = rank_word_prefix(word, width)
        in_word = ones if bit else width - ones
        if remaining < in_word:
            target = word if bit else invert_word(word, width)
            return (word_index << 6) + select_in_word(target, remaining)
        remaining -= in_word
    raise ValueError(f"word list has fewer than {idx + 1} {bit}-bits")


# ----------------------------------------------------------------------
# Bulk extraction
# ----------------------------------------------------------------------
def extract_bits_value(words: Sequence[int], start: int, stop: int) -> int:
    """The bits ``[start, stop)`` of a packed word list as an MSB-first integer.

    Spans of up to two words (every fixed-size block extraction) cost O(1)
    small-int operations; longer spans fall back to one bulk conversion.
    """
    width = stop - start
    if width <= 0:
        return 0
    first, offset = divmod(start, WORD)
    end_word = (stop + WORD - 1) >> 6
    if end_word - first <= 2:
        span = words[first] << WORD
        if end_word - first == 2:
            span |= words[first + 1]
        return (span >> (2 * WORD - offset - width)) & ((1 << width) - 1)
    span = words_to_int(words[first:end_word])
    return (span >> ((end_word - first) * WORD - offset - width)) & (
        (1 << width) - 1
    )


def one_positions(words: Sequence[int]) -> List[int]:
    """Ascending positions of all set bits, byte-table driven."""
    out: List[int] = []
    ones_of = _BYTE_ONES
    base = 0
    for word in words:
        if word:
            byte_base = base
            for shift in _BYTE_SHIFTS:
                byte = (word >> shift) & 0xFF
                if byte:
                    for offset in ones_of[byte]:
                        out.append(byte_base + offset)
                byte_base += 8
        base += WORD
    return out


def run_lengths_of_value(value: int, length: int) -> List[int]:
    """Lengths of the maximal runs of an MSB-first ``(value, length)`` payload.

    Word-parallel: the boundaries between runs are exactly the set bits of
    ``value ^ (value << 1)`` (each marks a position whose bit differs from its
    predecessor), extracted bytewise instead of comparing bit by bit.
    """
    if length <= 0:
        return []
    boundaries = (value ^ (value << 1)) & ((1 << length) - 1)
    marks = one_positions(pack_value(boundaries, length))
    lengths: List[int] = []
    previous = 0
    for mark in marks:
        boundary = mark + 1
        lengths.append(boundary - previous)
        previous = boundary
    if previous < length:
        lengths.append(length - previous)
    return lengths


def runs_of_value(value: int, length: int) -> List[Tuple[int, int]]:
    """The maximal ``(bit, length)`` runs of an MSB-first payload, in order.

    Word-parallel companion of :func:`run_lengths_of_value`: runs strictly
    alternate, so only the first bit needs to be read -- the rest follow.
    This is the bulk-construction primitive of the dynamic RLE bitvector
    (paper ``Init``/bulk ``Append``): O(n / 8) byte-table work instead of one
    Python-level comparison per bit.
    """
    if length <= 0:
        return []
    bit = (value >> (length - 1)) & 1
    runs: List[Tuple[int, int]] = []
    for run_length in run_lengths_of_value(value, length):
        runs.append((bit, run_length))
        bit ^= 1
    return runs


def runs_of_words(words: Sequence[int], length: int) -> List[Tuple[int, int]]:
    """The maximal ``(bit, length)`` runs of a packed word sequence, in order.

    Word-sequence twin of :func:`runs_of_value`, so callers that already hold
    packed words (bulk RLE construction) never round-trip through a per-bit
    scan.
    """
    if length <= 0:
        return []
    return runs_of_value(unpack_value(words, length), length)


def delete_positions_from_runs(
    runs: Sequence[Tuple[int, int]], positions: Sequence[int]
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Remove the bits at sorted ``positions`` from a ``(bit, length)`` run list.

    Returns ``(kept_runs, deleted_bits)``: the surviving runs -- normalised,
    with empty runs dropped and adjacent equal-bit runs coalesced -- and the
    value of every deleted bit, in position order.  ``positions`` must be
    strictly increasing and within the run list's total length (a position
    past the end raises :class:`ValueError`).  This is the O(r + k) run
    surgery behind the dynamic RLE bitvector's bulk ``delete_many``: one
    linear pass over the runs instead of ``k`` tree deletions.
    """
    deleted: List[int] = []
    kept: List[Tuple[int, int]] = []
    total = len(positions)
    at = 0
    end = 0
    for bit, length in runs:
        end += length
        removed = 0
        while at < total and positions[at] < end:
            deleted.append(bit)
            removed += 1
            at += 1
        new_length = length - removed
        if new_length:
            if kept and kept[-1][0] == bit:
                kept[-1] = (bit, kept[-1][1] + new_length)
            else:
                kept.append((bit, new_length))
    if at < total:
        raise ValueError(
            f"position {positions[at]} out of range for run length {end}"
        )
    return kept, deleted


# ----------------------------------------------------------------------
# Directory-derived cumulatives and block popcounts
# ----------------------------------------------------------------------
def cumulative_popcounts(
    word_pop: bytes, length: int
) -> Tuple[List[int], List[int]]:
    """Flat per-word absolute cumulatives from per-word popcount bytes.

    Returns ``(abs_cum, zero_cum)``: ``abs_cum[w]`` is the number of ones
    before word ``w`` (with a final sentinel holding the total) and
    ``zero_cum[w]`` the number of zeros before it, where the final sentinel
    counts only the ``length`` payload bits -- zero padding in the last word
    never surfaces as zeros.  These are the flat directories behind the
    batched rank/select paths.
    """
    abs_cum: List[int] = []
    append = abs_cum.append
    cum = 0
    for pop in word_pop:
        append(cum)
        cum += pop
    append(cum)
    zero_cum = [(index << 6) - ones for index, ones in enumerate(abs_cum)]
    zero_cum[-1] = length - cum
    return abs_cum, zero_cum


def block_popcounts(
    words: Sequence[int], length: int, block_size: int
) -> List[int]:
    """Popcount of each ``block_size``-bit block of the top ``length`` bits.

    The final partial block (if any) is zero-padded, matching the RRR
    encoder's block layout; this is the bulk class-computation primitive of
    RRR construction.
    """
    if length <= 0:
        return []
    out: List[int] = []
    append = out.append
    for start in range(0, length, block_size):
        stop = min(start + block_size, length)
        append(extract_bits_value(words, start, stop).bit_count())
    return out


# ----------------------------------------------------------------------
# Wavelet construction primitives
# ----------------------------------------------------------------------
def prepare_symbols(symbols: Sequence[int]):
    """Backend-native handle for a symbol sequence fed to wavelet builders.

    The python backend works on plain lists; the numpy backend converts to an
    ``int64`` array once so every :func:`partition_by_pivot` level is
    vectorised.  Handles are opaque and only valid with the backend that
    created them.
    """
    if type(symbols) is list:
        return symbols
    return list(symbols)


def partition_by_pivot(symbols, pivot: int):
    """One wavelet-node build step: branch bits plus a stable partition.

    Returns ``(words, length, left, right)`` where ``words``/``length`` pack
    the MSB-first branch bits (``1`` iff ``symbol >= pivot``) and
    ``left``/``right`` are backend-native handles (see
    :func:`prepare_symbols`) of the stable sub-partitions.  This is the
    whole-node construction primitive of the static wavelet structures: one
    pass over the node's subsequence, no per-element recursion.
    """
    words, length = pack_iterable(
        1 if symbol >= pivot else 0 for symbol in symbols
    )
    left = [symbol for symbol in symbols if symbol < pivot]
    right = [symbol for symbol in symbols if symbol >= pivot]
    return words, length, left, right


# ----------------------------------------------------------------------
# Prepared batch rank/select over a packed word sequence + flat directory
# ----------------------------------------------------------------------
class _PackedDirectory:
    """Opaque python-backend handle behind the ``*_many_packed`` batch ops."""

    __slots__ = ("words", "pad_words", "length", "abs_cum", "zero_cum")

    def __init__(self, words, pad_words, length, abs_cum, zero_cum) -> None:
        self.words = words
        self.pad_words = pad_words
        self.length = length
        self.abs_cum = abs_cum
        self.zero_cum = zero_cum


def prepare_rank_select(
    words: Sequence[int],
    length: int,
    abs_cum: Sequence[int],
    zero_cum: Sequence[int],
):
    """Build the opaque handle consumed by the ``*_many_packed`` batch ops.

    ``abs_cum``/``zero_cum`` are the flat cumulatives of
    :func:`cumulative_popcounts`.  The handle aliases its inputs (purity
    rule: do not mutate them afterwards) and is only valid with the backend
    that created it -- structures re-prepare when the active backend changes.
    """
    pad_words = list(words)
    pad_words.append(0)
    return _PackedDirectory(words, pad_words, length, abs_cum, zero_cum)


def _plain_ints(queries) -> Sequence[int]:
    """Plain-int view of a query batch: numpy scalars would overflow when
    mixed with >63-bit word values, so foreign containers are converted."""
    if isinstance(queries, (list, tuple)):
        return queries
    tolist = getattr(queries, "tolist", None)
    return tolist() if tolist is not None else [int(q) for q in queries]


def access_many_packed(handle, positions: Sequence[int]) -> List[int]:
    """Bits at each of ``positions`` via a prepared handle.

    Amortised O(1) per query: attribute lookups are hoisted out of one list
    comprehension over direct word probes.  The caller validates positions;
    the result is always a plain list (this backend's native container).
    """
    positions = _plain_ints(positions)
    words = handle.words
    return [
        (words[pos >> 6] >> (WORD - 1 - (pos & 63))) & 1 for pos in positions
    ]


def rank_many_packed(handle, bit: int, positions: Sequence[int]) -> List[int]:
    """``rank(bit, pos)`` at each of ``positions`` via a prepared handle.

    Amortised O(1) per query: one flat cumulative lookup plus one shifted
    popcount inside a single list comprehension.  The caller validates
    positions; the result is always a plain list.
    """
    positions = _plain_ints(positions)
    words = handle.pad_words
    abs_cum = handle.abs_cum
    if bit:
        return [
            abs_cum[index := pos >> 6]
            + (words[index] >> (WORD - (pos & 63))).bit_count()
            for pos in positions
        ]
    return [
        pos
        - abs_cum[index := pos >> 6]
        - (words[index] >> (WORD - (pos & 63))).bit_count()
        for pos in positions
    ]


def select_many_packed(handle, bit: int, indexes: Sequence[int]) -> List[int]:
    """``select(bit, idx)`` for each index via a prepared handle, batch-amortised.

    The indexes are sorted once; the flat directory is then walked
    monotonically (each ``bisect`` resumes from the previous word) and all
    queries landing in the same word are answered by one pass of the sorted
    in-word multi-select.  Amortised O(q log q) for the sort plus
    O(log n + q) directory work.  The caller validates indexes; input order
    is preserved in the result, which is always a plain list.
    """
    indexes = _plain_ints(indexes)
    cum = handle.abs_cum if bit else handle.zero_cum
    total = cum[-1]
    order = sorted(range(len(indexes)), key=indexes.__getitem__)
    out = [0] * len(indexes)
    words = handle.words
    last_word = len(words) - 1
    n_queries = len(order)
    word_index = 0
    at = 0
    while at < n_queries:
        idx = indexes[order[at]]
        word_index = bisect_right(cum, idx, word_index) - 1
        upper = cum[word_index + 1] if word_index + 1 < len(cum) else total
        group_end = at + 1
        while group_end < n_queries and indexes[order[group_end]] < upper:
            group_end += 1
        word = words[word_index]
        if not bit:
            if word_index != last_word:
                word = ~word & WORD_MASK
            else:
                word = invert_word(word, handle.length - (word_index << 6))
        base = word_index << 6
        seen = cum[word_index]
        offsets = select_in_word_many(
            word, [indexes[order[i]] - seen for i in range(at, group_end)]
        )
        for i, offset in zip(range(at, group_end), offsets):
            out[order[i]] = base + offset
        at = group_end
    return out
