"""Fixed-width packed integer vectors.

:class:`PackedIntVector` stores ``n`` integers of ``width`` bits each in a
contiguous bit payload, giving ``n * width`` bits of storage plus O(1) words
of bookkeeping.  It is used for RRR class arrays, sampled rank/select
directories and DFUDS auxiliary arrays.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.exceptions import OutOfBoundsError

__all__ = ["PackedIntVector"]

_WORD = 64


class PackedIntVector:
    """A static array of fixed-width unsigned integers packed into words."""

    __slots__ = ("_width", "_length", "_words")

    def __init__(self, width: int, values: Iterable[int] = ()) -> None:
        if width < 0 or width > _WORD:
            raise ValueError("width must be between 0 and 64")
        self._width = width
        self._length = 0
        self._words: List[int] = []
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    def __len__(self) -> int:
        return self._length

    def append(self, value: int) -> None:
        """Append one value (used only at construction time)."""
        width = self._width
        if value < 0 or (width < _WORD and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        if width == 0:
            self._length += 1
            return
        bit_pos = self._length * width
        word_index, offset = divmod(bit_pos, _WORD)
        while len(self._words) <= (bit_pos + width - 1) // _WORD:
            self._words.append(0)
        # Write the value across at most two words, LSB-packed.
        self._words[word_index] |= (value << offset) & ((1 << _WORD) - 1)
        spill = offset + width - _WORD
        if spill > 0:
            self._words[word_index + 1] |= value >> (width - spill)
        self._length += 1

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise OutOfBoundsError(
                f"index {index} out of range for length {self._length}"
            )
        width = self._width
        if width == 0:
            return 0
        bit_pos = index * width
        word_index, offset = divmod(bit_pos, _WORD)
        value = self._words[word_index] >> offset
        spill = offset + width - _WORD
        if spill > 0:
            value |= self._words[word_index + 1] << (width - spill)
        return value & ((1 << width) - 1)

    def __iter__(self) -> Iterator[int]:
        for index in range(self._length):
            yield self[index]

    def to_list(self) -> List[int]:
        """Render as a plain Python list."""
        return list(self)

    def size_in_bits(self) -> int:
        """Bits used by the packed payload (excluding Python object overhead)."""
        return len(self._words) * _WORD

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "PackedIntVector":
        """Build with the minimal width that fits ``max(values)``."""
        width = max((int(v).bit_length() for v in values), default=0)
        return cls(width, values)

    @classmethod
    def from_words(
        cls, width: int, length: int, words: Sequence[int]
    ) -> "PackedIntVector":
        """Wrap an existing LSB-packed word sequence without copying.

        ``words`` may be a list or a read-only frozen-image word view; the
        vector aliases it, so the caller must not mutate it afterwards and
        :meth:`append` must not be used on the result.
        """
        if width < 0 or width > _WORD:
            raise ValueError("width must be between 0 and 64")
        self = cls.__new__(cls)
        self._width = width
        self._length = length
        self._words = words
        return self

    def __repr__(self) -> str:
        return (
            f"PackedIntVector(width={self._width}, length={self._length})"
        )
