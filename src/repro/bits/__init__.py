"""Bit-level primitives used by every succinct structure in the package.

The module exposes:

* :class:`~repro.bits.bitstring.Bits` -- an immutable bit-string value type
  used to represent binarised strings, trie labels and bitvector payloads;
* :class:`~repro.bits.bitbuffer.BitBuffer` -- an appendable, mutable bit
  buffer used while constructing encodings;
* :class:`~repro.bits.codes.BitWriter` / :class:`~repro.bits.codes.BitReader`
  and the Elias unary/gamma/delta and fixed-width codecs;
* :class:`~repro.bits.packed.PackedIntVector` -- a fixed-width packed integer
  array with O(1) random access;
* :mod:`~repro.bits.kernel` -- the word-level bit-operations kernel, a
  dispatching façade over a pure-python backend and an optional
  numpy-accelerated backend (``use_backend`` / ``REPRO_KERNEL_BACKEND``).

Performance architecture
------------------------
All hot-path bit manipulation funnels through :mod:`repro.bits.kernel`,
word-level primitives behind a documented backend contract:

* **Packing**: payloads move between big integers, iterables and left-aligned
  64-bit word lists in O(n / 8) via ``int.to_bytes``/``struct`` -- never by
  repeated big-integer shifts (:func:`~repro.bits.kernel.pack_value`,
  :func:`~repro.bits.kernel.pack_iterable`).
* **In-word queries**: ``select`` inside a word descends by ``bit_count``
  halves and finishes in one lookup of a precomputed 256-entry table
  (:func:`~repro.bits.kernel.select_in_word`); ranks use a single shifted
  ``bit_count`` (:func:`~repro.bits.kernel.rank_word_prefix`).  No query path
  scans bit by bit.
* **Directories**: :func:`~repro.bits.kernel.build_rank_directory` produces
  the two-level superblock/word layout every bitvector shares: cumulative
  counts per 8-word superblock plus per-word popcount bytes.
* **Sequential decoding**: :func:`~repro.bits.kernel.broadword_iter_words`
  and :func:`~repro.bits.kernel.iter_word_bits` emit eight bits per step from
  a byte-decode table; :func:`~repro.bits.kernel.one_positions` and
  :func:`~repro.bits.kernel.run_lengths_of_value` bulk-extract set-bit
  positions and maximal runs word-parallel.

Every bitvector encoding, the Wavelet Tree and the Wavelet Trie route their
rank/select/access/iteration through these primitives, so acceleration lands
as a kernel *backend* and speeds up the whole package: the numpy backend
(:mod:`repro.bits.kernel.npkernel`) vectorises packing, directory builds and
the batched ``*_many_packed`` paths over ``uint64`` word arrays, and a
future C/SIMD backend plugs in the same way (docs/ARCHITECTURE.md, "Kernel
backends").
"""

from repro.bits import kernel
from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bits.codes import (
    BitReader,
    BitWriter,
    decode_delta,
    decode_gamma,
    decode_unary,
    encode_delta,
    encode_gamma,
    encode_unary,
)
from repro.bits.packed import PackedIntVector

__all__ = [
    "BitBuffer",
    "BitReader",
    "BitWriter",
    "Bits",
    "PackedIntVector",
    "decode_delta",
    "decode_gamma",
    "decode_unary",
    "encode_delta",
    "encode_gamma",
    "encode_unary",
    "kernel",
]
