"""Bit-level primitives used by every succinct structure in the package.

The module exposes:

* :class:`~repro.bits.bitstring.Bits` -- an immutable bit-string value type
  used to represent binarised strings, trie labels and bitvector payloads;
* :class:`~repro.bits.bitbuffer.BitBuffer` -- an appendable, mutable bit
  buffer used while constructing encodings;
* :class:`~repro.bits.codes.BitWriter` / :class:`~repro.bits.codes.BitReader`
  and the Elias unary/gamma/delta and fixed-width codecs;
* :class:`~repro.bits.packed.PackedIntVector` -- a fixed-width packed integer
  array with O(1) random access.
"""

from repro.bits.bitbuffer import BitBuffer
from repro.bits.bitstring import Bits
from repro.bits.codes import (
    BitReader,
    BitWriter,
    decode_delta,
    decode_gamma,
    decode_unary,
    encode_delta,
    encode_gamma,
    encode_unary,
)
from repro.bits.packed import PackedIntVector

__all__ = [
    "BitBuffer",
    "BitReader",
    "BitWriter",
    "Bits",
    "PackedIntVector",
    "decode_delta",
    "decode_gamma",
    "decode_unary",
    "encode_delta",
    "encode_gamma",
    "encode_unary",
]
