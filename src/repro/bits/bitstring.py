"""An immutable bit-string value type.

:class:`Bits` is the currency of the whole package: binarised strings, Patricia
trie labels, prefixes and bitvector payloads are all ``Bits`` values.  A
``Bits`` object stores its payload as a single Python integer together with an
explicit length, so that slicing, concatenation and longest-common-prefix
computations are performed with big-integer arithmetic (word-parallel in
CPython) instead of per-bit Python loops.

Bit order convention
--------------------
Bit ``0`` is the *most significant* bit of the backing integer, i.e. the bits
read left-to-right exactly as they are written in the paper:
``Bits.from_string("0100")[0] == 0`` and ``[1] == 1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.bits.kernel import pack_bits, unpack_value
from repro.exceptions import OutOfBoundsError

__all__ = ["Bits"]


class Bits:
    """Immutable sequence of bits backed by ``(int value, int length)``.

    Parameters
    ----------
    value:
        Non-negative integer whose ``length`` low-order bits are the payload.
        Bit ``i`` of the bit-string (0-based, left to right) is
        ``(value >> (length - 1 - i)) & 1``.
    length:
        Number of bits.  ``length == 0`` is the empty bit-string.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise ValueError("Bits length must be non-negative")
        if value < 0:
            raise ValueError("Bits value must be non-negative")
        if value >> length:
            raise ValueError(
                f"value {value} does not fit in {length} bits"
            )
        self._value = value
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Bits":
        """Return the empty bit-string."""
        return _EMPTY

    @classmethod
    def from_iterable(cls, bits: Iterable[int]) -> "Bits":
        """Build from an iterable of 0/1 integers (or booleans).

        Delegates to the kernel backend's bulk packer (``np.packbits`` under
        the numpy backend, the chunked word packer otherwise), so
        construction is O(n); the naive approach (shifting one growing big
        integer per bit) is O(n^2) in big-integer word operations.
        """
        words, length = pack_bits(bits)
        return cls(unpack_value(words, length), length)

    @classmethod
    def from_string(cls, text: str) -> "Bits":
        """Build from a string of ``'0'``/``'1'`` characters.

        Spaces and underscores are ignored so long literals can be grouped.
        """
        cleaned = text.replace(" ", "").replace("_", "")
        if cleaned and set(cleaned) - {"0", "1"}:
            raise ValueError(f"invalid bit characters in {text!r}")
        if not cleaned:
            return _EMPTY
        return cls(int(cleaned, 2), len(cleaned))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bits":
        """Build from raw bytes, 8 bits per byte, first byte first."""
        return cls(int.from_bytes(data, "big"), 8 * len(data)) if data else _EMPTY

    @classmethod
    def from_int(cls, value: int, width: int) -> "Bits":
        """Build the ``width``-bit big-endian representation of ``value``."""
        return cls(value, width)

    @classmethod
    def zeros(cls, length: int) -> "Bits":
        """A run of ``length`` zero bits."""
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "Bits":
        """A run of ``length`` one bits."""
        return cls((1 << length) - 1, length)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """The backing integer (the bits read as a big-endian number)."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[int]:
        value, length = self._value, self._length
        for shift in range(length - 1, -1, -1):
            yield (value >> shift) & 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                return Bits.from_iterable(
                    self[i] for i in range(start, stop, step)
                )
            return self.slice(start, stop)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise OutOfBoundsError(
                f"bit index {index} out of range for length {self._length}"
            )
        return (self._value >> (self._length - 1 - index)) & 1

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self._length == other._length and self._value == other._value

    def __lt__(self, other: "Bits") -> bool:
        """Lexicographic comparison (a proper prefix sorts first)."""
        if not isinstance(other, Bits):
            return NotImplemented
        common = min(self._length, other._length)
        a = self._value >> (self._length - common) if self._length else 0
        b = other._value >> (other._length - common) if other._length else 0
        if a != b:
            return a < b
        return self._length < other._length

    def __le__(self, other: "Bits") -> bool:
        return self == other or self < other

    def __gt__(self, other: "Bits") -> bool:
        return not self <= other

    def __ge__(self, other: "Bits") -> bool:
        return not self < other

    def __add__(self, other: "Bits") -> "Bits":
        """Concatenation."""
        if not isinstance(other, Bits):
            return NotImplemented
        return Bits(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __repr__(self) -> str:
        return f"Bits('{self.to01()}')"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def to01(self) -> str:
        """Render as a string of ``'0'``/``'1'`` characters."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def to_tuple(self) -> Tuple[int, ...]:
        """Render as a tuple of integers."""
        return tuple(self)

    def to_bytes(self) -> bytes:
        """Render as bytes; the length must be a multiple of 8."""
        if self._length % 8:
            raise ValueError("Bits length is not a multiple of 8")
        return self._value.to_bytes(self._length // 8, "big")

    def popcount(self) -> int:
        """Number of 1 bits."""
        return self._value.bit_count()

    def count(self, bit: int) -> int:
        """Number of occurrences of ``bit`` (0 or 1)."""
        ones = self._value.bit_count()
        return ones if bit else self._length - ones

    def slice(self, start: int, stop: int) -> "Bits":
        """Return the sub-bit-string ``self[start:stop]`` (O(1) big-int ops)."""
        start = max(0, min(start, self._length))
        stop = max(start, min(stop, self._length))
        width = stop - start
        if width == 0:
            return _EMPTY
        shifted = self._value >> (self._length - stop)
        return Bits(shifted & ((1 << width) - 1), width)

    def prefix(self, k: int) -> "Bits":
        """The first ``k`` bits."""
        return self.slice(0, k)

    def suffix_from(self, k: int) -> "Bits":
        """The bits from position ``k`` to the end."""
        return self.slice(k, self._length)

    def startswith(self, prefix: "Bits") -> bool:
        """True if ``prefix`` is a (possibly equal) prefix of this value."""
        if prefix._length > self._length:
            return False
        return (self._value >> (self._length - prefix._length)) == prefix._value \
            if prefix._length else True

    def lcp_length(self, other: "Bits") -> int:
        """Length of the longest common prefix with ``other``."""
        common = min(self._length, other._length)
        if common == 0:
            return 0
        a = self._value >> (self._length - common)
        b = other._value >> (other._length - common)
        diff = a ^ b
        if diff == 0:
            return common
        return common - diff.bit_length()

    def bit_at(self, index: int) -> int:
        """Alias of ``self[index]`` for readability in algorithmic code."""
        return self[index]

    def appended(self, bit: int) -> "Bits":
        """Return a new value with ``bit`` appended at the end."""
        return Bits((self._value << 1) | (1 if bit else 0), self._length + 1)


_EMPTY = Bits(0, 0)
