"""The asyncio index server: transports, dispatch, and lifecycle.

Two layers live here:

* :class:`FrameServer` -- the transport machinery shared by every serving
  front end (the single-process :class:`IndexServer` below and the
  multi-process :class:`~repro.serving.cluster.ClusterSupervisor`): a
  **unix socket** speaking raw NDJSON and **localhost HTTP/1.1**
  (``GET /stats`` / ``GET /ping`` for admin, ``POST /query`` with an NDJSON
  body).  The NDJSON handler is *pipelined*: it keeps reading frames while
  earlier ones are still being answered (bounded by
  ``ServerConfig.pipeline_depth``) and writes responses strictly in request
  order, so one connection can feed a whole coalescing tick.
* :class:`IndexServer` -- the single-process server: one or more named
  shards (each a :class:`~repro.db.column.CompressedColumn` behind an
  :class:`~repro.serving.shard.IndexShard`), requests routed by the frame's
  ``shard`` field.

A graceful ``stop`` closes the listeners, lets every queued request finish
(the subclass ``_drain`` hook), answers anything submitted after the stop
with a ``shutting_down`` error, then disconnects lingering idle clients.

:class:`NDJSONClient` is the matching client used by the test harness, the
benchmark, the CLI and the cluster supervisor.  It supports **bounded
pipelining**: up to ``max_inflight`` frames may be outstanding on one
connection, responses correlate to requests strictly FIFO (the server
answers in order per connection), so a single client can exercise the
server's per-(op, key) coalescing width.
"""

from __future__ import annotations

import asyncio
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple, Union

from repro.db.column import CompressedColumn
from repro.serving.faults import FaultInjector
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    ADMIN_OPS,
    DEFAULT_MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    decode_frame,
    encode_error,
    encode_result,
)
from repro.serving.shard import IndexShard

__all__ = ["FrameServer", "IndexServer", "NDJSONClient", "ServerConfig"]

_HTTP_BODY_LIMIT = 1 << 24  # 16 MiB of NDJSON per POST /query call


@dataclass
class ServerConfig:
    """Tunables for a :class:`FrameServer` (all transports optional)."""

    unix_path: Optional[str] = None
    http_host: str = "127.0.0.1"
    http_port: Optional[int] = None  # None: no HTTP; 0: ephemeral port
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    coalesce: bool = True
    coalesce_window: int = 4  # loop turns the pump waits for a wider batch
    max_pending: int = 1024
    request_timeout: Optional[float] = None
    compact_budget: Optional[int] = None
    pipeline_depth: int = 32  # frames one connection may have in flight


class FrameServer:
    """Transport + lifecycle shared by the serving front ends.

    Subclasses implement :meth:`dispatch` (answer one validated request with
    one response frame) and :meth:`stats` (the ``GET /stats`` payload), and
    may override :meth:`_drain` to finish queued work during a graceful
    :meth:`stop`.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        metrics: Optional[ServingMetrics] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self.http_address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> bytes:
        """Answer one validated request with one response frame."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """The full ``stats`` payload served by ``GET /stats``."""
        raise NotImplementedError

    async def _drain(self) -> None:
        """Finish queued work during a graceful stop (subclass hook)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the configured transports and start accepting clients."""
        self._stopped = asyncio.Event()
        limit = self.config.max_frame_bytes + 1024  # room for one frame + slack
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._spawn_handler(self._handle_ndjson),
                path=self.config.unix_path,
                limit=limit,
            )
            self._servers.append(server)
        if self.config.http_port is not None:
            server = await asyncio.start_server(
                self._spawn_handler(self._handle_http),
                host=self.config.http_host,
                port=self.config.http_port,
                limit=limit,
            )
            self._servers.append(server)
            self.http_address = server.sockets[0].getsockname()[:2]
        if not self._servers:
            raise ValueError("ServerConfig enables no transport")

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain queued work, disconnect.

        Queued requests are answered; frames arriving after the stop get a
        typed ``shutting_down`` error; idle connections are then closed.
        """
        self._stopping = True
        for server in self._servers:
            server.close()
        await self._drain()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if (
            self.config.unix_path is not None
            and os.path.exists(self.config.unix_path)
        ):
            os.unlink(self.config.unix_path)
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` completes (for ``repro serve``)."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    def _spawn_handler(self, handler):
        # Track connection tasks so stop() can cancel lingering idle clients.
        async def run(reader, writer):
            task = asyncio.current_task()
            assert task is not None
            self._conn_tasks.add(task)
            try:
                await handler(reader, writer)
            except asyncio.CancelledError:
                # stop() disconnects lingering idle clients; ending the task
                # normally keeps the streams machinery from logging it.
                pass
            finally:
                self._conn_tasks.discard(task)

        return run

    # ------------------------------------------------------------------
    # Dispatch plumbing (shared by both transports)
    # ------------------------------------------------------------------
    @staticmethod
    def _salvage_id(line: bytes) -> Any:
        """Best-effort ``id`` recovery from a frame that failed validation."""
        try:
            payload = json.loads(line)
        except Exception:
            return None
        if isinstance(payload, dict):
            request_id = payload.get("id")
            if isinstance(request_id, (str, int, float)) or request_id is None:
                return request_id
        return None

    async def dispatch_line(self, line: bytes) -> bytes:
        """Decode one request line and answer it with one response frame."""
        try:
            request = decode_frame(line, self.config.max_frame_bytes)
        except ProtocolError as error:
            self.metrics.record_error(error.code)
            return encode_error(self._salvage_id(line), error.code, str(error))
        return await self.dispatch(request)

    # ------------------------------------------------------------------
    # Unix-socket transport: pipelined NDJSON, responses in request order
    # ------------------------------------------------------------------
    async def _handle_ndjson(self, reader, writer) -> None:
        # One dispatch task per frame, up to pipeline_depth in flight; a
        # single response pump writes results strictly in request order, so
        # pipelined clients correlate responses FIFO.
        depth = max(1, self.config.pipeline_depth)
        responses: "asyncio.Queue" = asyncio.Queue(maxsize=depth)

        async def pump_responses() -> None:
            while True:
                dispatch = await responses.get()
                if dispatch is None:
                    return
                writer.write(await dispatch)
                await writer.drain()

        pump = asyncio.create_task(pump_responses())

        async def enqueue(dispatch: Optional["asyncio.Task"]) -> bool:
            # A put that cannot deadlock on a dead response pump: wait on
            # both; if the pump finished first the connection is over.
            put = asyncio.ensure_future(responses.put(dispatch))
            await asyncio.wait({put, pump}, return_when=asyncio.FIRST_COMPLETED)
            if put.done() and not put.cancelled():
                return True
            put.cancel()
            if dispatch is not None:
                dispatch.cancel()
            return False

        oversized = False
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line outgrew the stream buffer: report it as an
                    # oversized frame, then close -- resyncing mid-line is
                    # not possible.
                    oversized = True
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                dispatch = asyncio.create_task(self.dispatch_line(line))
                if not await enqueue(dispatch):
                    break
            if await enqueue(None):
                await pump
            else:
                await pump  # surface the pump's exception, if any
            if oversized:
                writer.write(
                    encode_error(
                        None,
                        "oversized",
                        "frame exceeds the "
                        f"{self.config.max_frame_bytes} byte limit",
                    )
                )
                self.metrics.record_error("oversized")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self.metrics.record_disconnect()
        except asyncio.CancelledError:
            raise
        finally:
            if not pump.done():
                pump.cancel()
            await asyncio.gather(pump, return_exceptions=True)
            while not responses.empty():
                dispatch = responses.get_nowait()
                if dispatch is not None:
                    dispatch.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                self.metrics.record_disconnect()

    # ------------------------------------------------------------------
    # HTTP transport: GET /stats, POST /query (NDJSON body)
    # ------------------------------------------------------------------
    async def _handle_http(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    await self._http_respond(writer, 400, b"bad request line\n")
                    break
                method, path = parts[0].upper(), parts[1]
                headers: Dict[str, str] = {}
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                if length > _HTTP_BODY_LIMIT:
                    await self._http_respond(writer, 413, b"body too large\n")
                    break
                body = await reader.readexactly(length) if length else b""
                if method == "GET" and path == "/stats":
                    await self._http_respond(
                        writer, 200, encode_result(None, self.stats())
                    )
                elif method == "GET" and path == "/ping":
                    await self._http_respond(
                        writer, 200, encode_result(None, "pong")
                    )
                elif method == "POST" and path == "/query":
                    out = bytearray()
                    for line in body.split(b"\n"):
                        if line.strip():
                            out += await self.dispatch_line(line)
                    await self._http_respond(writer, 200, bytes(out))
                else:
                    await self._http_respond(writer, 404, b"not found\n")
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            self.metrics.record_disconnect()
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                self.metrics.record_disconnect()

    @staticmethod
    async def _http_respond(writer, status: int, body: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class IndexServer(FrameServer):
    """Serve Wavelet-Trie columns with coalesced reads and snapshot pins."""

    def __init__(
        self,
        columns: Union[CompressedColumn, Dict[str, CompressedColumn]],
        config: Optional[ServerConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(config)
        if isinstance(columns, CompressedColumn):
            columns = {"default": columns}
        self.shards: Dict[str, IndexShard] = {
            name: IndexShard(
                name,
                column,
                coalesce=self.config.coalesce,
                coalesce_window=self.config.coalesce_window,
                max_pending=self.config.max_pending,
                request_timeout=self.config.request_timeout,
                compact_budget=self.config.compact_budget,
                clock=clock,
                metrics=self.metrics,
                faults=faults,
            )
            for name, column in columns.items()
        }

    async def _drain(self) -> None:
        for shard in self.shards.values():
            await shard.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> bytes:
        """Route one validated request to its shard (or answer it inline)."""
        if request.op in ADMIN_OPS:
            self.metrics.record_request(request.op)
            if request.op == "ping":
                return encode_result(request.id, "pong")
            return encode_result(request.id, self.stats())
        if self._stopping:
            self.metrics.record_error("shutting_down")
            return encode_error(
                request.id, "shutting_down", "server is draining"
            )
        shard = self.shards.get(request.shard)
        if shard is None:
            self.metrics.record_error("unknown_shard")
            return encode_error(
                request.id,
                "unknown_shard",
                f"no shard named {request.shard!r}: "
                f"serving {sorted(self.shards)}",
            )
        return await shard.submit(request)

    def stats(self) -> Dict[str, Any]:
        """The full ``stats`` payload: per-shard state plus server metrics."""
        return {
            "shards": {
                name: shard.stats() for name, shard in sorted(self.shards.items())
            },
            "metrics": self.metrics.snapshot(),
            "config": {
                "coalesce": self.config.coalesce,
                "coalesce_window": self.config.coalesce_window,
                "max_pending": self.config.max_pending,
                "request_timeout": self.config.request_timeout,
                "max_frame_bytes": self.config.max_frame_bytes,
            },
        }


class NDJSONClient:
    """A unix-socket NDJSON client with bounded pipelining.

    Up to ``max_inflight`` request frames may be outstanding on the
    connection at once; responses correlate to requests strictly FIFO
    (the server answers in order per connection).  With the default
    ``max_inflight=1`` the client behaves exactly like the original
    one-frame-at-a-time client; the cluster supervisor and the pipelining
    tests raise it so a single connection can fill a whole coalescing tick.
    """

    def __init__(self, reader, writer, max_inflight: int = 1) -> None:
        self._reader = reader
        self._writer = writer
        self.max_inflight = max(1, int(max_inflight))
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._waiting: Deque["asyncio.Future[bytes]"] = deque()
        self._reader_task: Optional["asyncio.Task"] = None
        self._broken: Optional[BaseException] = None

    @classmethod
    async def connect(
        cls, unix_path: str, max_inflight: int = 1
    ) -> "NDJSONClient":
        """Open one NDJSON connection to the server's unix socket."""
        reader, writer = await asyncio.open_unix_connection(unix_path)
        return cls(reader, writer, max_inflight=max_inflight)

    # ------------------------------------------------------------------
    async def submit(self, frame: bytes) -> "asyncio.Future[bytes]":
        """Send one pre-encoded frame as soon as a pipeline slot frees.

        Returns a future resolving to the raw response line for *this*
        frame (FIFO correlation).  Blocks only while ``max_inflight``
        frames are already outstanding -- the backpressure that keeps the
        pipeline bounded.
        """
        if self._broken is not None:
            raise ConnectionError("connection is broken") from self._broken
        await self._slots.acquire()
        if self._broken is not None:
            self._slots.release()
            raise ConnectionError("connection is broken") from self._broken
        self._ensure_reader()
        future: "asyncio.Future[bytes]" = (
            asyncio.get_running_loop().create_future()
        )
        self._waiting.append(future)
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except Exception as error:
            self._fail_pending(error)
            raise
        return future

    async def call_raw(self, frame: bytes) -> bytes:
        """Send one pre-encoded frame, await and return the raw response."""
        future = await self.submit(frame)
        return await future

    async def call(self, **payload: Any) -> Dict[str, Any]:
        """Send one request object, await and decode its response frame."""
        frame = await self.call_raw(
            json.dumps(payload, sort_keys=True).encode() + b"\n"
        )
        return json.loads(frame)

    # ------------------------------------------------------------------
    def _ensure_reader(self) -> None:
        if self._reader_task is None or self._reader_task.done():
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                if self._waiting:
                    future = self._waiting.popleft()
                    if not future.done():
                        future.set_result(line)
                    self._slots.release()
        except asyncio.CancelledError:
            raise
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            self._fail_pending(error)

    def _fail_pending(self, error: BaseException) -> None:
        self._broken = error
        while self._waiting:
            future = self._waiting.popleft()
            if not future.done():
                if isinstance(error, ConnectionError):
                    future.set_exception(error)
                else:
                    future.set_exception(
                        ConnectionError(f"connection failed: {error!r}")
                    )
            self._slots.release()

    async def close(self) -> None:
        """Close the connection (idempotent); fails outstanding futures."""
        if self._reader_task is not None and not self._reader_task.done():
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
        self._fail_pending(ConnectionError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
