"""The cluster worker process: serve one shard slice over a unix socket.

Run as ``python -m repro.serving.worker`` by the
:class:`~repro.serving.cluster.ClusterSupervisor`, one process per shard.
The worker is deliberately thin: it mmaps its slice images
(:func:`~repro.storage.shards.open_worker_columns` -- zero-copy, shared
page cache), wraps them in the *existing* single-process
:class:`~repro.serving.server.IndexServer` (same pump loop, same
coalescer, same protocol), and reports to the supervisor over two
channels:

* **stdout is the control pipe** -- one JSON line per event: a ``ready``
  handshake once the socket is listening (the supervisor waits for it
  before routing), then optional periodic ``heartbeat`` lines;
* **the unix socket is the data plane** -- the supervisor holds one
  pipelined NDJSON connection per worker, and the worker's own coalescer
  turns the pipelined scalar subrequests back into ``*_many`` batches.

Ownership rule: only the tail worker opens its columns appendable; a
``--fault-script`` (JSON, see :meth:`~repro.serving.faults.FaultInjector.
from_specs`) lets the recovery suite script deterministic mid-batch
crashes -- including hard ``os._exit`` kills -- inside this process.
SIGTERM triggers a graceful drain (queued requests answered, then exit 0).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import Optional

from repro.serving.faults import FaultInjector
from repro.serving.server import IndexServer, ServerConfig
from repro.storage.shards import load_manifest, open_worker_columns

__all__ = ["main", "run_worker"]


def _emit(event: str, **fields) -> None:
    """One control-pipe line: compact JSON, flushed immediately."""
    payload = {"event": event, **fields}
    print(json.dumps(payload, sort_keys=True), flush=True)


async def run_worker(
    directory: str,
    worker: int,
    socket_path: str,
    *,
    coalesce_window: int = 2,
    pipeline_depth: int = 64,
    compact_budget: Optional[int] = None,
    heartbeat: float = 0.0,
    fault_script: Optional[str] = None,
) -> int:
    """Serve one worker's shard slice until SIGTERM/SIGINT (returns exit code)."""
    manifest = load_manifest(directory)
    columns = open_worker_columns(directory, manifest, worker)
    faults = None
    if fault_script:
        faults = FaultInjector.from_specs(json.loads(fault_script))

    config = ServerConfig(
        unix_path=socket_path,
        coalesce_window=coalesce_window,
        pipeline_depth=pipeline_depth,
        compact_budget=compact_budget,
    )
    server = IndexServer(columns, config, faults=faults)
    await server.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    _emit(
        "ready",
        worker=worker,
        pid=os.getpid(),
        socket=socket_path,
        columns={name: len(column) for name, column in sorted(columns.items())},
        appendable=sorted(
            name for name, column in columns.items() if column.appendable
        ),
    )

    async def beat() -> None:
        seq = 0
        while True:
            await asyncio.sleep(heartbeat)
            seq += 1
            _emit("heartbeat", worker=worker, seq=seq)

    heartbeat_task = (
        asyncio.get_running_loop().create_task(beat()) if heartbeat > 0 else None
    )
    try:
        await stop.wait()
    finally:
        if heartbeat_task is not None:
            heartbeat_task.cancel()
            await asyncio.gather(heartbeat_task, return_exceptions=True)
        await server.stop()
        _emit("stopped", worker=worker)
    return 0


def main(argv: Optional[list] = None) -> int:
    """CLI entry: ``python -m repro.serving.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro-serving-worker",
        description="Serve one cluster shard slice over a unix socket.",
    )
    parser.add_argument("--dir", required=True, help="shard image directory")
    parser.add_argument("--worker", type=int, required=True, help="worker index")
    parser.add_argument("--socket", required=True, help="unix socket path")
    parser.add_argument("--coalesce-window", type=int, default=2)
    parser.add_argument("--pipeline-depth", type=int, default=64)
    parser.add_argument("--compact-budget", type=int, default=None)
    parser.add_argument(
        "--heartbeat", type=float, default=0.0,
        help="seconds between control-pipe heartbeat lines (0: off)",
    )
    parser.add_argument(
        "--fault-script", default=None,
        help="JSON fault spec list (FaultInjector.from_specs)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(
        run_worker(
            args.dir,
            args.worker,
            args.socket,
            coalesce_window=args.coalesce_window,
            pipeline_depth=args.pipeline_depth,
            compact_budget=args.compact_budget,
            heartbeat=args.heartbeat,
            fault_script=args.fault_script,
        )
    )


if __name__ == "__main__":
    sys.exit(main())
