"""Multi-process sharded serving: the cluster supervisor.

:class:`ClusterSupervisor` is the cluster's single front door.  It speaks
the exact same NDJSON/HTTP protocol as the single-process
:class:`~repro.serving.server.IndexServer` (it shares the
:class:`~repro.serving.server.FrameServer` transports), but behind the
door the data lives in N **worker processes**, one per position-range
shard, each mmapping its slice from the RWT2 images the manifest names
(:mod:`repro.storage.shards`) and running the ordinary single-process
server over it.  The topology:

* **Reads scatter-gather.**  Concurrent reads park on the supervisor's
  queue and drain in ticks; each tick the
  :class:`~repro.serving.router.ClusterRouter` decomposes the batch into
  per-worker scalar subrequests, pipelines them over one persistent
  NDJSON connection per worker, and merges the results in input order --
  byte-identical frames to the unsharded server, stamped with the
  supervisor's authoritative version.
* **Writes have one owner.**  Every ``append``/``extend`` routes to the
  *tail* worker (the only process whose columns open appendable), applied
  strictly in queue order.  Each write is journaled in the supervisor
  *before* it is sent, which makes recovery exact: a respawned worker is
  its image plus a journal replay, so an acknowledged write can neither
  be lost nor applied twice, and in-flight writes interrupted by a crash
  are recovered by the replay itself.
* **Supervision.**  Each worker's stdout is a control pipe (``ready``
  handshake, optional heartbeats); a watcher task notices process death
  and triggers a bounded restart with exponential backoff
  (``restart_backoff * 2**attempt`` -- zero in the deterministic tests,
  so recovery needs no wall-clock sleeps).  Reads hitting a dead worker
  wait for the respawn and retry; past ``max_restarts`` the worker is
  marked failed and its shard's requests answer ``internal``.  A graceful
  ``stop`` drains the queues (late frames get ``shutting_down``), then
  SIGTERMs the workers, which drain in turn.

``stats`` merges :mod:`~repro.serving.metrics` counters across the
supervisor and every worker (:func:`~repro.serving.metrics.merge_snapshots`)
and reports per-worker generation/restart state.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.exceptions import ReproError
from repro.serving.metrics import merge_snapshots
from repro.serving.protocol import (
    ADMIN_OPS,
    READ_OPS,
    WRITE_OPS,
    Request,
    encode_error,
    encode_frame,
    encode_request,
    encode_result,
    error_code_for_exception,
    error_message,
)
from repro.serving.router import ClusterRouter, PartitionMap
from repro.serving.server import FrameServer, NDJSONClient, ServerConfig
from repro.storage.shards import load_manifest

__all__ = ["ClusterConfig", "ClusterError", "ClusterSupervisor", "LIVE_WORKER_PIDS"]

# Module-level registry of spawned worker pids, maintained across spawn and
# reap.  The test suite's orphan-reaper fixture sweeps it after every test,
# so a failing test can never leak a worker process into later matrix legs.
LIVE_WORKER_PIDS: Set[int] = set()


class ClusterError(ReproError):
    """A shard worker could not serve (dead past its restart budget)."""


@dataclass
class ClusterConfig:
    """Cluster-level tunables (process topology, not transports)."""

    image_dir: str = ""
    socket_dir: Optional[str] = None   # default: image_dir
    restart_backoff: float = 0.05      # seconds; doubles per attempt; 0 in tests
    max_restarts: int = 5              # per worker, before it is marked failed
    worker_pipeline: int = 64          # in-flight frames per worker connection
    worker_coalesce_window: int = 2    # the workers' pump gather window
    worker_compact_budget: Optional[int] = None
    heartbeat_interval: float = 0.0    # control-pipe heartbeats (0: off)
    python_executable: Optional[str] = None
    # Deterministic test seam: worker index -> JSON-safe fault spec list
    # (FaultInjector.from_specs), applied to generation 0 only so a
    # respawned worker comes back healthy.
    fault_scripts: Dict[int, List[Dict[str, Any]]] = field(default_factory=dict)


@dataclass
class _Pending:
    request: Request
    future: "asyncio.Future[bytes]"
    deadline: Optional[float] = None


class _WorkerHandle:
    """One worker process slot: its process, connection, and lifecycle."""

    def __init__(self, index: int, socket_path: str) -> None:
        self.index = index
        self.socket_path = socket_path
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.client: Optional[NDJSONClient] = None
        self.generation = 0
        self.restarts = 0
        self.failed = False
        self.shutting = False
        self.ready = asyncio.Event()
        self.lock = asyncio.Lock()
        self.last_heartbeat: Optional[float] = None
        self.control_task: Optional["asyncio.Task"] = None
        self.watch_task: Optional["asyncio.Task"] = None

    def state(self) -> Dict[str, Any]:
        return {
            "pid": self.proc.pid if self.proc is not None else None,
            "generation": self.generation,
            "restarts": self.restarts,
            "ready": self.ready.is_set() and not self.failed,
            "failed": self.failed,
            "last_heartbeat": self.last_heartbeat,
        }


class ClusterSupervisor(FrameServer):
    """Serve one manifest's shard images through N worker processes."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        cluster: Optional[ClusterConfig] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(config)
        self.cluster = cluster if cluster is not None else ClusterConfig()
        if not self.cluster.image_dir:
            raise ValueError("ClusterConfig.image_dir is required")
        self.manifest = load_manifest(self.cluster.image_dir)
        self.partition = PartitionMap.from_manifest(self.manifest["partition"])
        self.num_workers = int(self.manifest["workers"])
        self.columns: List[str] = list(self.manifest["columns"])
        # The supervisor's authoritative row count per logical column: the
        # value every read validates against and every response is stamped
        # with.  Workers only ever lag it by unacknowledged writes.
        self.versions: Dict[str, int] = {
            name: self.partition.total for name in self.columns
        }
        self.routers: Dict[str, ClusterRouter] = {
            name: ClusterRouter(
                self.partition, self._fetch, column=name, metrics=self.metrics
            )
            for name in self.columns
        }
        # The write journal: per column, the acknowledged-and-in-flight
        # writes in application order.  worker state == image + journal.
        self._journal: Dict[str, List[List[str]]] = {
            name: [] for name in self.columns
        }
        socket_dir = self.cluster.socket_dir or self.cluster.image_dir
        self._workers = [
            _WorkerHandle(
                index, os.path.join(socket_dir, f"worker-{index}.sock")
            )
            for index in range(self.num_workers)
        ]
        self.total_restarts = 0
        self._clock = clock if clock is not None else time.monotonic
        self._reads: Deque[_Pending] = deque()
        self._writes: Deque[_Pending] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._pump_task: Optional["asyncio.Task"] = None
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker, await their ready handshakes, then listen."""
        await asyncio.gather(
            *(self._spawn(handle) for handle in self._workers)
        )
        for handle in self._workers:
            handle.ready.set()
        await super().start()

    async def _drain(self) -> None:
        self._draining = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        await self._shutdown_workers()

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _command(self, handle: _WorkerHandle) -> List[str]:
        python = self.cluster.python_executable or sys.executable
        command = [
            python,
            "-m",
            "repro.serving.worker",
            "--dir", self.cluster.image_dir,
            "--worker", str(handle.index),
            "--socket", handle.socket_path,
            "--coalesce-window", str(self.cluster.worker_coalesce_window),
            "--pipeline-depth", str(self.cluster.worker_pipeline),
        ]
        if self.cluster.worker_compact_budget is not None:
            command += ["--compact-budget", str(self.cluster.worker_compact_budget)]
        if self.cluster.heartbeat_interval > 0:
            command += ["--heartbeat", str(self.cluster.heartbeat_interval)]
        script = self.cluster.fault_scripts.get(handle.index)
        if script and handle.generation == 0:
            command += ["--fault-script", json.dumps(script)]
        return command

    async def _spawn(self, handle: _WorkerHandle) -> None:
        """Start one worker process and wait for its ready handshake."""
        if os.path.exists(handle.socket_path):
            os.unlink(handle.socket_path)
        handle.proc = await asyncio.create_subprocess_exec(
            *self._command(handle), stdout=asyncio.subprocess.PIPE
        )
        LIVE_WORKER_PIDS.add(handle.proc.pid)
        assert handle.proc.stdout is not None
        while True:
            line = await handle.proc.stdout.readline()
            if not line:
                code = await handle.proc.wait()
                LIVE_WORKER_PIDS.discard(handle.proc.pid)
                raise ClusterError(
                    f"worker {handle.index} exited with code {code} "
                    "before its ready handshake"
                )
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("event") == "ready":
                break
        handle.client = await NDJSONClient.connect(
            handle.socket_path, max_inflight=self.cluster.worker_pipeline
        )
        loop = asyncio.get_running_loop()
        handle.control_task = loop.create_task(self._drain_control(handle))
        handle.watch_task = loop.create_task(
            self._watch_exit(handle, handle.generation)
        )

    async def _drain_control(self, handle: _WorkerHandle) -> None:
        """Consume the worker's control pipe (heartbeats) until EOF."""
        assert handle.proc is not None and handle.proc.stdout is not None
        while True:
            line = await handle.proc.stdout.readline()
            if not line:
                return
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("event") == "heartbeat":
                handle.last_heartbeat = self._clock()

    async def _watch_exit(self, handle: _WorkerHandle, generation: int) -> None:
        """Notice a worker death and trigger its restart."""
        assert handle.proc is not None
        proc = handle.proc
        await proc.wait()
        LIVE_WORKER_PIDS.discard(proc.pid)
        if self._stopping or handle.shutting:
            return
        await self._restart(handle, generation)

    async def _reap(self, handle: _WorkerHandle) -> None:
        """Tear down a (possibly dead) worker's process and connection."""
        if handle.client is not None:
            await handle.client.close()
            handle.client = None
        if handle.control_task is not None:
            handle.control_task.cancel()
            await asyncio.gather(handle.control_task, return_exceptions=True)
            handle.control_task = None
        if handle.proc is not None:
            if handle.proc.returncode is None:
                handle.proc.kill()
            await handle.proc.wait()
            LIVE_WORKER_PIDS.discard(handle.proc.pid)
            handle.proc = None

    async def _restart(self, handle: _WorkerHandle, dead_generation: int) -> None:
        """Bounded restart-with-backoff; at most once per dead generation.

        Every path that notices the death (exit watcher, failed fetch,
        failed write) funnels here; the per-worker lock plus the generation
        check make the recovery idempotent.  The respawned worker replays
        the write journal before ``ready`` is set, so readers blocked on
        :meth:`_wait_ready` resume against fully recovered state.
        """
        async with handle.lock:
            if handle.failed or handle.generation != dead_generation:
                return
            handle.ready.clear()
            await self._reap(handle)
            while True:
                if handle.restarts >= self.cluster.max_restarts:
                    handle.failed = True
                    handle.ready.set()  # wake waiters; they see .failed
                    return
                handle.restarts += 1
                self.total_restarts += 1
                backoff = self.cluster.restart_backoff * (
                    2 ** (handle.restarts - 1)
                )
                await asyncio.sleep(backoff)
                handle.generation += 1
                try:
                    await self._spawn(handle)
                    if handle.index == self.partition.tail:
                        await self._replay_journal(handle)
                except (ClusterError, ConnectionError, OSError):
                    await self._reap(handle)
                    continue
                handle.ready.set()
                return

    async def _replay_journal(self, handle: _WorkerHandle) -> None:
        """Re-apply every journaled write to a freshly spawned tail worker."""
        assert handle.client is not None
        futures = []
        for name in self.columns:
            for values in self._journal[name]:
                frame = encode_request("extend", shard=name, values=values)
                futures.append(await handle.client.submit(frame))
        for future in futures:
            line = await future
            response = json.loads(line)
            if not response.get("ok"):
                raise ClusterError(
                    f"journal replay failed on worker {handle.index}: "
                    f"{response['error']['code']}: {response['error']['message']}"
                )

    async def _wait_ready(self, handle: _WorkerHandle) -> None:
        await handle.ready.wait()
        if handle.failed:
            raise ClusterError(
                f"worker {handle.index} is unavailable "
                f"(failed after {handle.restarts} restarts)"
            )

    async def _shutdown_workers(self) -> None:
        for handle in self._workers:
            handle.shutting = True
        for handle in self._workers:
            if handle.watch_task is not None:
                handle.watch_task.cancel()
                await asyncio.gather(handle.watch_task, return_exceptions=True)
                handle.watch_task = None
            if handle.proc is not None and handle.proc.returncode is None:
                handle.proc.terminate()
        for handle in self._workers:
            if handle.proc is not None:
                await handle.proc.wait()
                LIVE_WORKER_PIDS.discard(handle.proc.pid)
            if handle.client is not None:
                await handle.client.close()
                handle.client = None
            if handle.control_task is not None:
                handle.control_task.cancel()
                await asyncio.gather(handle.control_task, return_exceptions=True)
                handle.control_task = None
            if os.path.exists(handle.socket_path):
                os.unlink(handle.socket_path)

    # ------------------------------------------------------------------
    # The scatter seam: the routers' fetch callable
    # ------------------------------------------------------------------
    async def _fetch(self, shard: int, payloads: List[Dict[str, Any]]) -> List[Any]:
        """Pipeline one batch of subrequests to one worker, with recovery.

        Reads are idempotent, so a connection failure (the worker died
        mid-batch) triggers the bounded restart and then simply retries
        the whole batch against the recovered worker.
        """
        handle = self._workers[shard]
        frames = [encode_frame(payload) for payload in payloads]
        last_error: Optional[BaseException] = None
        for _ in range(self.cluster.max_restarts + 1):
            await self._wait_ready(handle)
            generation = handle.generation
            client = handle.client
            assert client is not None
            try:
                futures = [await client.submit(frame) for frame in frames]
                lines = await asyncio.gather(*futures)
                return [self._subresult(shard, line) for line in lines]
            except ConnectionError as error:
                last_error = error
                await self._restart(handle, generation)
        raise ClusterError(
            f"worker {shard} is unavailable: {last_error}"
        )

    @staticmethod
    def _subresult(shard: int, line: bytes) -> Any:
        response = json.loads(line)
        if not response.get("ok"):
            # The supervisor pre-validates, so a worker-side error means
            # the cluster's own invariants broke -- surface it loudly.
            raise ClusterError(
                f"worker {shard} rejected a subrequest: "
                f"{response['error']['code']}: {response['error']['message']}"
            )
        return response["result"]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> bytes:
        """Answer one validated request: admin inline, reads and writes
        through the supervisor's coalescing pump."""
        if request.op in ADMIN_OPS:
            self.metrics.record_request(request.op)
            if request.op == "ping":
                return encode_result(request.id, "pong")
            return encode_result(request.id, await self.cluster_stats())
        if self._stopping or self._draining:
            self.metrics.record_error("shutting_down")
            return encode_error(request.id, "shutting_down", "server is draining")
        if request.shard not in self.routers:
            self.metrics.record_error("unknown_shard")
            return encode_error(
                request.id,
                "unknown_shard",
                f"no shard named {request.shard!r}: "
                f"serving {sorted(self.routers)}",
            )
        self.metrics.record_request(request.op)
        if len(self._reads) + len(self._writes) >= self.config.max_pending:
            self.metrics.record_error("overloaded")
            return encode_error(
                request.id,
                "overloaded",
                f"shard {request.shard!r} queue is full "
                f"({self.config.max_pending} pending)",
            )
        self._ensure_pump()
        started = self._clock()
        deadline = (
            started + self.config.request_timeout
            if self.config.request_timeout is not None
            else None
        )
        pending = _Pending(
            request, asyncio.get_running_loop().create_future(), deadline
        )
        if request.op in WRITE_OPS:
            self._writes.append(pending)
        else:
            assert request.op in READ_OPS, request.op
            self._reads.append(pending)
        assert self._wakeup is not None
        self._wakeup.set()
        frame = await pending.future
        self.metrics.record_latency(request.op, self._clock() - started)
        if frame.startswith(b'{"error"'):
            self.metrics.record_error(json.loads(frame)["error"]["code"])
        return frame

    # ------------------------------------------------------------------
    # The supervisor pump: one tick = drained writes, one routed read batch
    # ------------------------------------------------------------------
    def _ensure_pump(self) -> None:
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="repro-cluster-pump"
            )

    async def _pump(self) -> None:
        while True:
            if not self._reads and not self._writes:
                if self._draining:
                    return
                assert self._wakeup is not None
                self._wakeup.clear()
                if not self._reads and not self._writes:
                    if self._draining:
                        return
                    await self._wakeup.wait()
                continue
            self.metrics.record_tick()
            await self._gather_window()
            await self._tick()

    async def _gather_window(self) -> None:
        # Same idiom as IndexShard._gather_window: let staggered arrivals
        # join the tick, stop as soon as the queue stops growing.
        if self.config.coalesce_window <= 0:
            return
        for _ in range(self.config.coalesce_window):
            before = len(self._reads) + len(self._writes)
            await asyncio.sleep(0)
            if len(self._reads) + len(self._writes) == before:
                break

    async def _tick(self) -> None:
        now = self._clock()
        while self._writes:
            pending = self._writes.popleft()
            if self._expire(pending, now):
                continue
            await self._apply_write(pending)

        if not self._reads:
            return
        batch = list(self._reads)
        self._reads.clear()
        live = [p for p in batch if not self._expire(p, now)]
        if not live:
            return
        by_column: Dict[str, List[_Pending]] = {}
        for pending in live:
            by_column.setdefault(pending.request.shard, []).append(pending)

        async def answer(name: str, members: List[_Pending]) -> None:
            try:
                frames = await self.routers[name].answer(
                    [p.request for p in members], self.versions[name]
                )
            except Exception as error:
                code = error_code_for_exception(error)
                message = error_message(error)
                for pending in members:
                    self._resolve(
                        pending, encode_error(pending.request.id, code, message)
                    )
                return
            for pending, frame in zip(members, frames):
                self._resolve(pending, frame)

        await asyncio.gather(
            *(answer(name, members) for name, members in by_column.items())
        )

    async def _apply_write(self, pending: _Pending) -> None:
        """One journaled write to the tail worker, recovered if it crashes.

        The journal entry is appended *before* the send: from that moment
        the write is part of the column's durable definition, so a worker
        crash at any point recovers it through the replay -- the response
        the client gets is correct in either world, exactly once.
        """
        request = pending.request
        name = request.shard
        if request.op == "append":
            values = [request.args["value"]]
        else:
            values = list(request.args["values"])
        handle = self._workers[self.partition.tail]
        self._journal[name].append(values)
        self.versions[name] += len(values)
        version = self.versions[name]
        frame = encode_request("extend", shard=name, values=values)
        try:
            while True:
                await self._wait_ready(handle)
                generation = handle.generation
                client = handle.client
                assert client is not None
                try:
                    line = await client.call_raw(frame)
                except ConnectionError:
                    # The respawn's journal replay applies this write (it
                    # is already journaled); nothing to resend.
                    await self._restart(handle, generation)
                    await self._wait_ready(handle)
                    break
                response = json.loads(line)
                if not response.get("ok"):
                    # A clean worker-side rejection (e.g. codec error):
                    # forward it and undo the journal entry -- applied
                    # nowhere, reported as the single-process server would.
                    self._journal[name].pop()
                    self.versions[name] -= len(values)
                    error = response["error"]
                    self._resolve(
                        pending,
                        encode_error(
                            request.id, error["code"], error["message"]
                        ),
                    )
                    return
                break
        except ClusterError as error:
            # Tail worker dead past its restart budget: the write cannot
            # be served; undo the journal entry and degrade loudly.
            self._journal[name].pop()
            self.versions[name] -= len(values)
            self._resolve(
                pending,
                encode_error(request.id, "internal", error_message(error)),
            )
            return
        self._resolve(
            pending,
            encode_result(request.id, {"appended": len(values)}, version),
        )

    def _expire(self, pending: _Pending, now: float) -> bool:
        if pending.deadline is not None and now > pending.deadline:
            self._resolve(
                pending,
                encode_error(
                    pending.request.id,
                    "timeout",
                    f"request expired after {self.config.request_timeout}s in queue",
                ),
            )
            return True
        return False

    @staticmethod
    def _resolve(pending: _Pending, frame: bytes) -> None:
        if not pending.future.done():
            pending.future.set_result(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cluster_state(self) -> Dict[str, Any]:
        """Topology snapshot: partition, versions, per-worker lifecycle."""
        return {
            "workers": {
                str(handle.index): handle.state() for handle in self._workers
            },
            "partition": self.partition.to_manifest(),
            "tail": self.partition.tail,
            "columns": {name: self.versions[name] for name in self.columns},
            "journal_entries": {
                name: len(entries) for name, entries in self._journal.items()
            },
            "total_restarts": self.total_restarts,
        }

    def stats(self) -> Dict[str, Any]:
        """The synchronous (``GET /stats``) payload: supervisor-local only.

        The NDJSON ``stats`` op serves :meth:`cluster_stats` instead, which
        additionally gathers and merges every live worker's metrics.
        """
        return {
            "cluster": self.cluster_state(),
            "metrics": self.metrics.snapshot(),
            "config": {
                "coalesce": self.config.coalesce,
                "coalesce_window": self.config.coalesce_window,
                "max_pending": self.config.max_pending,
                "request_timeout": self.config.request_timeout,
                "max_frame_bytes": self.config.max_frame_bytes,
                "workers": self.num_workers,
            },
        }

    async def cluster_stats(self) -> Dict[str, Any]:
        """The merged ``stats`` op payload.

        ``metrics`` is the exact counter **sum** of the supervisor's and
        every reachable worker's metrics (see
        :func:`~repro.serving.metrics.merge_snapshots`); the unmerged
        per-worker payloads ride along under ``workers``.
        """
        stats_frame = encode_request("stats")
        worker_metrics: Dict[str, Any] = {}
        for handle in self._workers:
            if handle.failed or not handle.ready.is_set():
                continue
            client = handle.client
            if client is None:
                continue
            try:
                line = await client.call_raw(stats_frame)
                payload = json.loads(line)
            except (ConnectionError, json.JSONDecodeError):
                continue
            if payload.get("ok"):
                worker_metrics[str(handle.index)] = payload["result"]["metrics"]
        merged = merge_snapshots(
            [self.metrics.snapshot()] + list(worker_metrics.values())
        )
        payload = self.stats()
        payload["metrics"] = merged
        payload["supervisor_metrics"] = self.metrics.snapshot()
        payload["worker_metrics"] = worker_metrics
        return payload

    async def check_workers(self) -> Dict[str, Any]:
        """Active health check: ping every worker over its data socket."""
        ping = encode_request("ping")
        health: Dict[str, Any] = {}
        for handle in self._workers:
            state = handle.state()
            alive = False
            if not handle.failed and handle.ready.is_set() and handle.client:
                try:
                    response = json.loads(await handle.client.call_raw(ping))
                    alive = response.get("result") == "pong"
                except (ConnectionError, json.JSONDecodeError):
                    alive = False
            health[str(handle.index)] = {**state, "alive": alive}
        return health
