"""Request, latency and batch-size accounting for the index server.

One :class:`ServingMetrics` instance per server aggregates everything the
``stats`` endpoint reports: per-op request and error counters, coalescing
batch sizes (how many scalar requests each ``*_many`` call absorbed -- the
number that explains the throughput multiplier), and per-op latency
percentiles over a bounded reservoir of recent requests.

The reservoir is a fixed-size ring per op (newest overwrite oldest), so the
percentiles track recent behaviour and memory stays bounded no matter how
long the server runs.  All updates are O(1); percentile computation sorts
one ring on demand (stats calls only).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, Sequence

__all__ = ["ServingMetrics", "merge_snapshots"]

_RESERVOIR = 4096


def _percentile(samples: list, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = min(len(samples) - 1, max(0, int(fraction * len(samples))))
    return samples[rank]


class ServingMetrics:
    """Bounded-memory counters behind the server's ``stats`` endpoint."""

    def __init__(self, reservoir: int = _RESERVOIR) -> None:
        self.requests: Counter = Counter()       # per op
        self.errors: Counter = Counter()         # per wire error code
        self.batches: Counter = Counter()        # *_many calls per op
        self.coalesced: Counter = Counter()      # scalar requests absorbed, per op
        self.max_batch: Dict[str, int] = {}
        self.ticks = 0
        self.client_disconnects = 0
        self._latency: Dict[str, Deque[float]] = {}
        self._reservoir = reservoir

    # ------------------------------------------------------------------
    def record_request(self, op: str) -> None:
        """Count one accepted request frame."""
        self.requests[op] += 1

    def record_error(self, code: str) -> None:
        """Count one error response by wire code."""
        self.errors[code] += 1

    def record_batch(self, op: str, size: int) -> None:
        """Count one drained ``*_many`` batch that absorbed ``size`` requests."""
        self.batches[op] += 1
        self.coalesced[op] += size
        if size > self.max_batch.get(op, 0):
            self.max_batch[op] = size

    def record_tick(self) -> None:
        """Count one coalescing tick (one queue drain)."""
        self.ticks += 1

    def record_disconnect(self) -> None:
        """Count a client that vanished before its response could be written."""
        self.client_disconnects += 1

    def record_latency(self, op: str, seconds: float) -> None:
        """Add one request's queue-to-response latency to the op's ring."""
        ring = self._latency.get(op)
        if ring is None:
            ring = self._latency[op] = deque(maxlen=self._reservoir)
        ring.append(seconds)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The JSON-ready stats payload (sorts each latency ring on demand)."""
        latency: Dict[str, Dict[str, float]] = {}
        for op, ring in sorted(self._latency.items()):
            if not ring:
                continue
            samples = sorted(ring)
            latency[op] = {
                "p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
                "p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
                "max_ms": round(samples[-1] * 1e3, 3),
                "samples": len(samples),
            }
        batch_stats = {
            op: {
                "batches": self.batches[op],
                "requests": self.coalesced[op],
                "mean_size": round(self.coalesced[op] / self.batches[op], 2),
                "max_size": self.max_batch.get(op, 0),
            }
            for op in sorted(self.batches)
        }
        return {
            "requests": dict(sorted(self.requests.items())),
            "errors": dict(sorted(self.errors.items())),
            "ticks": self.ticks,
            "client_disconnects": self.client_disconnects,
            "batches": batch_stats,
            "latency": latency,
        }


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge several :meth:`ServingMetrics.snapshot` payloads into one.

    The cluster supervisor's ``stats`` op reports this over its own and
    every worker's metrics.  Every counter is an exact **sum** across the
    inputs (``requests`` / ``errors`` per key, ``ticks``,
    ``client_disconnects``, and per-op batch/request totals, with
    ``max_size`` the max and ``mean_size`` recomputed from the summed
    totals).  Latency percentiles do not compose from percentiles, so the
    merged ``latency`` keeps only what merges exactly: summed ``samples``
    and the max of ``max_ms`` per op -- per-worker percentiles stay
    available in the unmerged payloads alongside.
    """
    requests: Counter = Counter()
    errors: Counter = Counter()
    ticks = 0
    disconnects = 0
    batch_calls: Counter = Counter()
    batch_requests: Counter = Counter()
    batch_max: Dict[str, int] = {}
    latency_samples: Counter = Counter()
    latency_max: Dict[str, float] = {}
    for snapshot in snapshots:
        requests.update(snapshot.get("requests", {}))
        errors.update(snapshot.get("errors", {}))
        ticks += snapshot.get("ticks", 0)
        disconnects += snapshot.get("client_disconnects", 0)
        for op, stats in snapshot.get("batches", {}).items():
            batch_calls[op] += stats["batches"]
            batch_requests[op] += stats["requests"]
            if stats["max_size"] > batch_max.get(op, 0):
                batch_max[op] = stats["max_size"]
        for op, stats in snapshot.get("latency", {}).items():
            latency_samples[op] += stats["samples"]
            if stats["max_ms"] > latency_max.get(op, 0.0):
                latency_max[op] = stats["max_ms"]
    return {
        "requests": dict(sorted(requests.items())),
        "errors": dict(sorted(errors.items())),
        "ticks": ticks,
        "client_disconnects": disconnects,
        "batches": {
            op: {
                "batches": batch_calls[op],
                "requests": batch_requests[op],
                "mean_size": round(batch_requests[op] / batch_calls[op], 2),
                "max_size": batch_max.get(op, 0),
            }
            for op in sorted(batch_calls)
        },
        "latency": {
            op: {
                "samples": latency_samples[op],
                "max_ms": latency_max.get(op, 0.0),
            }
            for op in sorted(latency_samples)
        },
    }
