"""Deterministic fault injection for the serving test harness.

The shard pump exposes one seam: immediately after it pins the tick's
snapshot and before it executes the batch, it awaits
:meth:`FaultInjector.before_batch`.  Everything the harness needs hangs off
that seam, with *no wall-clock sleeps anywhere*:

* **slow handler** -- burn a configured number of ``asyncio.sleep(0)``
  event-loop turns, so other tasks (more clients, the writer) interleave a
  deterministic number of times while the batch is "executing";
* **writer churn** -- append rows to the live column mid-batch, so the
  snapshot-isolation suite can prove the pinned reads never see them;
* **clock skew** -- advance the shard's injected fake clock, so timeout
  expiry is triggered exactly when the test wants it;
* **crash** -- raise from inside the handler, so every request in the tick
  gets a typed ``internal`` error and the server survives.

Hooks are consumed from a scripted queue (one entry per tick, in order), so
a test reads as a schedule: "tick 1 normal, tick 2 slow with churn, tick 3
crash".  An exhausted script means no faults -- production runs with the
default no-op injector.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Sequence

__all__ = ["FaultInjector", "FaultPlan"]


class FaultPlan:
    """The faults to apply to one tick (one ``before_batch`` call)."""

    def __init__(
        self,
        *,
        yield_turns: int = 0,
        churn_values: Optional[list] = None,
        advance_clock: float = 0.0,
        crash: Optional[BaseException] = None,
        callback: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self.yield_turns = yield_turns
        self.churn_values = list(churn_values or [])
        self.advance_clock = advance_clock
        self.crash = crash
        self.callback = callback

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON-safe spec (the cross-process form).

        Cluster tests script *worker subprocess* faults, so plans must travel
        over ``argv`` as JSON.  Recognised keys:

        * ``{"exit": code}`` -- hard-kill the worker process mid-batch via
          ``os._exit`` (after the snapshot pin, before the batch executes):
          the crash the recovery suite drives;
        * ``{"crash": message}`` -- raise inside the handler (the in-process
          crash: every request in the tick gets an ``internal`` error);
        * ``yield_turns`` / ``churn`` / ``advance_clock`` -- as the keyword
          arguments above.
        """
        known = {"exit", "crash", "yield_turns", "churn", "advance_clock"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown fault spec keys {sorted(unknown)}")
        callback = None
        if "exit" in spec:
            code = int(spec["exit"])
            callback = lambda shard: os._exit(code)  # noqa: E731
        crash: Optional[BaseException] = None
        if "crash" in spec:
            crash = RuntimeError(str(spec["crash"]))
        return cls(
            yield_turns=int(spec.get("yield_turns", 0)),
            churn_values=spec.get("churn"),
            advance_clock=float(spec.get("advance_clock", 0.0)),
            crash=crash,
            callback=callback,
        )


class FaultInjector:
    """Scripted per-tick fault hooks for a shard pump.

    With an empty script every hook is a no-op; ticks consume plans in FIFO
    order.  The injector records what it applied (``applied`` counters) so
    tests can assert the schedule actually ran.
    """

    def __init__(self) -> None:
        self._plans: Deque[FaultPlan] = deque()
        self.applied: Dict[str, int] = {
            "ticks": 0,
            "yield_turns": 0,
            "churned_rows": 0,
            "clock_advances": 0,
            "crashes": 0,
        }

    def script(self, *plans: FaultPlan) -> "FaultInjector":
        """Queue fault plans for the next ticks (returns self for chaining)."""
        self._plans.extend(plans)
        return self

    @classmethod
    def from_specs(cls, specs: Sequence[Dict[str, Any]]) -> "FaultInjector":
        """Build a scripted injector from JSON-safe specs (one per tick).

        The cross-process entry point: a worker receives its fault script
        as a JSON list on ``argv`` and replays it tick by tick.  A
        ``{"skip": n}`` entry expands to ``n`` explicit no-fault ticks;
        everything else is one :meth:`FaultPlan.from_spec` plan.
        """
        injector = cls()
        for spec in specs:
            if set(spec) == {"skip"}:
                injector.skip_ticks(int(spec["skip"]))
            else:
                injector.script(FaultPlan.from_spec(spec))
        return injector

    def skip_ticks(self, count: int) -> "FaultInjector":
        """Queue ``count`` explicit no-fault ticks before the next plan."""
        for _ in range(count):
            self._plans.append(FaultPlan())
        return self

    async def before_batch(self, shard) -> None:
        """The pump's seam: applies the next scripted plan, if any.

        Runs after the tick's snapshot is pinned, so churn it injects is
        exactly the "concurrent write" a snapshot reader must not observe.
        """
        import asyncio

        self.applied["ticks"] += 1
        if not self._plans:
            return
        plan = self._plans.popleft()
        if plan.callback is not None:
            result = plan.callback(shard)
            if hasattr(result, "__await__"):
                await result
        if plan.churn_values:
            shard.column.extend(plan.churn_values)
            self.applied["churned_rows"] += len(plan.churn_values)
        for _ in range(plan.yield_turns):
            self.applied["yield_turns"] += 1
            await asyncio.sleep(0)
        if plan.advance_clock:
            shard.advance_clock(plan.advance_clock)
            self.applied["clock_advances"] += 1
        if plan.crash is not None:
            self.applied["crashes"] += 1
            raise plan.crash
