"""One served shard: a column, its queues, and the single writer task.

The shard is where the server's concurrency rules live:

* **Single writer.**  Exactly one *pump* task per shard ever touches the
  mutable column: it applies queued writes (coalescing every append/extend
  waiting this tick into one bulk ``extend``), funds a budgeted
  ``compact_step`` for tiered columns, and only then serves reads -- so
  appends and compaction stay off the read path.
* **Snapshot reads.**  Each tick pins a :class:`~repro.db.column.ColumnSnapshot`
  (an O(1) prefix pin) and answers the whole read batch against it via
  :func:`~repro.serving.coalescer.run_read_tick`; writes landing mid-batch
  (including injected churn) are invisible until the next tick's pin.
* **Backpressure and timeouts.**  The queue is bounded -- a submit beyond
  ``max_pending`` is rejected immediately with ``overloaded`` -- and each
  queued request carries a deadline checked when its tick drains
  (``timeout``).  Time comes from an injectable clock so the fault harness
  can expire requests deterministically, without sleeping.

All coordination is plain asyncio on one loop: ``submit`` parks the caller
on a future, an :class:`asyncio.Event` wakes the pump, and the pump resolves
the futures with pre-encoded response frames.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from collections import deque

from repro.db.column import ColumnSnapshot, CompressedColumn
from repro.serving.coalescer import run_read_tick
from repro.serving.faults import FaultInjector
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    READ_OPS,
    WRITE_OPS,
    Request,
    encode_error,
    encode_result,
    error_code_for_exception,
    error_message,
)

__all__ = ["IndexShard"]


@dataclass
class _Pending:
    """A parked request: its frame comes back through ``future``."""

    request: Request
    future: "asyncio.Future[bytes]"
    deadline: Optional[float] = None


class IndexShard:
    """A named column served by one pump task with coalescing queues."""

    def __init__(
        self,
        name: str,
        column: CompressedColumn,
        *,
        coalesce: bool = True,
        coalesce_window: int = 0,
        max_pending: int = 1024,
        request_timeout: Optional[float] = None,
        compact_budget: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[ServingMetrics] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.name = name
        self.column = column
        self.coalesce = coalesce
        self.coalesce_window = coalesce_window
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.compact_budget = compact_budget
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.faults = faults if faults is not None else FaultInjector()
        self._clock = clock if clock is not None else time.monotonic
        self._clock_offset = 0.0
        self._reads: Deque[_Pending] = deque()
        self._writes: Deque[_Pending] = deque()
        self._snapshot: Optional[ColumnSnapshot] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._pump_task: Optional["asyncio.Task"] = None
        self._draining = False

    # ------------------------------------------------------------------
    # Clock (injectable, skewable by the fault harness)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current shard time: the injected clock plus any fault skew."""
        return self._clock() + self._clock_offset

    def advance_clock(self, seconds: float) -> None:
        """Skew the shard clock forward (fault harness: trigger timeouts)."""
        self._clock_offset += seconds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> Optional[ColumnSnapshot]:
        """The snapshot the last tick pinned (None before the first tick)."""
        return self._snapshot

    def queue_depth(self) -> int:
        """Requests currently parked on the shard (reads + writes)."""
        return len(self._reads) + len(self._writes)

    def stats(self) -> Dict[str, Any]:
        """The shard's slice of the ``stats`` endpoint payload."""
        return {
            "rows": len(self.column),
            "snapshot_version": (
                self._snapshot.version if self._snapshot is not None else None
            ),
            "appendable": self.column.appendable,
            "coalesce": self.coalesce,
            "queue_depth": self.queue_depth(),
            "draining": self._draining,
            "size_in_bits": self.column.size_in_bits(),
        }

    # ------------------------------------------------------------------
    # Submission (called from connection handlers)
    # ------------------------------------------------------------------
    async def submit(self, request: Request) -> bytes:
        """Queue one request and await its response frame.

        Rejects immediately (without queueing) when the shard is draining
        (``shutting_down``) or the bounded queue is full (``overloaded``).
        """
        self.metrics.record_request(request.op)
        if self._draining:
            return self._reject(request, "shutting_down", "server is draining")
        if self.queue_depth() >= self.max_pending:
            return self._reject(
                request,
                "overloaded",
                f"shard {self.name!r} queue is full ({self.max_pending} pending)",
            )
        self._ensure_pump()
        started = self.now()
        deadline = (
            started + self.request_timeout
            if self.request_timeout is not None
            else None
        )
        pending = _Pending(
            request,
            asyncio.get_running_loop().create_future(),
            deadline,
        )
        if request.op in WRITE_OPS:
            self._writes.append(pending)
        else:
            assert request.op in READ_OPS, request.op
            self._reads.append(pending)
        assert self._wakeup is not None
        self._wakeup.set()
        frame = await pending.future
        self.metrics.record_latency(request.op, self.now() - started)
        self._count_error_frame(frame)
        return frame

    def _reject(self, request: Request, code: str, message: str) -> bytes:
        self.metrics.record_error(code)
        return encode_error(request.id, code, message)

    def _count_error_frame(self, frame: bytes) -> None:
        # Sorted-key encoding puts "error" first in error frames only.
        if frame.startswith(b'{"error"'):
            self.metrics.record_error(json.loads(frame)["error"]["code"])

    # ------------------------------------------------------------------
    # The pump: the shard's single writer task
    # ------------------------------------------------------------------
    def _ensure_pump(self) -> None:
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name=f"repro-shard-{self.name}"
            )

    async def _pump(self) -> None:
        while True:
            if not self._reads and not self._writes:
                if self._draining:
                    return
                assert self._wakeup is not None
                self._wakeup.clear()
                if not self._reads and not self._writes:
                    if self._draining:
                        return
                    await self._wakeup.wait()
                continue
            self.metrics.record_tick()
            await self._gather_window()
            await self._tick()

    async def _gather_window(self) -> None:
        """Give staggered in-flight submissions a few loop turns to join.

        Clients sharing the server's event loop land their requests in one
        ready-callback batch, so the pump (woken by the first submit but
        scheduled after the rest) already sees them all.  Cross-process
        clients are different: their frames arrive over the socket staggered
        across selector passes, and the pump can wake between two arrivals
        and drain a near-empty queue.  Each ``sleep(0)`` here runs one full
        pass of ready callbacks (including freshly readable connections);
        the loop stops early once the queue stops growing, so an idle shard
        pays one wasted yield at most.  Bounded by ``coalesce_window``
        (default 0: off -- the deterministic fault tests rely on
        single-yield tick timing).
        """
        if not self.coalesce or self.coalesce_window <= 0:
            return
        for _ in range(self.coalesce_window):
            before = self.queue_depth()
            await asyncio.sleep(0)
            if self.queue_depth() == before:
                break

    async def _tick(self) -> None:
        """One queue drain: writes first, then one pinned read batch."""
        now = self.now()

        if self._writes:
            writes = [p for p in self._drain_writes() if not self._expire(p, now)]
            self._apply_writes(writes)

        if self._snapshot is None or not self._snapshot.is_current():
            self._snapshot = self.column.snapshot()
        snapshot = self._snapshot

        if not self._reads:
            return
        if self.coalesce:
            batch = list(self._reads)
            self._reads.clear()
        else:
            batch = [self._reads.popleft()]
        live = [p for p in batch if not self._expire(p, now)]
        if not live:
            return
        try:
            # The fault seam: runs after the snapshot pin, so injected churn
            # is exactly the concurrent write a pinned reader must not see.
            await self.faults.before_batch(self)
            frames = run_read_tick(
                snapshot, [p.request for p in live], self.metrics
            )
        except Exception as error:
            code = error_code_for_exception(error)
            message = error_message(error)
            for pending in live:
                self._resolve(
                    pending, encode_error(pending.request.id, code, message)
                )
            return
        for pending, frame in zip(live, frames):
            self._resolve(pending, frame)

    def _drain_writes(self) -> List[_Pending]:
        writes = list(self._writes)
        self._writes.clear()
        return writes

    def _apply_writes(self, writes: List[_Pending]) -> None:
        """Coalesce this tick's appends into one bulk ``extend``.

        Amortised: one ``extend`` (one buffered descent per distinct key in
        the tiered/append-only index) absorbs every write queued this tick,
        then one budgeted ``compact_step`` keeps tier fan-out bounded -- all
        off the read path.  Per-request versions are assigned as if the
        writes ran serially in queue order.
        """
        if not writes:
            return
        combined: List[str] = []
        counts: List[int] = []
        for pending in writes:
            if pending.request.op == "append":
                values = [pending.request.args["value"]]
            else:
                values = list(pending.request.args["values"])
            combined.extend(values)
            counts.append(len(values))
        base = len(self.column)
        try:
            self.column.extend(combined)
        except Exception as error:
            code = error_code_for_exception(error)
            message = error_message(error)
            for pending in writes:
                self._resolve(
                    pending, encode_error(pending.request.id, code, message)
                )
            return
        if self.compact_budget is not None and hasattr(
            self.column.index, "compact_step"
        ):
            self.column.index.compact_step(self.compact_budget)
        self.metrics.record_batch("write", len(combined))
        version = base
        for pending, count in zip(writes, counts):
            version += count
            self._resolve(
                pending,
                encode_result(pending.request.id, {"appended": count}, version),
            )

    def _expire(self, pending: _Pending, now: float) -> bool:
        if pending.deadline is not None and now > pending.deadline:
            self._resolve(
                pending,
                encode_error(
                    pending.request.id,
                    "timeout",
                    f"request expired after {self.request_timeout}s in queue",
                ),
            )
            return True
        return False

    @staticmethod
    def _resolve(pending: _Pending, frame: bytes) -> None:
        if not pending.future.done():
            pending.future.set_result(frame)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Graceful stop: answer everything queued, reject new submissions.

        Sets the draining flag (new ``submit`` calls get ``shutting_down``),
        wakes the pump so it finishes every parked request, and waits for
        the pump task to exit.
        """
        self._draining = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
