"""Concurrent serving layer for Wavelet-Trie columns.

An asyncio index server exposing the full Grossi--Ottaviano query surface
(access / rank / select / rank_prefix / select_prefix) plus appends over a
newline-delimited JSON protocol, on a unix socket and localhost HTTP.  The
design turns the library's two big levers into service-level properties:

* **request coalescing** -- concurrent scalar requests parked on a shard
  queue drain as one ``*_many`` batch per op kind per tick
  (:mod:`repro.serving.coalescer`), so the batch amortisation measured in
  the benchmarks becomes multi-client throughput;
* **snapshot reads under a single writer** -- each tick pins an O(1)
  :class:`~repro.db.column.ColumnSnapshot` while one pump task owns every
  mutation (appends, budgeted compaction), so readers never block on -- or
  observe -- in-flight writes (:mod:`repro.serving.shard`).

The layer scales past one process: the
:class:`~repro.serving.cluster.ClusterSupervisor` partitions every column
into position ranges (:class:`~repro.serving.router.PartitionMap`), writes
each range as an RWT2 image (:mod:`repro.storage.shards`), and forks one
worker process per shard that mmaps its slice and runs the same
:class:`IndexServer` pump.  The supervisor speaks the identical protocol:
reads scatter-gather through the :class:`~repro.serving.router.ClusterRouter`
(byte-identical frames to the unsharded server), writes route to the single
tail owner through a replayable journal, and crashed workers restart with
bounded backoff.

:mod:`repro.serving.faults` adds the deterministic fault-injection seam the
test harness drives (slow handlers, mid-batch churn, clock skew, crashes),
and :mod:`repro.serving.metrics` the counters behind the ``stats`` op.
"""

from repro.serving.cluster import ClusterConfig, ClusterError, ClusterSupervisor
from repro.serving.coalescer import run_read_tick
from repro.serving.faults import FaultInjector, FaultPlan
from repro.serving.metrics import ServingMetrics, merge_snapshots
from repro.serving.router import ClusterRouter, PartitionMap
from repro.serving.protocol import (
    ADMIN_OPS,
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_CODES,
    OP_FIELDS,
    ProtocolError,
    READ_OPS,
    Request,
    WRITE_OPS,
    decode_frame,
    encode_error,
    encode_frame,
    encode_request,
    encode_result,
    error_code_for_exception,
    error_message,
)
from repro.serving.server import FrameServer, IndexServer, NDJSONClient, ServerConfig
from repro.serving.shard import IndexShard

__all__ = [
    "ADMIN_OPS",
    "ClusterConfig",
    "ClusterError",
    "ClusterRouter",
    "ClusterSupervisor",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "FaultInjector",
    "FaultPlan",
    "FrameServer",
    "IndexServer",
    "IndexShard",
    "NDJSONClient",
    "OP_FIELDS",
    "PartitionMap",
    "ProtocolError",
    "READ_OPS",
    "Request",
    "ServerConfig",
    "ServingMetrics",
    "WRITE_OPS",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "encode_request",
    "encode_result",
    "error_code_for_exception",
    "error_message",
    "merge_snapshots",
    "run_read_tick",
]
