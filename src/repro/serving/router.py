"""Position-range partitioning and scatter-gather routing for the cluster.

The multi-process cluster splits one logical column into contiguous
**position ranges**: shard ``i`` owns global rows ``[bounds[i],
bounds[i+1])`` of the frozen prefix, and the *tail* shard (the last one)
additionally owns every row appended after the split -- so the
single-writer rule survives sharding: exactly one worker process ever
mutates rows.

Two pieces live here, both free of process machinery so the property
suite can drive them hermetically:

* :class:`PartitionMap` -- the partition function.  It is **total**
  (every non-negative position maps to exactly one shard) and **stable**
  (a pure function of ``(total, num_shards)``, so supervisor restarts and
  worker respawns reproduce it bit-for-bit; the manifest round-trips it).
* :class:`ClusterRouter` -- decomposes global reads over one logical
  column into per-shard scalar subrequests, scatter-gathers them through
  an injected async ``fetch`` callable (the supervisor plugs in pipelined
  worker connections; tests plug in sliced columns), and merges results
  **in input order** with responses byte-identical to the unsharded
  server: same values, same versions, same error codes and messages.

The identities the router rests on (``cum[i] = bounds[i]``):

* ``access(pos)`` -- answered entirely by the owning shard at
  ``pos - cum[i]``.
* ``rank(v, pos)`` -- sum of the *full* counts of the shards left of the
  boundary plus one boundary-local rank.  Full counts of frozen shards
  never change, so they are fetched once and cached forever; the tail's
  count is cached per version.
* ``select(v, idx)`` -- binary search of the cumulative per-shard counts
  finds the owning shard, one local select there, plus the shard's base.

Scatter rounds are batched per shard and the worker's own coalescer turns
the pipelined scalar subrequests back into ``*_many`` calls, so the batch
amortisation of the index layer survives the process hop.
"""

from __future__ import annotations

import asyncio
from bisect import bisect_right
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.interface import check_select_prefix_index
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import (
    READ_OPS,
    Request,
    encode_error,
    encode_result,
)

__all__ = ["ClusterRouter", "PartitionMap"]

# fetch(shard_index, payloads) -> result values aligned with the payloads.
Fetch = Callable[[int, List[Dict[str, Any]]], Awaitable[List[Any]]]


class PartitionMap:
    """A stable partition of global positions into contiguous shard ranges.

    ``bounds`` has one entry per shard plus a sentinel: shard ``i`` owns
    the frozen rows ``[bounds[i], bounds[i+1])``, and the tail shard
    (``num_shards - 1``) also owns every position at or past
    ``bounds[-1]`` -- the rows appended after the split.
    """

    def __init__(self, bounds: Sequence[int]) -> None:
        cleaned = tuple(int(bound) for bound in bounds)
        if len(cleaned) < 2 or cleaned[0] != 0:
            raise ValueError("bounds must start at 0 and name at least one shard")
        if any(lo > hi for lo, hi in zip(cleaned, cleaned[1:])):
            raise ValueError("bounds must be non-decreasing")
        self.bounds = cleaned

    @classmethod
    def from_total(cls, total: int, num_shards: int) -> "PartitionMap":
        """Balanced split of ``[0, total)`` into ``num_shards`` ranges.

        A pure function of its arguments -- the stability guarantee the
        property suite pins: re-partitioning the same total with the same
        shard count yields identical bounds, across processes and restarts.
        Delegates to :func:`repro.db.partition.partition_ranges`, the one
        home of the split arithmetic.
        """
        from repro.db.partition import partition_ranges

        ranges = partition_ranges(total, num_shards)
        return cls([0] + [hi for _, hi in ranges])

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def tail(self) -> int:
        """The shard owning appends (the last range)."""
        return self.num_shards - 1

    @property
    def total(self) -> int:
        """Rows covered by the frozen ranges (the total at split time)."""
        return self.bounds[-1]

    def base_of(self, shard: int) -> int:
        """Global position of the shard's first row."""
        return self.bounds[shard]

    def length_of(self, shard: int) -> int:
        """The shard's frozen length (the tail may have grown past it)."""
        return self.bounds[shard + 1] - self.bounds[shard]

    def owner_of(self, pos: int) -> int:
        """The unique shard owning global row ``pos`` (total: any pos >= 0)."""
        if pos >= self.bounds[-1]:
            return self.tail
        return bisect_right(self.bounds, pos) - 1

    def boundary_of(self, pos: int) -> int:
        """The shard whose local rank at ``pos - base`` completes a global
        rank at ``pos`` (rank endpoints may equal a shard's length)."""
        return min(bisect_right(self.bounds, pos) - 1, self.tail)

    # ------------------------------------------------------------------
    def to_manifest(self) -> Dict[str, Any]:
        """The JSON-ready form stored in the cluster manifest."""
        return {"kind": "position_range", "bounds": list(self.bounds)}

    @classmethod
    def from_manifest(cls, payload: Dict[str, Any]) -> "PartitionMap":
        """Rebuild the exact partition a manifest recorded."""
        if payload.get("kind") != "position_range":
            raise ValueError(f"unknown partition kind {payload.get('kind')!r}")
        return cls(payload["bounds"])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartitionMap) and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(self.bounds)

    def __repr__(self) -> str:
        return f"PartitionMap(bounds={list(self.bounds)})"


class _Round:
    """One scatter round: per-shard payload batches keyed for the gather."""

    def __init__(self) -> None:
        self._payloads: Dict[int, List[Dict[str, Any]]] = {}
        self._keys: Dict[int, List[Any]] = {}
        self._seen: Set[Any] = set()

    def add(self, shard: int, payload: Dict[str, Any], key: Any) -> None:
        if key in self._seen:  # dedup shared needs (e.g. one count, many asks)
            return
        self._seen.add(key)
        self._payloads.setdefault(shard, []).append(payload)
        self._keys.setdefault(shard, []).append(key)

    @property
    def width(self) -> int:
        return len(self._seen)

    async def run(self, fetch: Fetch) -> Dict[Any, Any]:
        """Fetch every shard's batch concurrently; map results back by key."""
        shards = sorted(self._payloads)
        batches = await asyncio.gather(
            *(fetch(shard, self._payloads[shard]) for shard in shards)
        )
        gathered: Dict[Any, Any] = {}
        for shard, values in zip(shards, batches):
            for key, value in zip(self._keys[shard], values):
                gathered[key] = value
        return gathered


class ClusterRouter:
    """Scatter-gather reads for one logical column across position shards.

    ``fetch`` is the only I/O seam: an async callable taking a shard index
    and a batch of request payloads (plain frame dicts, ``shard`` already
    set to the logical column name) and returning the result values in
    order.  The supervisor's implementation pipelines the batch over the
    worker's NDJSON connection (with restart-and-retry underneath); the
    property tests implement it directly against sliced columns.

    Count caches keep steady-state reads cheap: a frozen shard's full
    count for a (rank-kind, key) never changes and is cached forever,
    while the tail's count is keyed by the global version it was computed
    at.  Both survive worker respawns because a recovered worker replays
    to exactly the same state.
    """

    def __init__(
        self,
        partition: PartitionMap,
        fetch: Fetch,
        column: str = "default",
        metrics: Optional[ServingMetrics] = None,
    ) -> None:
        self.partition = partition
        self.column = column
        self.metrics = metrics
        self._fetch = fetch
        # (kind, key, shard) -> full count, for shards left of the tail.
        self._frozen_counts: Dict[Tuple[str, str, int], int] = {}
        # (kind, key) -> (global version, tail count at that version).
        self._tail_counts: Dict[Tuple[str, str], Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def _count_field(self, kind: str) -> str:
        return "value" if kind == "rank" else "prefix"

    def _need_frozen_counts(
        self, round_: _Round, kind: str, key: str, upto: int
    ) -> None:
        """Queue fetches for the uncached full counts of shards < upto."""
        field = self._count_field(kind)
        for shard in range(upto):
            if (kind, key, shard) not in self._frozen_counts:
                round_.add(
                    shard,
                    {
                        "op": kind,
                        "shard": self.column,
                        field: key,
                        "pos": self.partition.length_of(shard),
                    },
                    ("count", kind, key, shard),
                )

    def _need_tail_count(
        self, round_: _Round, kind: str, key: str, version: int
    ) -> None:
        """Queue a tail count fetch unless cached at this exact version."""
        cached = self._tail_counts.get((kind, key))
        if cached is not None and cached[0] == version:
            return
        tail = self.partition.tail
        round_.add(
            tail,
            {
                "op": kind,
                "shard": self.column,
                self._count_field(kind): key,
                "pos": version - self.partition.base_of(tail),
            },
            ("tail_count", kind, key),
        )

    def _absorb_counts(self, gathered: Dict[Any, Any], version: int) -> None:
        for key, value in gathered.items():
            if key[0] == "count":
                _, kind, group_key, shard = key
                self._frozen_counts[(kind, group_key, shard)] = value
            elif key[0] == "tail_count":
                _, kind, group_key = key
                self._tail_counts[(kind, group_key)] = (version, value)

    def _counts_below(self, kind: str, key: str, upto: int) -> int:
        return sum(
            self._frozen_counts[(kind, key, shard)] for shard in range(upto)
        )

    # ------------------------------------------------------------------
    async def answer(
        self, requests: Sequence[Request], version: int
    ) -> List[bytes]:
        """Answer one batch of global reads at one global ``version``.

        Returns one response frame per request, aligned with the input
        order, byte-identical to what the unsharded server would emit for
        the same requests at the same version: validation happens here
        with the exact scalar-path messages, scalar work scatters to the
        owning shards (at most two rounds: counts, then locates), and the
        supervisor-authoritative ``version`` stamps every success frame.
        """
        part = self.partition
        tail = part.tail
        frames: List[Optional[bytes]] = [None] * len(requests)

        # Bucket by (op, group key) -- the same grouping as run_read_tick.
        groups: Dict[Tuple[str, Any], Tuple[List[int], List[Request]]] = {}
        for slot, request in enumerate(requests):
            assert request.op in READ_OPS, request.op
            if request.op == "access":
                key: Tuple[str, Any] = ("access", None)
            elif request.op in ("rank", "select"):
                key = (request.op, request.args["value"])
            else:
                key = (request.op, request.args["prefix"])
            slots, members = groups.setdefault(key, ([], []))
            slots.append(slot)
            members.append(request)

        # Round 1: validation + everything that needs no prior counts
        # (access, rank partials) + every count a select group will need.
        round1 = _Round()
        select_groups: List[Tuple[str, str, str, List[int], List[Request]]] = []

        for (op, group_key), (slots, members) in groups.items():
            if op == "access":
                for slot, request in zip(slots, members):
                    pos = request.args["pos"]
                    if not 0 <= pos < version:
                        frames[slot] = encode_error(
                            request.id,
                            "out_of_bounds",
                            f"position {pos} out of range for length {version}",
                        )
                        continue
                    owner = part.owner_of(pos)
                    round1.add(
                        owner,
                        {
                            "op": "access",
                            "shard": self.column,
                            "pos": pos - part.base_of(owner),
                        },
                        ("req", slot),
                    )
            elif op in ("rank", "rank_prefix"):
                field = self._count_field(op)
                for slot, request in zip(slots, members):
                    pos = request.args["pos"]
                    if not 0 <= pos <= version:
                        frames[slot] = encode_error(
                            request.id,
                            "out_of_bounds",
                            f"rank position {pos} out of range for length {version}",
                        )
                        continue
                    boundary = part.boundary_of(pos)
                    self._need_frozen_counts(round1, op, group_key, boundary)
                    round1.add(
                        boundary,
                        {
                            "op": op,
                            "shard": self.column,
                            field: group_key,
                            "pos": pos - part.base_of(boundary),
                        },
                        ("req", slot),
                    )
            else:  # select / select_prefix: counts now, locates in round 2
                kind = "rank" if op == "select" else "rank_prefix"
                self._need_frozen_counts(round1, kind, group_key, tail)
                self._need_tail_count(round1, kind, group_key, version)
                select_groups.append((op, kind, group_key, slots, members))

        if self.metrics is not None and round1.width:
            self.metrics.record_batch("scatter", round1.width)
        gathered = await round1.run(self._fetch)
        self._absorb_counts(gathered, version)

        for (op, group_key), (slots, members) in groups.items():
            if op == "access":
                for slot, request in zip(slots, members):
                    if frames[slot] is None:
                        frames[slot] = encode_result(
                            request.id, gathered[("req", slot)], version
                        )
            elif op in ("rank", "rank_prefix"):
                for slot, request in zip(slots, members):
                    if frames[slot] is not None:
                        continue
                    boundary = part.boundary_of(request.args["pos"])
                    below = self._counts_below(op, group_key, boundary)
                    frames[slot] = encode_result(
                        request.id, below + gathered[("req", slot)], version
                    )

        # Round 2: validate select indexes against the gathered totals,
        # then locate each hit inside its owning shard.
        round2 = _Round()
        located: List[Tuple[int, Request, int]] = []
        for op, kind, group_key, slots, members in select_groups:
            counts = [
                self._frozen_counts[(kind, group_key, shard)]
                for shard in range(tail)
            ]
            counts.append(self._tail_counts[(kind, group_key)][1])
            cumulative = [0]
            for count in counts:
                cumulative.append(cumulative[-1] + count)
            total = cumulative[-1]
            field = self._count_field(kind)
            for slot, request in zip(slots, members):
                idx = request.args["idx"]
                if op == "select":
                    if idx < 0:
                        frames[slot] = encode_error(
                            request.id, "out_of_bounds",
                            "select index must be non-negative",
                        )
                        continue
                    if total == 0:
                        frames[slot] = encode_error(
                            request.id, "value_not_found",
                            f"value {group_key!r} does not occur in the sequence",
                        )
                        continue
                    if idx >= total:
                        frames[slot] = encode_error(
                            request.id, "out_of_bounds",
                            f"select index {idx} out of range: "
                            f"only {total} occurrences",
                        )
                        continue
                else:
                    if total == 0:
                        frames[slot] = encode_error(
                            request.id, "value_not_found",
                            f"no element has prefix {group_key!r}",
                        )
                        continue
                    try:
                        check_select_prefix_index(group_key, idx, total)
                    except Exception as error:
                        frames[slot] = encode_error(
                            request.id, "out_of_bounds", str(error)
                        )
                        continue
                owner = bisect_right(cumulative, idx) - 1
                round2.add(
                    owner,
                    {
                        "op": op,
                        "shard": self.column,
                        field: group_key,
                        "idx": idx - cumulative[owner],
                    },
                    ("req", slot),
                )
                located.append((slot, request, owner))

        if round2.width:
            if self.metrics is not None:
                self.metrics.record_batch("scatter", round2.width)
            gathered = await round2.run(self._fetch)
            for slot, request, owner in located:
                frames[slot] = encode_result(
                    request.id,
                    gathered[("req", slot)] + part.base_of(owner),
                    version,
                )

        assert all(frame is not None for frame in frames)
        return frames  # type: ignore[return-value]
