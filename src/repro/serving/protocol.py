"""Wire protocol of the index server: newline-delimited JSON frames.

One request per line, one response per line, UTF-8, compact deterministic
encoding (sorted keys, no whitespace) so equivalence tests can compare
responses *byte for byte*.  The same frames travel over both transports: raw
NDJSON on the unix socket, and as the body of ``POST /query`` over localhost
HTTP.

A request is an object with:

``op``
    One of the read ops ``access`` / ``rank`` / ``select`` /
    ``rank_prefix`` / ``select_prefix`` (the full Grossi--Ottaviano query
    surface), the write ops ``append`` / ``extend``, or the admin ops
    ``stats`` / ``ping``.
``id``
    Optional client correlation token (any JSON scalar), echoed verbatim.
``shard``
    Optional shard name (default ``"default"``).
``pos`` / ``idx`` / ``value`` / ``prefix`` / ``values``
    The op's arguments (see :data:`OP_FIELDS`).

A response echoes ``id`` and carries either ``ok: true`` with ``result`` and
-- for shard ops -- ``version`` (the pinned snapshot length for reads, the
new length for writes), or ``ok: false`` with a typed ``error``
``{"code", "message"}``.  Error codes are the closed set
:data:`ERROR_CODES`; library exceptions map onto them via
:func:`error_code_for_exception` so a scalar replay raises byte-identical
messages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import (
    InvalidOperationError,
    OutOfBoundsError,
    ReproError,
    ValueNotFoundError,
)

__all__ = [
    "ADMIN_OPS",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "OP_FIELDS",
    "ProtocolError",
    "READ_OPS",
    "Request",
    "WRITE_OPS",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "encode_request",
    "encode_result",
    "error_code_for_exception",
    "error_message",
]

DEFAULT_MAX_FRAME_BYTES = 1 << 20  # 1 MiB: a frame larger than this is a fault

READ_OPS = frozenset({"access", "rank", "select", "rank_prefix", "select_prefix"})
WRITE_OPS = frozenset({"append", "extend"})
ADMIN_OPS = frozenset({"stats", "ping"})

# Required argument fields per op (beyond op/id/shard), with the python types
# accepted for each.  ``None`` is never a valid argument value.
OP_FIELDS: Dict[str, Dict[str, type]] = {
    "access": {"pos": int},
    "rank": {"value": str, "pos": int},
    "select": {"value": str, "idx": int},
    "rank_prefix": {"prefix": str, "pos": int},
    "select_prefix": {"prefix": str, "idx": int},
    "append": {"value": str},
    "extend": {"values": list},
    "stats": {},
    "ping": {},
}

ERROR_CODES = frozenset(
    {
        "malformed",        # frame is not a JSON object / bad field types
        "oversized",        # frame exceeds the configured byte limit
        "bad_request",      # unknown op / missing argument
        "unknown_shard",    # the named shard is not served here
        "out_of_bounds",    # position/index outside the snapshot range
        "value_not_found",  # value/prefix has zero occurrences
        "invalid_operation",  # e.g. write to a non-appendable column
        "overloaded",       # shard queue at capacity (backpressure)
        "timeout",          # request expired before its tick drained
        "shutting_down",    # server is draining; no new work accepted
        "internal",         # unexpected failure inside a handler
    }
)


class ProtocolError(ReproError):
    """A request frame that cannot be accepted, with its wire error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


def error_code_for_exception(error: BaseException) -> str:
    """The wire error code for a library exception (closed mapping)."""
    if isinstance(error, ProtocolError):
        return error.code
    if isinstance(error, OutOfBoundsError):
        return "out_of_bounds"
    if isinstance(error, ValueNotFoundError):
        return "value_not_found"
    if isinstance(error, InvalidOperationError):
        return "invalid_operation"
    return "internal"


def error_message(error: BaseException) -> str:
    """The human message of an exception, bypassing ``KeyError.__str__``.

    :class:`~repro.exceptions.ValueNotFoundError` derives from ``KeyError``,
    whose ``__str__`` repr-wraps the message in an extra layer of quotes;
    the wire carries the message exactly as raised.
    """
    if len(error.args) == 1 and isinstance(error.args[0], str):
        return error.args[0]
    return str(error)


@dataclass
class Request:
    """A validated request frame, ready for a shard queue."""

    op: str
    shard: str = "default"
    id: Any = None
    args: Dict[str, Any] = field(default_factory=dict)


def decode_frame(
    line: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Request:
    """Parse and validate one request line into a :class:`Request`.

    Raises :class:`ProtocolError` with the precise wire code: ``oversized``
    for frames over the limit, ``malformed`` for non-JSON / non-object /
    mistyped frames, ``bad_request`` for unknown ops or missing arguments.
    """
    if len(line) > max_frame_bytes:
        raise ProtocolError(
            "oversized",
            f"frame of {len(line)} bytes exceeds the {max_frame_bytes} byte limit",
        )
    try:
        payload = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("malformed", f"frame is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "malformed", f"frame must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if not isinstance(op, str) or op not in OP_FIELDS:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op!r}: expected one of {sorted(OP_FIELDS)}",
        )
    shard = payload.get("shard", "default")
    if not isinstance(shard, str):
        raise ProtocolError("malformed", "shard must be a string")
    args: Dict[str, Any] = {}
    for name, kind in OP_FIELDS[op].items():
        if name not in payload:
            raise ProtocolError(
                "bad_request", f"op {op!r} requires the {name!r} field"
            )
        value = payload[name]
        # bool is an int subclass; a boolean position is always a client bug.
        if not isinstance(value, kind) or isinstance(value, bool):
            raise ProtocolError(
                "malformed",
                f"field {name!r} must be {kind.__name__}, got {type(value).__name__}",
            )
        if kind is list and not all(isinstance(item, str) for item in value):
            raise ProtocolError("malformed", f"field {name!r} must list strings")
        args[name] = value
    return Request(op=op, shard=shard, id=payload.get("id"), args=args)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One response line: compact, key-sorted, newline-terminated."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def encode_request(op: str, shard: str = "default", id: Any = None, **args: Any) -> bytes:
    """One *request* line, compactly encoded (the client-side twin of
    :func:`decode_frame`).

    Used wherever this codebase is itself the client: the cluster
    supervisor's scatter subrequests and journal replays, and the test
    harnesses' deterministic request logs.  ``id`` is omitted when ``None``
    (pipelined connections correlate strictly FIFO, so scatter subrequests
    carry no ids at all).
    """
    payload: Dict[str, Any] = {"op": op, "shard": shard, **args}
    if id is not None:
        payload["id"] = id
    return encode_frame(payload)


def encode_result(
    request_id: Any, result: Any, version: Optional[int] = None
) -> bytes:
    """A success frame; ``version`` is the snapshot/write length when shard-bound."""
    payload: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if version is not None:
        payload["version"] = version
    return encode_frame(payload)


def encode_error(request_id: Any, code: str, message: str) -> bytes:
    """A typed error frame (``code`` must be in :data:`ERROR_CODES`)."""
    assert code in ERROR_CODES, code
    return encode_frame(
        {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
    )
