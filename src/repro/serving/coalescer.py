"""The coalescing core: drain concurrent scalar reads as ``*_many`` batches.

This is the pure (no-I/O, no-asyncio) heart of the index server.  A *tick*
takes the scalar read requests that accumulated on a shard's queue and
answers all of them with at most one batch call per operation kind per
distinct key:

* every ``access`` in the tick -> one ``access_many``;
* the ``rank`` / ``select`` requests, grouped by value -> one
  ``rank_many`` / ``select_many`` per distinct value;
* the ``rank_prefix`` / ``select_prefix`` requests, grouped by prefix ->
  one ``rank_prefix_many`` / ``select_prefix_many`` per distinct prefix.

Requests that fail validation (positions past the snapshot, select indexes
past the occurrence count) get their typed error frame individually and do
not poison the rest of the batch; the error messages are exactly the ones
the scalar :class:`~repro.db.column.ColumnSnapshot` calls raise.

The function is deliberately the *only* read path: with coalescing disabled
the server still calls :func:`run_read_tick` with singleton batches, so a
coalesced response is byte-identical to the serial one by construction --
the property the equivalence suite then verifies end to end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.interface import check_select_prefix_index
from repro.serving.metrics import ServingMetrics
from repro.serving.protocol import READ_OPS, Request, encode_error, encode_result

__all__ = ["run_read_tick"]


def _scatter_ok(
    frames: List[Optional[bytes]],
    slots: Sequence[int],
    ids: Sequence[Any],
    results: Sequence[Any],
    version: int,
) -> None:
    for slot, request_id, result in zip(slots, ids, results):
        frames[slot] = encode_result(request_id, result, version)


def run_read_tick(
    snapshot,
    requests: Sequence[Request],
    metrics: Optional[ServingMetrics] = None,
) -> List[bytes]:
    """Answer one tick's read requests against one pinned snapshot.

    Returns one response frame per request, aligned with the input order.
    Amortised: at most one ``*_many`` batch walk per op kind per distinct
    key, plus O(q) validation -- the 10-40x batch speedups of the index
    layer become a per-tick constant instead of a per-request cost.
    """
    frames: List[Optional[bytes]] = [None] * len(requests)
    version = snapshot.version

    # Bucket by (op, group key); validation happens per group below.
    groups: Dict[Tuple[str, Any], Tuple[List[int], List[Request]]] = {}
    for slot, request in enumerate(requests):
        assert request.op in READ_OPS, request.op
        if request.op == "access":
            key: Tuple[str, Any] = ("access", None)
        elif request.op in ("rank", "select"):
            key = (request.op, request.args["value"])
        else:
            key = (request.op, request.args["prefix"])
        slots, members = groups.setdefault(key, ([], []))
        slots.append(slot)
        members.append(request)

    for (op, group_key), (slots, members) in groups.items():
        ok_slots: List[int] = []
        ok_ids: List[Any] = []
        ok_args: List[int] = []

        if op == "access":
            for slot, request in zip(slots, members):
                pos = request.args["pos"]
                if not 0 <= pos < version:
                    frames[slot] = encode_error(
                        request.id,
                        "out_of_bounds",
                        f"position {pos} out of range for length {version}",
                    )
                    continue
                ok_slots.append(slot)
                ok_ids.append(request.id)
                ok_args.append(pos)
            if ok_args:
                results = snapshot.access_many(ok_args)
                _scatter_ok(frames, ok_slots, ok_ids, results, version)

        elif op == "rank":
            for slot, request in zip(slots, members):
                pos = request.args["pos"]
                if not 0 <= pos <= version:
                    frames[slot] = encode_error(
                        request.id,
                        "out_of_bounds",
                        f"rank position {pos} out of range for length {version}",
                    )
                    continue
                ok_slots.append(slot)
                ok_ids.append(request.id)
                ok_args.append(pos)
            if ok_args:
                results = snapshot.rank_many(group_key, ok_args)
                _scatter_ok(frames, ok_slots, ok_ids, results, version)

        elif op == "rank_prefix":
            for slot, request in zip(slots, members):
                pos = request.args["pos"]
                if not 0 <= pos <= version:
                    frames[slot] = encode_error(
                        request.id,
                        "out_of_bounds",
                        f"rank position {pos} out of range for length {version}",
                    )
                    continue
                ok_slots.append(slot)
                ok_ids.append(request.id)
                ok_args.append(pos)
            if ok_args:
                results = snapshot.rank_prefix_many(group_key, ok_args)
                _scatter_ok(frames, ok_slots, ok_ids, results, version)

        elif op == "select":
            # One pinned-count rank for the whole group, then per-request
            # index validation with the scalar path's exact messages.
            total = snapshot.rank(group_key, version)
            for slot, request in zip(slots, members):
                idx = request.args["idx"]
                if idx < 0:
                    frames[slot] = encode_error(
                        request.id, "out_of_bounds",
                        "select index must be non-negative",
                    )
                elif total == 0:
                    frames[slot] = encode_error(
                        request.id, "value_not_found",
                        f"value {group_key!r} does not occur in the sequence",
                    )
                elif idx >= total:
                    frames[slot] = encode_error(
                        request.id, "out_of_bounds",
                        f"select index {idx} out of range: only {total} occurrences",
                    )
                else:
                    ok_slots.append(slot)
                    ok_ids.append(request.id)
                    ok_args.append(idx)
            if ok_args:
                results = snapshot.select_many(group_key, ok_args)
                _scatter_ok(frames, ok_slots, ok_ids, results, version)

        else:  # select_prefix
            matches = snapshot.rank_prefix(group_key, version)
            for slot, request in zip(slots, members):
                idx = request.args["idx"]
                if matches == 0:
                    frames[slot] = encode_error(
                        request.id, "value_not_found",
                        f"no element has prefix {group_key!r}",
                    )
                    continue
                try:
                    check_select_prefix_index(group_key, idx, matches)
                except Exception as error:
                    frames[slot] = encode_error(
                        request.id, "out_of_bounds", str(error)
                    )
                    continue
                ok_slots.append(slot)
                ok_ids.append(request.id)
                ok_args.append(idx)
            if ok_args:
                results = snapshot.select_prefix_many(group_key, ok_args)
                _scatter_ok(frames, ok_slots, ok_ids, results, version)

        if metrics is not None and ok_args:
            metrics.record_batch(op, len(ok_args))

    assert all(frame is not None for frame in frames)
    return frames  # type: ignore[return-value]
